"""Scenario runner: strategy mixes through the engine, stats vs. theory.

Two execution surfaces:

* :class:`ScenarioRunner` drives a fleet with any honest/byzantine mix
  through the *parallel audit engine* — per-epoch beacon challenges from
  :class:`~repro.engine.scheduler.EpochScheduler`, grouped batch
  verification, failure pinpointing — and tallies measured detection rates
  per strategy against :func:`~repro.adversary.strategies.expected_detection_rate`.
* :func:`run_onchain_dispute` drives one cheating provider through the
  *audit contract*, raises a dispute on the first confirmed failure and
  returns the explorer-visible consequences (collateral slash, reputation
  stake slash, event log).

Statistical detection rates additionally come from
:func:`measured_detection_rate`, which samples real challenge expansions
(the PRP/PRF machinery on which detection rests) without paying for
pairings — the cryptographic reject-every-tampered-proof property is
asserted separately by ``tests/adversary/``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..chain import (
    Blockchain,
    ChainExplorer,
    ContractTerms,
    Transaction,
    deploy_audit_contract,
)
from ..chain.contracts.audit_contract import AuditContract, State
from ..chain.contracts.reputation import ReputationRegistry
from ..core import DataOwner, ProtocolParams, StorageProvider
from ..core.challenge import random_challenge
from ..core.prover import Prover
from ..engine import AuditExecutor, AuditInstance, EpochScheduler
from ..randomness import HashChainBeacon
from ..sim.workloads import archive_file
from .strategies import StrategySpec, expected_detection_rate, make_prover


@dataclass
class StrategyStats:
    """Measured vs. predicted detection for one strategy across a run."""

    kind: str
    rho: float
    audits: int = 0
    detected: int = 0            # rejected or withheld audits
    detectable: int = 0          # ground truth: audits that SHOULD fail
    false_accepts: int = 0       # tampered answer accepted (must stay 0)
    false_rejects: int = 0       # honest answer rejected (must stay 0)

    @property
    def measured_rate(self) -> float:
        return self.detected / self.audits if self.audits else 0.0

    def predicted_rate(self, k: int, epochs: int) -> float | None:
        return expected_detection_rate(self.kind, self.rho, k, epochs)


@dataclass
class ScenarioReport:
    """Everything a scenario run produced, ready for CLI/docs tables."""

    epochs: int
    num_instances: int
    k: int
    stats: dict[str, StrategyStats]
    rejected_log: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)

    @property
    def zero_false_accepts(self) -> bool:
        return all(s.false_accepts == 0 for s in self.stats.values())

    @property
    def zero_false_rejects(self) -> bool:
        return all(s.false_rejects == 0 for s in self.stats.values())

    def summary_lines(self) -> list[str]:
        lines = [
            f"{'strategy':<10} {'rho':>5} {'audits':>7} {'detected':>9} "
            f"{'measured':>9} {'predicted':>10}"
        ]
        for kind, stats in sorted(self.stats.items()):
            predicted = stats.predicted_rate(self.k, self.epochs)
            predicted_text = f"{predicted:.3f}" if predicted is not None else "n/a"
            lines.append(
                f"{kind:<10} {stats.rho:>5.2f} {stats.audits:>7} "
                f"{stats.detected:>9} {stats.measured_rate:>9.3f} "
                f"{predicted_text:>10}"
            )
        lines.append(
            f"false accepts: {sum(s.false_accepts for s in self.stats.values())}"
            f"  false rejects: {sum(s.false_rejects for s in self.stats.values())}"
        )
        return lines


class ScenarioRunner:
    """Wires a strategy mix into the engine + scheduler and keeps score."""

    def __init__(
        self,
        specs: "list[StrategySpec | tuple[str, int]]",
        params: ProtocolParams | None = None,
        file_bytes: int = 2500,
        seed: int = 2026,
        workers: int = 1,
        beacon_tag: bytes = b"adversary-scenario",
    ):
        # Accept plain (kind, count) pairs too — the shape
        # sim.workloads.adversarial_fleet_mix produces.
        self.specs = [
            spec if isinstance(spec, StrategySpec) else StrategySpec(*spec)
            for spec in specs
        ]
        if not self.specs:
            raise ValueError("at least one strategy spec required")
        kinds = [spec.kind for spec in self.specs]
        if len(kinds) != len(set(kinds)):
            raise ValueError("one spec per strategy kind (stats are per kind)")
        self.params = params or ProtocolParams(s=6, k=4)
        self.workers = workers
        self._rng = random.Random(seed)
        self._beacon = HashChainBeacon(beacon_tag)
        owner = DataOwner(self.params, rng=self._rng)
        self.instances: list[AuditInstance] = []
        self.provers: dict[int, Prover] = {}
        self.kinds: dict[int, tuple[str, float]] = {}
        serial = 0
        for spec in self.specs:
            for _ in range(spec.count):
                package = owner.prepare(
                    archive_file(file_bytes, tag=f"scenario-{serial}").data,
                    fresh_keypair=serial == 0,
                )
                self.instances.append(
                    AuditInstance.from_package(package, owner_id="scenario-owner")
                )
                self.provers[package.name] = make_prover(
                    spec.kind, package, rng=self._rng, rho=spec.rho
                )
                self.kinds[package.name] = (spec.kind, spec.rho)
                serial += 1

    def run(self, epochs: int = 2) -> ScenarioReport:
        """Drive ``epochs`` beacon rounds and tally detection per strategy."""
        stats = {
            spec.kind: StrategyStats(kind=spec.kind, rho=spec.rho)
            for spec in self.specs
        }
        report = ScenarioReport(
            epochs=epochs,
            num_instances=len(self.instances),
            k=self.params.k,
            stats=stats,
        )
        with AuditExecutor(self.instances, workers=self.workers) as executor:
            scheduler = EpochScheduler(
                executor, self.params, self._beacon, rng=self._rng
            )
            for name, (kind, _) in self.kinds.items():
                if kind != "honest":
                    prover = self.provers[name]
                    scheduler.set_override(
                        name,
                        lambda challenge, epoch, prover=prover: (
                            prover.respond_private(challenge)
                        ),
                    )
            first_response_epoch: dict[int, int] = {}
            for epoch in range(epochs):
                result = scheduler.run_epoch(epoch)
                rejected = set(result.batch_ok.rejected_names(scheduler.cache))
                withheld = set(result.withheld)
                report.rejected_log.append(
                    (epoch, tuple(sorted(rejected | withheld)))
                )
                for name, (kind, _) in self.kinds.items():
                    entry = stats[kind]
                    entry.audits += 1
                    answered = name not in withheld
                    if answered and name not in first_response_epoch:
                        first_response_epoch[name] = epoch
                    detected = name in rejected or name in withheld
                    should_detect = self._ground_truth(
                        name, kind, result, first_response_epoch, answered, epoch
                    )
                    if detected:
                        entry.detected += 1
                    if should_detect:
                        entry.detectable += 1
                        if not detected:
                            entry.false_accepts += 1
                    elif detected:
                        entry.false_rejects += 1
        return report

    def _ground_truth(
        self,
        name: int,
        kind: str,
        result,
        first_response_epoch: dict[int, int],
        answered: bool,
        epoch: int,
    ) -> bool:
        """Should this instance's audit have failed this epoch?"""
        if kind == "honest":
            return False
        if kind == "forge":
            return True
        if kind == "replay":
            return first_response_epoch.get(name) != epoch
        if kind in ("selective", "bitrot"):
            prover = self.provers[name]
            return prover.would_be_detected(result.challenges[name])
        if kind == "offline":
            return not answered  # silence IS the detectable event
        raise ValueError(f"unknown strategy kind {kind!r}")


def measured_detection_rate(
    num_chunks: int,
    rho: float,
    params: ProtocolParams,
    trials: int = 2000,
    seed: int = 7,
) -> tuple[float, float]:
    """(measured, predicted) detection rate for selective storage.

    Samples ``trials`` real challenge expansions (the Feistel-PRP index
    sampling the contract uses) against a ``rho``-fraction discarded set
    and counts how often the challenged set hits a discarded chunk.  The
    prediction is the paper's ``1 - (1 - rho)^c`` with ``c = min(k, n)``.
    Cryptographic rejection of every hit is asserted separately — this
    function measures the *sampling* side of the detection argument at
    scale (hundreds of trials without hundreds of pairings).
    """
    rng = random.Random(seed)
    discarded = frozenset(
        rng.sample(range(num_chunks), round(num_chunks * rho))
    )
    hits = 0
    for _ in range(trials):
        challenge = random_challenge(params, rng=rng)
        expanded = challenge.expand(num_chunks)
        if any(index in discarded for index in expanded.indices):
            hits += 1
    effective_k = min(params.k, num_chunks)
    predicted = expected_detection_rate("selective", rho, effective_k)
    assert predicted is not None
    return hits / trials, predicted


# --------------------------------------------------------------------------- #
# On-chain dispute demonstration                                              #
# --------------------------------------------------------------------------- #


@dataclass
class DisputeDemoResult:
    """The explorer-visible consequences of one on-chain attack + dispute."""

    strategy: str
    chain: Blockchain
    explorer: ChainExplorer
    contract: AuditContract
    registry_address: str
    provider_account: str
    passes: int
    fails: int
    reject_reasons: tuple[str, ...]
    disputes_raised: int
    collateral_slashed_wei: int
    stake_before_wei: int
    stake_after_wei: int
    score_before: float
    score_after: float

    def summary_lines(self) -> list[str]:
        lines = [
            f"strategy: {self.strategy}",
            f"rounds: {self.passes} passed, {self.fails} failed "
            f"(reasons: {', '.join(self.reject_reasons) or 'none'})",
            f"disputes raised: {self.disputes_raised}",
            f"collateral slashed: {self.collateral_slashed_wei:,} wei",
            f"registry stake: {self.stake_before_wei:,} -> "
            f"{self.stake_after_wei:,} wei",
            f"reputation score: {self.score_before:.3f} -> "
            f"{self.score_after:.3f}",
        ]
        lines.append("dispute events:")
        for event in self.explorer.dispute_log():
            lines.append(f"  {event['name']}: {event['payload']}")
        return lines


def run_onchain_dispute(
    strategy: str = "replay",
    rho: float = 0.5,
    rounds: int = 3,
    params: ProtocolParams | None = None,
    file_bytes: int = 1200,
    seed: int = 11,
    stake_eth: float = 1.0,
) -> DisputeDemoResult:
    """Deploy a cheating provider on chain, audit it, dispute the failures.

    The full loop the tentpole promises: the strategy prover is substituted
    into an honest :class:`~repro.core.protocol.StorageProvider`, the
    Fig. 2 contract runs its scheduled rounds, every failed round is
    disputed by the data owner as it resolves, and the dispute-confirmed
    cheats slash the provider's contract collateral *and* its stake in the
    reputation registry — all visible through the chain explorer.
    """
    params = params or ProtocolParams(s=6, k=4)
    rng = random.Random(seed)
    chain = Blockchain(block_time=15.0)

    registry = ReputationRegistry(min_stake_wei=int(stake_eth * 10**18))
    deployer = chain.create_account(1.0, label="registry-deployer")
    registry_address = chain.deploy(registry, deployer=deployer)

    owner = DataOwner(params, rng=rng)
    package = owner.prepare(archive_file(file_bytes, tag="dispute-demo").data)
    provider = StorageProvider(rng=rng)
    if not provider.accept(package):
        raise RuntimeError("provider rejected the honest package")

    terms = ContractTerms(
        num_audits=rounds, audit_interval=100.0, response_window=30.0
    )
    deployment = deploy_audit_contract(
        chain,
        package,
        provider,
        terms,
        HashChainBeacon(b"dispute-demo"),
        params,
        registry_address=registry_address,
    )
    contract = chain.contract_at(deployment.contract_address)
    assert isinstance(contract, AuditContract)

    # The drop-in substitution: the provider's stored prover is replaced by
    # the byzantine strategy AFTER it honestly validated and acknowledged.
    provider._stored[package.name] = make_prover(
        strategy, package, rng=rng, rho=rho
    )

    # Provider stakes into the registry; the audit contract becomes an
    # authorized reporter so outcomes and slashes flow through.
    receipt = chain.transact(
        Transaction(
            sender=deployment.provider_account,
            to=registry_address,
            method="register",
            value=int(stake_eth * 10**18),
        )
    )
    if not receipt.success:
        raise RuntimeError(f"stake registration failed: {receipt.error}")
    chain.transact(
        Transaction(
            sender=deployment.owner_account,
            to=registry_address,
            method="authorize_reporter",
            args=(deployment.contract_address,),
        )
    )
    stake_before = registry.providers[deployment.provider_account].stake_wei
    score_before = chain.call(
        registry_address, "score_of", deployment.provider_account
    )

    disputed: set[int] = set()
    collateral_slashed = 0
    for _ in range(100_000):
        closed = contract.state is State.CLOSED
        # Dispute each failed round as soon as it resolves (and before the
        # contract refunds deposits, so the collateral slash has teeth).
        for record in contract.rounds:
            if record.passed is False and record.round_id not in disputed:
                disputed.add(record.round_id)
                receipt = chain.transact(
                    Transaction(
                        sender=deployment.owner_account,
                        to=deployment.contract_address,
                        method="raise_dispute",
                        args=(record.round_id,),
                        value=terms.dispute_bond_wei,
                    )
                )
                if receipt.success:
                    for event in receipt.events:
                        if event.name == "collateral_slashed":
                            collateral_slashed += event.payload["slashed_wei"]
        if closed:
            break
        chain.mine_block()
        deployment.provider_agent.on_block()
    else:
        raise RuntimeError("contract did not close within the block budget")

    record = registry.providers[deployment.provider_account]
    return DisputeDemoResult(
        strategy=strategy,
        chain=chain,
        explorer=ChainExplorer(chain),
        contract=contract,
        registry_address=registry_address,
        provider_account=deployment.provider_account,
        passes=contract.passes,
        fails=contract.fails,
        reject_reasons=tuple(
            r.reject_reason for r in contract.rounds if r.reject_reason
        ),
        disputes_raised=len(disputed),
        collateral_slashed_wei=collateral_slashed,
        stake_before_wei=stake_before,
        stake_after_wei=record.stake_wei,
        score_before=score_before,
        score_after=chain.call(
            registry_address, "score_of", deployment.provider_account
        ),
    )
