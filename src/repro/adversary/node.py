"""Byzantine DSN node: the storage-substrate face of the strategy library.

The audit-layer strategies (:mod:`repro.adversary.strategies`) model how a
provider answers *challenges*; this node models how the same provider
serves *shards*.  It is a drop-in :class:`~repro.storage.node.StorageNode`
substitute for :class:`~repro.storage.node.DsnCluster` simulations, so
retrieval/repair paths can be exercised against the same misbehaviour
catalogue (docs/SCENARIOS.md maps each mode to its audit-layer twin).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..storage.node import StorageNode

MODES = ("honest", "selective", "bitrot", "offline")


@dataclass
class ByzantineStorageNode(StorageNode):
    """A storage node that lies at the shard interface.

    ``mode`` selects the misbehaviour; ``rho`` is its intensity, mirroring
    the audit-layer strategies:

    * ``selective`` — silently refuses to store a ``rho`` fraction of
      incoming shards (still ACKs the put);
    * ``bitrot``   — serves each shard corrupted with probability ``rho``;
    * ``offline``  — returns nothing with probability ``rho`` per get.

    Manifest checksums catch ``bitrot`` reads, erasure coding rides out all
    three up to ``n - k`` bad providers — and the audit layer is what makes
    the misbehaviour *attributable* rather than merely tolerated.
    """

    mode: str = "honest"
    rho: float = 0.25
    seed: int = 1337
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown byzantine mode {self.mode!r}")
        if not 0.0 <= self.rho <= 1.0:
            raise ValueError("rho must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def put(self, file_id: str, index: int, data: bytes) -> bool:
        if self.mode == "selective" and self._rng.random() < self.rho:
            return True  # ACK without storing: the selective-storage lie
        return super().put(file_id, index, data)

    def get(self, file_id: str, index: int) -> bytes | None:
        if self.mode == "offline" and self._rng.random() < self.rho:
            return None
        data = super().get(file_id, index)
        if data is None:
            return None
        if self.mode == "bitrot" and self._rng.random() < self.rho:
            mutated = bytearray(data)
            mutated[0] ^= 0xFF
            return bytes(mutated)
        return data
