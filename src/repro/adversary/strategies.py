"""Malicious-provider strategies as drop-in :class:`Prover` substitutes.

Each strategy models a concrete way a storage provider cheats after
acknowledging a contract (docs/SCENARIOS.md documents every one with its
expected detection probability and reproduction command):

* :class:`TagForgeryProver` — discarded data *and* tags; answers under a
  self-made keypair with fabricated data ("discard-and-forge").
* :class:`ReplayingProver` — answered one round honestly, then dropped the
  file and replays that proof forever.
* :class:`SelectiveStorageProver` — stores only a ``1 - rho`` fraction of
  chunks and answers as if the missing ones were zero; caught exactly when
  the challenge samples a discarded chunk, i.e. with the paper's
  ``1 - (1 - rho)^c`` probability.
* :class:`BitRotProver` — keeps everything but suffers silent per-chunk
  corruption with probability ``rho``.
* :class:`ChurnProver` — holds the data but is offline (fails to answer)
  with probability ``rho`` per round.

All constructors are signature-compatible with
:class:`~repro.core.prover.Prover` plus a ``rho`` knob, so they substitute
anywhere a prover is stored — ``StorageProvider._stored``, engine
overrides, or the on-chain agents.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..core.challenge import Challenge
from ..core.chunking import ChunkedFile
from ..core.confidence import detection_probability
from ..core.keys import generate_keypair
from ..core.proof import PrivateProof
from ..core.prover import Prover, ProveReport, ResponseWithheld
from ..crypto.bn254.constants import CURVE_ORDER

#: Strategy identifiers accepted across the harness (CLI, runner, specs).
STRATEGY_KINDS = ("honest", "forge", "replay", "selective", "bitrot", "offline")


@dataclass(frozen=True)
class StrategySpec:
    """How many providers run one strategy, and with which parameter.

    ``rho`` is the strategy's single knob: the discarded-chunk fraction for
    ``selective``, the per-chunk corruption probability for ``bitrot``, the
    per-round offline probability for ``offline``; ignored by the rest.
    """

    kind: str
    count: int = 1
    rho: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in STRATEGY_KINDS:
            raise ValueError(f"unknown strategy kind {self.kind!r}")
        if self.count < 1:
            raise ValueError("count must be positive")
        if not 0.0 <= self.rho <= 1.0:
            raise ValueError("rho must be in [0, 1]")


def _derived_rng(chunked: ChunkedFile, salt: str) -> random.Random:
    """Deterministic per-file randomness for a strategy's internal choices."""
    digest = hashlib.sha256(
        salt.encode() + chunked.name.to_bytes(32, "big")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class TagForgeryProver(Prover):
    """Discard-and-forge: data and tags gone, answers under a forged key.

    The adversary fabricates chunks, generates its *own* keypair, and
    produces authenticators valid under that key.  Every response is
    internally consistent — aggregation, KZG witness and Sigma mask all
    line up — but Eq. (2) is checked against the owner's real public key,
    so the proof is rejected (detection probability 1): forging tags that
    verify under ``pk`` without ``sk`` would break the computational
    Diffie–Hellman assumption (paper Theorem 1).
    """

    def __init__(self, chunked, public, authenticators, rng=None, precompute=None):
        super().__init__(chunked, public, authenticators, rng=rng, precompute=precompute)
        forger = _derived_rng(chunked, "forge")
        forged_keypair = generate_keypair(
            chunked.s, private_auditing=True, rng=forger
        )
        fake_chunks = tuple(
            tuple(forger.randrange(CURVE_ORDER) for _ in range(chunked.s))
            for _ in range(chunked.num_chunks)
        )
        fake_chunked = ChunkedFile(
            name=chunked.name,
            byte_length=chunked.byte_length,
            s=chunked.s,
            chunks=fake_chunks,
        )
        from ..core.authenticator import generate_authenticators

        forged_tags = generate_authenticators(fake_chunked, forged_keypair)
        self._forged = Prover(
            fake_chunked, forged_keypair.public, forged_tags, rng=forger
        )

    def respond_private(
        self, challenge: Challenge, report: ProveReport | None = None
    ) -> PrivateProof:
        return self._forged.respond_private(challenge, report)


class ReplayingProver(Prover):
    """Answers the first challenge honestly, then replays that proof.

    Models a provider that kept the file just long enough to pass one
    audit.  Challenge freshness (beacon-derived ``C1/C2/r`` per round)
    makes the stale proof fail every later round; the contract's byte-
    equality check additionally names the behaviour ``replayed-proof``.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._cached: PrivateProof | None = None
        self.replays = 0

    def respond_private(
        self, challenge: Challenge, report: ProveReport | None = None
    ) -> PrivateProof:
        if self._cached is None:
            self._cached = super().respond_private(challenge, report)
        else:
            self.replays += 1
        return self._cached


class SelectiveStorageProver(Prover):
    """Stores only ``1 - rho`` of the chunks; missing ones read as zero.

    The homomorphic aggregation forces the prover to answer over *exactly*
    the challenged set, so the response is honest whenever the challenge
    misses every discarded chunk and wrong otherwise — the textbook
    ``1 - (1 - rho)^c`` detection model the paper's Section VI-A cites.
    """

    def __init__(
        self,
        chunked,
        public,
        authenticators,
        rng=None,
        precompute=None,
        rho: float = 0.25,
    ):
        chooser = _derived_rng(chunked, "selective")
        discard_count = round(chunked.num_chunks * rho)
        self.discarded = frozenset(
            chooser.sample(range(chunked.num_chunks), discard_count)
        )
        self.rho = rho
        self._original = chunked
        zeroed = ChunkedFile(
            name=chunked.name,
            byte_length=chunked.byte_length,
            s=chunked.s,
            chunks=tuple(
                (0,) * chunked.s if index in self.discarded else chunk
                for index, chunk in enumerate(chunked.chunks)
            ),
        )
        super().__init__(zeroed, public, authenticators, rng=rng, precompute=precompute)

    def tampered_indices(self, challenge: Challenge) -> tuple[int, ...]:
        """Challenged chunks whose served content differs from the data."""
        expanded = challenge.expand(self.chunked.num_chunks)
        return tuple(
            index
            for index in expanded.indices
            if index in self.discarded and any(self._original.chunks[index])
        )

    def would_be_detected(self, challenge: Challenge) -> bool:
        """Ground truth: does this challenge hit a discarded chunk?"""
        return bool(self.tampered_indices(challenge))


class BitRotProver(SelectiveStorageProver):
    """Silent corruption: each chunk independently rots with probability rho.

    Same detection law as selective storage — a challenge catches the rot
    exactly when it samples a corrupted chunk — but the corrupted set is
    binomial rather than a fixed-size sample, matching disk-decay models.
    """

    def __init__(
        self,
        chunked,
        public,
        authenticators,
        rng=None,
        precompute=None,
        rho: float = 0.25,
    ):
        chooser = _derived_rng(chunked, "bitrot")
        rotted = frozenset(
            index
            for index in range(chunked.num_chunks)
            if chooser.random() < rho
        )
        corrupted = ChunkedFile(
            name=chunked.name,
            byte_length=chunked.byte_length,
            s=chunked.s,
            chunks=tuple(
                ((chunk[0] + 1) % CURVE_ORDER,) + tuple(chunk[1:])
                if index in rotted
                else chunk
                for index, chunk in enumerate(chunked.chunks)
            ),
        )
        # Initialize the parent with *no* discarded set, then substitute
        # the rotted copy: the prover serves corrupted chunks as-is.
        Prover.__init__(
            self, corrupted, public, authenticators, rng=rng, precompute=precompute
        )
        self.discarded = rotted  # the detectable set, reusing the parent API
        self.rho = rho
        self._original = chunked

    def tampered_indices(self, challenge: Challenge) -> tuple[int, ...]:
        expanded = challenge.expand(self.chunked.num_chunks)
        return tuple(
            index for index in expanded.indices if index in self.discarded
        )


class ChurnProver(Prover):
    """Holds the data but is offline with probability rho per round.

    The availability coin is drawn once *per challenge* (memoized on the
    challenge bytes), not per call: on-chain agents retry every block
    while a round is open, and a per-call draw would silently shrink the
    effective offline rate to ``rho^retries``.
    """

    def __init__(
        self,
        chunked,
        public,
        authenticators,
        rng=None,
        precompute=None,
        rho: float = 0.25,
    ):
        super().__init__(chunked, public, authenticators, rng=rng, precompute=precompute)
        self.rho = rho
        self._availability = _derived_rng(chunked, "offline")
        self._offline_rounds: dict[bytes, bool] = {}

    def respond_private(
        self, challenge: Challenge, report: ProveReport | None = None
    ) -> PrivateProof:
        key = challenge.to_bytes()
        offline = self._offline_rounds.get(key)
        if offline is None:
            offline = self._availability.random() < self.rho
            self._offline_rounds[key] = offline
        if offline:
            raise ResponseWithheld(
                f"provider offline for this round (churn rho={self.rho})"
            )
        return super().respond_private(challenge, report)


_STRATEGY_CLASSES = {
    "honest": Prover,
    "forge": TagForgeryProver,
    "replay": ReplayingProver,
    "selective": SelectiveStorageProver,
    "bitrot": BitRotProver,
    "offline": ChurnProver,
}


def make_prover(
    kind: str,
    package,
    rng=None,
    precompute=None,
    rho: float = 0.25,
) -> Prover:
    """Instantiate a strategy prover over an outsourcing package.

    The returned object is a drop-in replacement wherever a
    :class:`~repro.core.prover.Prover` is stored — e.g.
    ``provider._stored[package.name] = make_prover("replay", package)``
    turns an honest on-chain deployment into an attack simulation.
    """
    cls = _STRATEGY_CLASSES.get(kind)
    if cls is None:
        raise ValueError(f"unknown strategy kind {kind!r}")
    kwargs = {"rng": rng, "precompute": precompute}
    if kind in ("selective", "bitrot", "offline"):
        kwargs["rho"] = rho
    return cls(
        package.chunked, package.public, list(package.authenticators), **kwargs
    )


def expected_detection_rate(
    kind: str, rho: float, k: int, epochs: int = 1
) -> float | None:
    """Closed-form per-audit detection probability for a strategy.

    ``selective``/``bitrot`` follow the paper's ``1 - (1 - rho)^c`` with
    ``c = k`` challenged chunks; ``offline`` is caught exactly when it is
    offline (rate ``rho``); ``forge`` always; ``replay`` on every round
    after the first (``(epochs - 1) / epochs`` across a run); ``honest``
    never.  Returns None when no closed form applies.
    """
    if kind == "honest":
        return 0.0
    if kind == "forge":
        return 1.0
    if kind == "replay":
        return (epochs - 1) / epochs if epochs > 0 else None
    if kind in ("selective", "bitrot"):
        return detection_probability(k, rho)
    if kind == "offline":
        return rho
    return None
