"""DA commitments: a checkpoint's leaf set as erasure-coded NMT chunks.

The availability half of the rollup, done so light clients can *check* it.
At settlement the aggregator serializes the epoch's sorted record set into
one blob, extends it with the GF(256) systematic RS code (any ``k`` of the
``n`` chunks reconstruct the blob), and commits the ``n`` extended chunks
under a namespaced Merkle tree.  The resulting :class:`DaCommitment` is a
fixed 119-byte object, posted on chain next to the 85-byte checkpoint —
and it **binds the checkpoint root**, so "the data behind commitment X" is
unambiguous: a reconstruction that does not hash back to the committed
verdict root is itself proof of aggregator misbehavior
(:class:`~repro.da.errors.DaReconstructionMismatch`).

Why erasure coding matters here: without it, an aggregator could withhold
a *single* record and no light client sampling a few chunks would ever
notice (one missing leaf in a million is invisible at any polite sample
budget).  With an (n, k) extension, hiding *any* part of the data forces
the aggregator to withhold at least ``n - k + 1`` of ``n`` chunks — a
constant fraction that random sampling detects with probability
``1 - (1 - f)^s`` (see :mod:`~repro.da.sampling`).

Blob framing (versioned, self-delimiting)::

    count    (4 bytes, big-endian)
    repeat count times:
        len  (4 bytes, big-endian) || canonical RoundRecord bytes

The RS layer adds its own 8-byte length frame
(:meth:`~repro.storage.erasure.ReedSolomonCode.encode_framed`), so chunks
served over the wire carry everything needed to decode them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from functools import cached_property

from ..crypto.merkle import MerkleTree
from ..rollup.checkpoint import CheckpointBundle
from ..rollup.records import RoundRecord
from ..storage.erasure import ReedSolomonCode, Shard
from .errors import DaReconstructionMismatch
from .nmt import (
    NMT_ROOT_BYTES,
    NamespacedMerkleTree,
    NmtProof,
    NmtRoot,
    make_namespace,
)

DA_COMMITMENT_VERSION = 0x01

#: Fixed wire size of one DA commitment: version(1) + lane(8) + epoch(8) +
#: n(1) + k(1) + chunk_bytes(4) + checkpoint_root(32) + nmt_root(64).
DA_COMMITMENT_BYTES = 1 + 8 + 8 + 1 + 1 + 4 + 32 + NMT_ROOT_BYTES


@dataclass(frozen=True)
class DaParams:
    """The (n, k) extension an aggregator runs its DA layer with.

    ``n`` extended chunks per epoch, any ``k`` reconstruct.  Withholding
    usefully (making data unrecoverable) requires hiding more than
    ``n - k`` chunks, i.e. a fraction above ``1 - k/n``.
    """

    n: int
    k: int

    def __post_init__(self) -> None:
        if not 1 <= self.k < self.n <= 255:
            raise ValueError("need 1 <= k < n <= 255 for a GF(256) DA code")


#: Default extension: 4x blow-up; withholding anything useful means hiding
#: more than 75% of the chunks, far above the detection target fraction.
DEFAULT_DA_PARAMS = DaParams(n=64, k=16)

# Systematic-matrix construction is O(n * k^2) GF multiplications; cache
# codes per (n, k) so every epoch/bench trial reuses the same instance.
_CODES: dict[tuple[int, int], ReedSolomonCode] = {}
_CODES_LOCK = threading.Lock()


def rs_code(params: DaParams) -> ReedSolomonCode:
    with _CODES_LOCK:
        code = _CODES.get((params.n, params.k))
        if code is None:
            code = ReedSolomonCode(params.n, params.k)
            _CODES[(params.n, params.k)] = code
    return code


@dataclass(frozen=True)
class DaCommitment:
    """Fixed-size on-chain binding of one epoch's extended chunk set."""

    lane_id: int
    epoch: int
    n: int
    k: int
    chunk_bytes: int
    checkpoint_root: bytes
    root: NmtRoot

    def __post_init__(self) -> None:
        if not 1 <= self.k < self.n <= 255:
            raise ValueError("bad (n, k) in DA commitment")
        if len(self.checkpoint_root) != 32:
            raise ValueError("checkpoint root must be 32 bytes")
        if self.chunk_bytes < 1:
            raise ValueError("chunk_bytes must be positive")

    @property
    def namespace(self) -> bytes:
        return make_namespace(self.lane_id, self.epoch)

    @property
    def params(self) -> DaParams:
        return DaParams(n=self.n, k=self.k)

    def to_bytes(self) -> bytes:
        return b"".join(
            (
                bytes([DA_COMMITMENT_VERSION]),
                self.lane_id.to_bytes(8, "big"),
                self.epoch.to_bytes(8, "big"),
                bytes([self.n, self.k]),
                self.chunk_bytes.to_bytes(4, "big"),
                self.checkpoint_root,
                self.root.to_bytes(),
            )
        )

    @staticmethod
    def from_bytes(data: bytes) -> "DaCommitment":
        if len(data) != DA_COMMITMENT_BYTES:
            raise ValueError(
                f"DA commitment must be {DA_COMMITMENT_BYTES} bytes"
            )
        if data[0] != DA_COMMITMENT_VERSION:
            raise ValueError(f"unknown DA commitment version {data[0]:#x}")
        return DaCommitment(
            lane_id=int.from_bytes(data[1:9], "big"),
            epoch=int.from_bytes(data[9:17], "big"),
            n=data[17],
            k=data[18],
            chunk_bytes=int.from_bytes(data[19:23], "big"),
            checkpoint_root=bytes(data[23:55]),
            root=NmtRoot.from_bytes(bytes(data[55:])),
        )

    def byte_size(self) -> int:
        return DA_COMMITMENT_BYTES


def records_blob(records: tuple[RoundRecord, ...]) -> bytes:
    """Serialize a sorted record set into the length-framed DA blob."""
    parts = [len(records).to_bytes(4, "big")]
    for record in records:
        encoded = record.to_bytes()
        parts.append(len(encoded).to_bytes(4, "big"))
        parts.append(encoded)
    return b"".join(parts)


def records_from_blob(blob: bytes) -> tuple[RoundRecord, ...]:
    """Strict inverse of :func:`records_blob` (rejects trailing garbage)."""
    if len(blob) < 4:
        raise ValueError("DA blob too short")
    count = int.from_bytes(blob[:4], "big")
    offset = 4
    records = []
    for _ in range(count):
        if offset + 4 > len(blob):
            raise ValueError("truncated DA blob: missing record length")
        length = int.from_bytes(blob[offset : offset + 4], "big")
        offset += 4
        if offset + length > len(blob):
            raise ValueError("truncated DA blob: missing record bytes")
        records.append(RoundRecord.from_bytes(blob[offset : offset + length]))
        offset += length
    if offset != len(blob):
        raise ValueError("trailing bytes after DA blob records")
    return tuple(records)


@dataclass
class DaBundle:
    """An epoch's extended chunk set: what the aggregator must serve.

    The off-chain half of a :class:`DaCommitment`.  ``withhold`` flips the
    bundle into the adversarial serving mode the sampler is built to catch
    — withheld indices answer "unavailable" instead of a chunk + proof.
    """

    commitment: DaCommitment
    chunks: tuple[bytes, ...]
    tree: NamespacedMerkleTree
    withheld: set[int] = field(default_factory=set)

    def chunk_with_proof(self, index: int) -> tuple[bytes, NmtProof] | None:
        """One chunk and its NMT opening, or None when withheld."""
        if not 0 <= index < self.commitment.n:
            raise IndexError(f"chunk {index} out of range")
        if index in self.withheld:
            return None
        return self.chunks[index], self.tree.prove(index)

    def withhold(self, indices) -> None:
        """Adversarial serving mode: stop answering for these chunks."""
        for index in indices:
            if not 0 <= index < self.commitment.n:
                raise IndexError(f"chunk {index} out of range")
            self.withheld.add(index)

    def available_indices(self) -> tuple[int, ...]:
        return tuple(
            i for i in range(self.commitment.n) if i not in self.withheld
        )

    def chunk_payload_bytes(self) -> int:
        """Total bytes of the full chunk set (the blow-up denominator)."""
        return sum(len(chunk) for chunk in self.chunks)


def build_da_bundle(
    lane_id: int,
    epoch: int,
    bundle: CheckpointBundle,
    params: DaParams = DEFAULT_DA_PARAMS,
) -> DaBundle:
    """Extend one settled checkpoint's leaf set into committed DA chunks."""
    if bundle.checkpoint.epoch != epoch:
        raise ValueError("bundle does not belong to the requested epoch")
    blob = records_blob(bundle.records)
    shards = rs_code(params).encode_framed(blob)
    chunks = tuple(shard.data for shard in shards)
    namespace = make_namespace(lane_id, epoch)
    tree = NamespacedMerkleTree([(namespace, chunk) for chunk in chunks])
    commitment = DaCommitment(
        lane_id=lane_id,
        epoch=epoch,
        n=params.n,
        k=params.k,
        chunk_bytes=len(chunks[0]),
        checkpoint_root=bundle.checkpoint.root,
        root=tree.root,
    )
    return DaBundle(commitment=commitment, chunks=chunks, tree=tree)


@dataclass(frozen=True)
class DaReconstruction:
    """A verified k-of-n rebuild of one epoch's full leaf set.

    ``verified`` is True only when the decoded records hash back to the
    commitment's bound checkpoint root — the property that lets the holder
    drive ``challenge_counts`` without ever trusting the aggregator.
    """

    commitment: DaCommitment
    records: tuple[RoundRecord, ...]
    chunks_used: int
    verified: bool

    @cached_property
    def leaf_bytes(self) -> tuple[bytes, ...]:
        return tuple(record.to_bytes() for record in self.records)

    def counts_challenge_leaves(self) -> tuple[bytes, ...]:
        """The full leaf set, ready for ``challenge_counts``."""
        from .errors import DaUnreconstructed

        if not self.verified:
            raise DaUnreconstructed(
                "reconstruction is unverified: refusing to back a counts "
                "challenge with leaves that may not match the commitment"
            )
        return self.leaf_bytes


def reconstruct_records(
    commitment: DaCommitment, chunks: dict[int, bytes]
) -> DaReconstruction:
    """Decode any k-of-n chunk subset and verify it against the commitment.

    ``chunks`` maps chunk index -> chunk bytes (typically gathered by the
    sampling client).  Raises :class:`DaReconstructionMismatch` when the
    decoded leaf set does not rebuild the bound checkpoint root — either
    tampered chunks slipped in without NMT verification, or the aggregator
    committed inconsistent DA and checkpoint roots.
    """
    shards = []
    for index, data in sorted(chunks.items()):
        if not 0 <= index < commitment.n:
            raise ValueError(f"chunk index {index} out of range")
        if len(data) != commitment.chunk_bytes:
            raise DaReconstructionMismatch(
                f"chunk {index} is {len(data)} B, commitment says "
                f"{commitment.chunk_bytes} B"
            )
        shards.append(Shard(index=index, data=data))
    code = rs_code(commitment.params)
    try:
        blob = code.decode_framed(shards)
        records = records_from_blob(blob)
    except ValueError as exc:
        raise DaReconstructionMismatch(
            f"decoded chunk set does not parse as a record blob: {exc}"
        ) from exc
    if not records:
        raise DaReconstructionMismatch("decoded blob holds no records")
    tree = MerkleTree([record.to_bytes() for record in records])
    if tree.root != commitment.checkpoint_root:
        raise DaReconstructionMismatch(
            "reconstructed leaf set does not rebuild the committed "
            "checkpoint root"
        )
    return DaReconstruction(
        commitment=commitment,
        records=records,
        chunks_used=len(shards),
        verified=True,
    )
