"""Data availability for checkpoint light clients.

Erasure-coded chunk commitments under a namespaced Merkle tree, plus the
sampling client that makes withholding detectable at O(samples) download
cost and escalates to full k-of-n reconstruction when needed.
"""

from .commit import (
    DA_COMMITMENT_BYTES,
    DEFAULT_DA_PARAMS,
    DaBundle,
    DaCommitment,
    DaParams,
    DaReconstruction,
    build_da_bundle,
    records_blob,
    records_from_blob,
    reconstruct_records,
    rs_code,
)
from .errors import (
    DaError,
    DaReconstructionMismatch,
    DaUnavailable,
    DaUnreconstructed,
    DaWithholdingDetected,
)
from .nmt import (
    NAMESPACE_BYTES,
    NMT_ROOT_BYTES,
    NamespacedMerkleTree,
    NmtAbsenceProof,
    NmtProof,
    NmtRoot,
    make_namespace,
    split_namespace,
    verify_nmt_absence,
    verify_nmt_proof,
)
from .sampling import (
    DEFAULT_SAMPLE_BUDGET,
    DaSampler,
    SampleOutcome,
    SampleReport,
    bundle_fetch,
    detection_probability,
    sample_indices,
)

__all__ = [
    "DA_COMMITMENT_BYTES",
    "DEFAULT_DA_PARAMS",
    "DEFAULT_SAMPLE_BUDGET",
    "NAMESPACE_BYTES",
    "NMT_ROOT_BYTES",
    "DaBundle",
    "DaCommitment",
    "DaError",
    "DaParams",
    "DaReconstruction",
    "DaReconstructionMismatch",
    "DaSampler",
    "DaUnavailable",
    "DaUnreconstructed",
    "DaWithholdingDetected",
    "NamespacedMerkleTree",
    "NmtAbsenceProof",
    "NmtProof",
    "NmtRoot",
    "SampleOutcome",
    "SampleReport",
    "build_da_bundle",
    "bundle_fetch",
    "detection_probability",
    "make_namespace",
    "records_blob",
    "records_from_blob",
    "reconstruct_records",
    "rs_code",
    "sample_indices",
    "split_namespace",
    "verify_nmt_absence",
    "verify_nmt_proof",
]
