"""Namespaced Merkle tree (NMT): range-carrying commitments over DA chunks.

The STORAGE_V0 blob-commitment construction: every node carries the
``(min_namespace, max_namespace)`` range of the leaves below it in
addition to its digest, and the builder enforces that leaves arrive in
non-decreasing namespace order.  That ordering invariant is what turns
the tree into a *queryable* commitment — a verifier can check not just
"this chunk is committed" (inclusion) but "no chunk with this namespace
is committed at all" (absence), both against the same 64-byte root.

Layout decisions, all of which verifiers re-check:

* **Namespace** = ``lane_id(8) || epoch(8)`` big-endian (16 bytes), so one
  tree can commit several lanes'/epochs' chunk sets side by side while a
  light client addresses exactly its own.  ``0xff * 16`` is reserved for
  padding and can never be a real namespace.
* **Perfect tree**: leaves are padded with ``(NS_PAD, b"")`` up to the
  next power of two.  Every authentication path therefore has exactly
  ``depth`` steps and the path's direction bits *are* the leaf index in
  binary — verifiers recompute the index from the directions and reject
  proofs that claim a different position.  That position-binding is what
  makes absence proofs sound: adjacency (``left.index + 1 ==
  right.index``) is checked cryptographically, not taken on faith.
* **Domain separation** mirrors :mod:`repro.crypto.merkle`: leaf hashes
  are ``SHA256(0x00 || ns || data)``, node hashes
  ``SHA256(0x01 || l.min || l.max || l.digest || r.min || r.max || r.digest)``.

Hashing only — nothing here touches the pairing layer, which is the point:
a sampling light client verifies chunks at hash speed.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass

NAMESPACE_BYTES = 16

#: Reserved padding namespace: compares greater than every real namespace.
NS_PAD = b"\xff" * NAMESPACE_BYTES

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

#: Wire size of one serialized :class:`NmtRoot` (min || max || digest).
NMT_ROOT_BYTES = 2 * NAMESPACE_BYTES + 32


def make_namespace(lane_id: int, epoch: int) -> bytes:
    """The 16-byte ``lane || epoch`` namespace of one lane's epoch chunks."""
    if not 0 <= lane_id < 2**64:
        raise ValueError("lane_id out of range for an 8-byte namespace half")
    if not 0 <= epoch < 2**64:
        raise ValueError("epoch out of range for an 8-byte namespace half")
    namespace = lane_id.to_bytes(8, "big") + epoch.to_bytes(8, "big")
    if namespace == NS_PAD:
        raise ValueError("namespace reserved for padding")
    return namespace


def split_namespace(namespace: bytes) -> tuple[int, int]:
    """Inverse of :func:`make_namespace`: ``(lane_id, epoch)``."""
    if len(namespace) != NAMESPACE_BYTES:
        raise ValueError(f"namespace must be {NAMESPACE_BYTES} bytes")
    return (
        int.from_bytes(namespace[:8], "big"),
        int.from_bytes(namespace[8:], "big"),
    )


def _hash_leaf(namespace: bytes, data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + namespace + data).digest()


@dataclass(frozen=True)
class _Node:
    """One interior/leaf node: namespace range plus digest."""

    min_ns: bytes
    max_ns: bytes
    digest: bytes


def _hash_node(left: _Node, right: _Node) -> _Node:
    digest = hashlib.sha256(
        _NODE_PREFIX
        + left.min_ns + left.max_ns + left.digest
        + right.min_ns + right.max_ns + right.digest
    ).digest()
    return _Node(min_ns=left.min_ns, max_ns=right.max_ns, digest=digest)


@dataclass(frozen=True)
class NmtRoot:
    """The 64-byte commitment: full namespace range plus root digest."""

    min_ns: bytes
    max_ns: bytes
    digest: bytes

    def __post_init__(self) -> None:
        if len(self.min_ns) != NAMESPACE_BYTES or len(self.max_ns) != NAMESPACE_BYTES:
            raise ValueError("root namespace bounds must be namespace-sized")
        if len(self.digest) != 32:
            raise ValueError("root digest must be 32 bytes")

    def to_bytes(self) -> bytes:
        return self.min_ns + self.max_ns + self.digest

    @staticmethod
    def from_bytes(data: bytes) -> "NmtRoot":
        if len(data) != NMT_ROOT_BYTES:
            raise ValueError(f"NMT root must be {NMT_ROOT_BYTES} bytes")
        return NmtRoot(
            min_ns=bytes(data[:NAMESPACE_BYTES]),
            max_ns=bytes(data[NAMESPACE_BYTES : 2 * NAMESPACE_BYTES]),
            digest=bytes(data[2 * NAMESPACE_BYTES :]),
        )


@dataclass(frozen=True)
class NmtProof:
    """Authentication path for one chunk, position-bound.

    ``siblings[i]`` is the sibling's ``(min_ns, max_ns, digest)`` triple at
    depth ``i`` (leaf side first); ``directions[i]`` is True when the
    running node is the *right* child — so the direction bits read off as
    the little-endian binary expansion of ``leaf_index``, which verifiers
    enforce.
    """

    leaf_index: int
    namespace: bytes
    leaf_data: bytes
    siblings: tuple[tuple[bytes, bytes, bytes], ...]
    directions: tuple[bool, ...]

    def byte_size(self) -> int:
        """Wire size: what a sampling client downloads besides the chunk."""
        per_sibling = 2 * NAMESPACE_BYTES + 32
        return (
            8
            + NAMESPACE_BYTES
            + len(self.leaf_data)
            + per_sibling * len(self.siblings)
            + len(self.directions)
        )

    def to_object(self) -> dict:
        """JSON-friendly form (hex strings), for the RPC surface."""
        return {
            "leaf_index": self.leaf_index,
            "namespace": self.namespace.hex(),
            "leaf_data": self.leaf_data.hex(),
            "siblings": [
                [mn.hex(), mx.hex(), digest.hex()]
                for mn, mx, digest in self.siblings
            ],
            "directions": list(self.directions),
        }

    @staticmethod
    def from_object(obj: dict) -> "NmtProof":
        return NmtProof(
            leaf_index=int(obj["leaf_index"]),
            namespace=bytes.fromhex(obj["namespace"]),
            leaf_data=bytes.fromhex(obj["leaf_data"]),
            siblings=tuple(
                (bytes.fromhex(mn), bytes.fromhex(mx), bytes.fromhex(digest))
                for mn, mx, digest in obj["siblings"]
            ),
            directions=tuple(bool(d) for d in obj["directions"]),
        )


@dataclass(frozen=True)
class NmtAbsenceProof:
    """Proof that no leaf carries ``namespace``.

    ``right`` opens the *first* leaf whose namespace sorts strictly above
    the absent one; ``left`` opens its immediate predecessor (omitted when
    ``right`` sits at index 0).  Both are position-bound, so the verifier
    can check they really straddle the queried namespace with nothing in
    between.  ``right`` may be None only when the namespace sorts above
    the whole committed range — then the root's ``max_ns`` alone decides.
    """

    namespace: bytes
    right: NmtProof | None
    left: NmtProof | None


class NamespacedMerkleTree:
    """NMT over ``(namespace, chunk)`` leaves, padded to a perfect tree."""

    def __init__(self, leaves: list[tuple[bytes, bytes]]):
        if not leaves:
            raise ValueError("cannot build an NMT with no leaves")
        previous: bytes | None = None
        for namespace, _ in leaves:
            if len(namespace) != NAMESPACE_BYTES:
                raise ValueError(
                    f"namespace must be {NAMESPACE_BYTES} bytes"
                )
            if namespace == NS_PAD:
                raise ValueError("namespace reserved for padding")
            if previous is not None and namespace < previous:
                raise ValueError(
                    "namespace ordering violated: leaves must be sorted"
                )
            previous = namespace
        self.num_leaves = len(leaves)
        padded_size = 1
        while padded_size < len(leaves):
            padded_size *= 2
        self._leaves: list[tuple[bytes, bytes]] = list(leaves) + [
            (NS_PAD, b"") for _ in range(padded_size - len(leaves))
        ]
        level = [
            _Node(min_ns=ns, max_ns=ns, digest=_hash_leaf(ns, data))
            for ns, data in self._leaves
        ]
        self.levels: list[list[_Node]] = [level]
        while len(level) > 1:
            level = [
                _hash_node(level[i], level[i + 1])
                for i in range(0, len(level), 2)
            ]
            self.levels.append(level)

    @property
    def padded_size(self) -> int:
        return len(self._leaves)

    @property
    def depth(self) -> int:
        return len(self.levels) - 1

    @property
    def root(self) -> NmtRoot:
        top = self.levels[-1][0]
        return NmtRoot(min_ns=top.min_ns, max_ns=top.max_ns, digest=top.digest)

    def prove(self, leaf_index: int) -> NmtProof:
        """Position-bound inclusion proof (pad leaves are provable too)."""
        if not 0 <= leaf_index < self.padded_size:
            raise IndexError(f"leaf {leaf_index} out of range")
        namespace, data = self._leaves[leaf_index]
        siblings = []
        directions = []
        index = leaf_index
        for level in self.levels[:-1]:
            sibling = level[index ^ 1]
            siblings.append((sibling.min_ns, sibling.max_ns, sibling.digest))
            directions.append(bool(index & 1))
            index >>= 1
        return NmtProof(
            leaf_index=leaf_index,
            namespace=namespace,
            leaf_data=data,
            siblings=tuple(siblings),
            directions=tuple(directions),
        )

    def prove_absence(self, namespace: bytes) -> NmtAbsenceProof:
        """Straddle proof that ``namespace`` is committed nowhere."""
        if len(namespace) != NAMESPACE_BYTES:
            raise ValueError(f"namespace must be {NAMESPACE_BYTES} bytes")
        if namespace == NS_PAD:
            raise ValueError("padding namespace has no absence proof")
        ordered = [ns for ns, _ in self._leaves]
        pivot = bisect_right(ordered, namespace)
        if pivot and ordered[pivot - 1] == namespace:
            raise ValueError("namespace is present; prove inclusion instead")
        if pivot == self.padded_size:
            # Above the whole committed range (only reachable when the
            # real leaf count is an exact power of two: no pad leaves).
            return NmtAbsenceProof(namespace=namespace, right=None, left=None)
        right = self.prove(pivot)
        left = self.prove(pivot - 1) if pivot else None
        return NmtAbsenceProof(namespace=namespace, right=right, left=left)


def _index_of(directions: tuple[bool, ...]) -> int:
    """The leaf index a direction path encodes (perfect trees only)."""
    index = 0
    for depth, is_right in enumerate(directions):
        if is_right:
            index |= 1 << depth
    return index


def verify_nmt_proof(root: NmtRoot, proof: NmtProof) -> bool:
    """Stateless inclusion check: digest, namespace ranges AND position.

    Beyond the ordinary digest walk, this enforces the two NMT-specific
    invariants a sampling client relies on:

    * every step's sibling range must respect the left-to-right namespace
      ordering (a tree that lies about ranges is rejected even if its
      digests chain correctly), and
    * the direction bits must encode exactly ``proof.leaf_index``, so a
      prover cannot serve chunk j under the name of sampled index i.
    """
    if len(proof.siblings) != len(proof.directions):
        return False
    if len(proof.namespace) != NAMESPACE_BYTES:
        return False
    if _index_of(proof.directions) != proof.leaf_index:
        return False
    current = _Node(
        min_ns=proof.namespace,
        max_ns=proof.namespace,
        digest=_hash_leaf(proof.namespace, proof.leaf_data),
    )
    for (sib_min, sib_max, sib_digest), is_right in zip(
        proof.siblings, proof.directions
    ):
        if len(sib_min) != NAMESPACE_BYTES or len(sib_max) != NAMESPACE_BYTES:
            return False
        if sib_min > sib_max or len(sib_digest) != 32:
            return False
        sibling = _Node(min_ns=sib_min, max_ns=sib_max, digest=sib_digest)
        if is_right:
            if sibling.max_ns > current.min_ns:
                return False  # left sibling must not exceed our range
            current = _hash_node(sibling, current)
        else:
            if current.max_ns > sibling.min_ns:
                return False  # right sibling must not undercut our range
            current = _hash_node(current, sibling)
    return (
        current.min_ns == root.min_ns
        and current.max_ns == root.max_ns
        and current.digest == root.digest
    )


def verify_nmt_absence(root: NmtRoot, proof: NmtAbsenceProof) -> bool:
    """Check a straddle proof: the namespace falls in a committed gap."""
    namespace = proof.namespace
    if len(namespace) != NAMESPACE_BYTES or namespace == NS_PAD:
        return False
    if proof.right is None:
        # Nothing sorts above it: sound only when the root says so.
        return proof.left is None and namespace > root.max_ns
    if not verify_nmt_proof(root, proof.right):
        return False
    if proof.right.namespace <= namespace:
        return False
    if proof.right.leaf_index == 0:
        # First leaf already sorts above the namespace: nothing precedes.
        return proof.left is None
    if proof.left is None:
        return False
    if not verify_nmt_proof(root, proof.left):
        return False
    if proof.left.leaf_index + 1 != proof.right.leaf_index:
        return False
    return proof.left.namespace < namespace
