"""Light-client data-availability sampling (the "lightweight" in action).

A sampling client never downloads an epoch's leaf set.  It draws a
deterministic pseudo-random set of chunk indices from its own seed and the
committed NMT root, fetches just those chunks with their namespaced
openings, and verifies each against the 64-byte root it already trusts
from the checkpoint.  Against an aggregator withholding a fraction ``f``
of the extended chunks, ``s`` samples detect the hole with probability
``1 - (1 - f)**s`` — at the default budget of 18 samples and the 25%
detection target fraction that is ``1 - 0.75**18 ≈ 99.44%``, for a
download of 18 chunks instead of the whole epoch.  (An attack that
actually makes data unrecoverable must hide *more than* ``1 - k/n`` of
the chunks — 75% under the default 4x extension — where detection is
essentially certain; the 25% target shows the client flags trouble long
before withholding gets anywhere near useful.)

The same machinery escalates: :meth:`DaSampler.reconstruct` keeps fetching
verified chunks until ``k`` accumulate, decodes the blob, and checks the
rebuilt leaf set against the checkpoint root — producing the full-data
evidence ``challenge_counts`` demands without ever trusting the server.

Determinism is deliberate.  The index schedule is a pure function of
``(seed, NMT root)``, so a sampling run is reproducible in a regression
test or an incident report, yet unpredictable to the aggregator before
the root is fixed — it cannot pre-compute which chunks are safe to hide
from a client whose seed it does not know.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterable

from ..obs.registry import MetricsRegistry, get_registry
from .commit import DaCommitment, DaReconstruction, reconstruct_records
from .errors import DaUnavailable, DaWithholdingDetected
from .nmt import NmtProof, NmtRoot, verify_nmt_proof

#: Default number of chunks a light client samples per epoch.  Chosen as
#: the smallest budget whose analytic detection probability against the
#: f = 0.25 detection target fraction clears 99%: 1 - 0.75**18 ≈ 0.9944
#: (17 samples lands at 0.9925; 16 misses the bar at 0.98998).
DEFAULT_SAMPLE_BUDGET = 18

_SAMPLE_DOMAIN = b"da-sample-v1"

#: ``fetch(lane_id, epoch, indices) -> {index: (chunk, proof) | None}``.
#: ``None`` (or a missing key) means the server declined that index.
FetchFn = Callable[
    [int, int, "tuple[int, ...]"],
    "dict[int, tuple[bytes, NmtProof] | None]",
]


def detection_probability(withheld_fraction: float, samples: int) -> float:
    """Analytic P[at least one sample hits a withheld chunk]."""
    if not 0.0 <= withheld_fraction <= 1.0:
        raise ValueError("withheld fraction must be in [0, 1]")
    if samples < 0:
        raise ValueError("sample count must be non-negative")
    return 1.0 - (1.0 - withheld_fraction) ** samples


def sample_indices(
    seed: bytes, root: NmtRoot, num_chunks: int, budget: int
) -> tuple[int, ...]:
    """Deterministic without-replacement chunk schedule for one epoch.

    SHA-256 in counter mode over ``domain || seed || root digest``, read
    out in 4-byte big-endian windows reduced mod ``num_chunks``.  Binding
    the root means different epochs (and different commitments for the
    same epoch) get independent schedules from one client seed.
    """
    if num_chunks < 1:
        raise ValueError("cannot sample from an empty chunk set")
    if budget < 1:
        raise ValueError("sample budget must be positive")
    want = min(budget, num_chunks)
    picked: list[int] = []
    seen: set[int] = set()
    counter = 0
    while len(picked) < want:
        block = hashlib.sha256(
            _SAMPLE_DOMAIN + seed + root.digest + counter.to_bytes(8, "big")
        ).digest()
        counter += 1
        for offset in range(0, len(block) - 3, 4):
            index = int.from_bytes(block[offset : offset + 4], "big") % num_chunks
            if index not in seen:
                seen.add(index)
                picked.append(index)
                if len(picked) == want:
                    break
    return tuple(picked)


@dataclass(frozen=True)
class SampleOutcome:
    """Verdict for one sampled chunk index."""

    index: int
    ok: bool
    reason: str  # "ok" | "missing" | "bad-proof"
    bytes_fetched: int


@dataclass(frozen=True)
class SampleReport:
    """Everything one sampling run learned, including its download bill."""

    commitment: DaCommitment
    indices: tuple[int, ...]
    outcomes: tuple[SampleOutcome, ...]
    chunk_bytes: int
    proof_bytes: int

    @property
    def available(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> tuple[SampleOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def downloaded_bytes(self) -> int:
        return self.chunk_bytes + self.proof_bytes

    def raise_if_withheld(self) -> None:
        failures = self.failures
        if failures:
            failed = ", ".join(
                f"{o.index} ({o.reason})" for o in failures
            )
            raise DaWithholdingDetected(
                f"lane {self.commitment.lane_id} epoch "
                f"{self.commitment.epoch}: {len(failures)} of "
                f"{len(self.outcomes)} sampled chunks failed: {failed}",
                failures=failures,
            )

    def to_object(self) -> dict:
        """JSON-safe summary for RPC/CLI surfaces."""
        return {
            "lane": self.commitment.lane_id,
            "epoch": self.commitment.epoch,
            "samples": len(self.outcomes),
            "available": self.available,
            "failed_indices": [o.index for o in self.failures],
            "downloaded_bytes": self.downloaded_bytes,
        }


class DaSampler:
    """Sampling light client over any chunk-serving transport.

    ``fetch`` abstracts the wire: in-process it closes over a
    :class:`~repro.da.commit.DaBundle`; across the network it calls the
    ``da_sample_get`` RPC method.  The sampler trusts nothing it fetches —
    every chunk must open against the committed NMT root at the exact
    sampled position under the exact lane‖epoch namespace.
    """

    def __init__(self, fetch: FetchFn, registry: MetricsRegistry | None = None):
        self._fetch = fetch
        registry = registry or get_registry()
        self._samples = registry.counter(
            "da_samples_total", "DA chunks sampled, by outcome", ("outcome",)
        )
        self._withholding = registry.counter(
            "da_withholding_detected_total",
            "sampling runs that flagged withholding",
        )
        self._reconstructions = registry.counter(
            "da_reconstructions_total",
            "k-of-n leaf-set reconstructions, by outcome",
            ("outcome",),
        )
        self._run_seconds = registry.histogram(
            "da_sample_run_seconds", "wall-clock per sampling run"
        )

    # -- single-chunk verification --------------------------------------
    def _verify_chunk(
        self,
        commitment: DaCommitment,
        index: int,
        response: "tuple[bytes, NmtProof] | None",
    ) -> SampleOutcome:
        if response is None:
            return SampleOutcome(index=index, ok=False, reason="missing", bytes_fetched=0)
        chunk, proof = response
        fetched = len(chunk) + proof.byte_size()
        ok = (
            len(chunk) == commitment.chunk_bytes
            and proof.leaf_index == index
            and proof.namespace == commitment.namespace
            and proof.leaf_data == chunk
            and verify_nmt_proof(commitment.root, proof)
        )
        return SampleOutcome(
            index=index,
            ok=ok,
            reason="ok" if ok else "bad-proof",
            bytes_fetched=fetched,
        )

    # -- sampling -------------------------------------------------------
    def sample(
        self,
        commitment: DaCommitment,
        seed: bytes,
        budget: int = DEFAULT_SAMPLE_BUDGET,
    ) -> SampleReport:
        """Run one deterministic sampling pass; never raises on failure —
        inspect the report or call :meth:`SampleReport.raise_if_withheld`."""
        t0 = perf_counter()
        indices = sample_indices(seed, commitment.root, commitment.n, budget)
        responses = self._fetch(commitment.lane_id, commitment.epoch, indices)
        outcomes = []
        chunk_bytes = proof_bytes = 0
        for index in indices:
            outcome = self._verify_chunk(commitment, index, responses.get(index))
            outcomes.append(outcome)
            self._samples.labels(outcome.reason).inc()
            if outcome.ok:
                chunk_bytes += commitment.chunk_bytes
                proof_bytes += outcome.bytes_fetched - commitment.chunk_bytes
        report = SampleReport(
            commitment=commitment,
            indices=indices,
            outcomes=tuple(outcomes),
            chunk_bytes=chunk_bytes,
            proof_bytes=proof_bytes,
        )
        if not report.available:
            self._withholding.inc()
        self._run_seconds.observe(perf_counter() - t0)
        return report

    # -- escalation: full reconstruction --------------------------------
    def reconstruct(
        self,
        commitment: DaCommitment,
        seed: bytes,
        batch: int = 8,
    ) -> DaReconstruction:
        """Gather any ``k`` verified chunks and rebuild the full leaf set.

        Starts from the deterministic sample schedule (chunks the client
        may already hold), then walks the remaining indices in order,
        fetching ``batch`` at a time.  Raises :class:`DaUnavailable` when
        the server cannot produce ``k`` verifiable chunks — the precise
        condition under which the epoch's data is unrecoverable.
        """
        schedule = list(
            sample_indices(seed, commitment.root, commitment.n, commitment.n)
        )
        verified: dict[int, bytes] = {}
        tried: set[int] = set()
        position = 0
        while len(verified) < commitment.k and position < len(schedule):
            window = [
                i for i in schedule[position : position + batch] if i not in tried
            ]
            position += batch
            if not window:
                continue
            tried.update(window)
            responses = self._fetch(
                commitment.lane_id, commitment.epoch, tuple(window)
            )
            for index in window:
                outcome = self._verify_chunk(
                    commitment, index, responses.get(index)
                )
                self._samples.labels(outcome.reason).inc()
                if outcome.ok:
                    chunk, _proof = responses[index]
                    verified[index] = chunk
        if len(verified) < commitment.k:
            self._reconstructions.labels("unavailable").inc()
            raise DaUnavailable(
                f"lane {commitment.lane_id} epoch {commitment.epoch}: only "
                f"{len(verified)} of the required {commitment.k} chunks "
                f"verified after trying all {commitment.n}"
            )
        try:
            reconstruction = reconstruct_records(commitment, verified)
        except Exception:
            self._reconstructions.labels("mismatch").inc()
            raise
        self._reconstructions.labels("ok").inc()
        return reconstruction


def bundle_fetch(bundles) -> FetchFn:
    """In-process transport: serve from local DaBundles.

    ``bundles`` maps ``(lane_id, epoch) -> DaBundle``; unknown epochs and
    withheld chunks both answer ``None`` per index, exactly like a remote
    server refusing to serve.
    """

    def fetch(
        lane_id: int, epoch: int, indices: Iterable[int]
    ) -> dict[int, tuple[bytes, NmtProof] | None]:
        bundle = bundles.get((lane_id, epoch))
        return {
            index: None if bundle is None else bundle.chunk_with_proof(index)
            for index in indices
        }

    return fetch
