"""Structured error taxonomy for the data-availability layer.

Every failure mode a sampling light client can hit has its own class and a
stable ``code`` string, mirroring the structured rejection reasons of the
audit layer: RPC handlers and CLI surfaces key off ``code`` instead of
parsing prose, and tests pin the codes as part of the wire contract.
"""

from __future__ import annotations


class DaError(Exception):
    """Base class for all data-availability failures."""

    code = "da-error"


class DaWithholdingDetected(DaError):
    """At least one sampled chunk was withheld or failed verification.

    ``failures`` carries the per-sample outcomes that triggered the flag,
    so an escalating client can name the exact indices in its report.
    """

    code = "withholding-detected"

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)


class DaUnavailable(DaError):
    """Fewer than ``k`` verifiable chunks could be fetched: the epoch's
    leaf set is unrecoverable from what the aggregator serves."""

    code = "unavailable"


class DaReconstructionMismatch(DaError):
    """Chunks decoded, but the rebuilt leaf set does not hash to the
    committed checkpoint root — the DA commitment and the checkpoint
    commitment disagree, which an honest aggregator can never produce."""

    code = "reconstruction-mismatch"


class DaUnreconstructed(DaError):
    """A full-data operation (``challenge_counts`` leaves) was requested
    from a client that has not completed a verified reconstruction."""

    code = "unreconstructed"
