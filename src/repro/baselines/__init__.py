"""Baseline auditing schemes and the Table I comparison data."""

from .feature_matrix import (
    TABLE_I,
    AuditMode,
    FrameworkClass,
    FrameworkRow,
    StorageGuarantee,
    Support,
    render_table,
)
from .mac_baseline import MacAuditor, MacChallenge, MacProver
from .sia_style import (
    CachingCheater,
    SiaChallenge,
    SiaProof,
    SiaStyleAuditor,
    SiaStyleProver,
    expected_coverage,
)

__all__ = [
    "AuditMode",
    "CachingCheater",
    "FrameworkClass",
    "FrameworkRow",
    "MacAuditor",
    "MacChallenge",
    "MacProver",
    "SiaChallenge",
    "SiaProof",
    "SiaStyleAuditor",
    "SiaStyleProver",
    "StorageGuarantee",
    "Support",
    "TABLE_I",
    "expected_coverage",
    "render_table",
]
