"""The hash/MAC whole-file baseline (paper Section VIII, first paragraph).

"The most straightforward auditing scheme is applying the standard hash
function or message authentication codes (MAC) ... Despite the
computational efficiency, this scheme does not scale due to the
inconvenience that the verifier has to re-compute the result with the same
data input.  Also, it cannot support unlimited times of challenges."

The owner precomputes ``q`` response digests H(nonce_i || file) before
outsourcing; each audit burns one nonce.  Three measured drawbacks drive
the comparison benches: O(|F|) prover work per audit, a hard cap of ``q``
audits, and no public verifiability (the owner must hold the response
table).
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass


def _response(nonce: bytes, data: bytes) -> bytes:
    return hmac.new(nonce, b"MAC-AUDIT" + data, hashlib.sha256).digest()


@dataclass(frozen=True)
class MacChallenge:
    round_id: int
    nonce: bytes


class MacAuditor:
    """Owner side: precomputed nonce/response table, one entry per audit."""

    def __init__(self, data: bytes, num_challenges: int, rng=None):
        self.num_challenges = num_challenges
        self._nonces = [
            (os.urandom(16) if rng is None else bytes(rng.randrange(256) for _ in range(16)))
            for _ in range(num_challenges)
        ]
        self._expected = [_response(nonce, data) for nonce in self._nonces]
        self._used = 0

    @property
    def challenges_remaining(self) -> int:
        return self.num_challenges - self._used

    @property
    def table_bytes(self) -> int:
        """Owner-side storage for the response table."""
        return self.num_challenges * (16 + 32)

    def challenge(self) -> MacChallenge:
        if self._used >= self.num_challenges:
            raise RuntimeError(
                "challenge table exhausted: the MAC baseline supports only "
                f"{self.num_challenges} audits"
            )
        nonce = self._nonces[self._used]
        return MacChallenge(round_id=self._used, nonce=nonce)

    def verify(self, challenge: MacChallenge, response: bytes) -> bool:
        expected = self._expected[challenge.round_id]
        self._used = max(self._used, challenge.round_id + 1)
        return hmac.compare_digest(expected, response)


class MacProver:
    """Provider side: must touch the *entire* file for every audit."""

    def __init__(self, data: bytes):
        self.data = data
        self.bytes_read_total = 0

    def respond(self, challenge: MacChallenge) -> bytes:
        self.bytes_read_total += len(self.data)  # full-file scan per audit
        return _response(challenge.nonce, self.data)
