"""Sia-style Merkle-proof auditing — the baseline the paper breaks twice.

Sia's construction (paper Section II): "storage providers prove the storage
by periodically submitting part of the original file and the corresponding
hashes within the file's Merkle tree to the blockchain."  Two flaws:

1. **No on-chain privacy** — the challenged block goes on chain *in the
   clear* (an adversary reading the chain collects raw file blocks).
2. **Challenge-space exhaustion** — "the storage provider can reuse the
   proofs for challenged blocks ... due to the low entropy of challenge
   randomness": once a block has been challenged, its (leaf, path) response
   is public; a provider caching responses can drop data and keep answering
   whatever fraction of the challenge space it has seen.

Both are implemented and measured: :class:`CachingCheater` quantifies the
survival probability as audits accumulate (a coupon-collector curve), and
the trail-size accounting feeds the comparison benches.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..crypto.merkle import MerkleProof, MerkleTree, verify_merkle_proof


@dataclass(frozen=True)
class SiaChallenge:
    """A low-entropy challenge: selects one leaf by index."""

    round_id: int
    leaf_index: int


@dataclass(frozen=True)
class SiaProof:
    """What goes on chain: the raw leaf plus its Merkle path."""

    proof: MerkleProof

    def byte_size(self) -> int:
        return self.proof.byte_size()

    @property
    def leaked_block(self) -> bytes:
        """The raw data block this proof reveals to every chain observer."""
        return self.proof.leaf_data


class SiaStyleAuditor:
    """Owner/contract side: holds the root, issues challenges, verifies."""

    def __init__(self, root: bytes, num_leaves: int):
        self.root = root
        self.num_leaves = num_leaves

    def challenge(self, round_id: int, randomness: bytes) -> SiaChallenge:
        digest = hashlib.sha256(b"SIA" + randomness + round_id.to_bytes(8, "big")).digest()
        return SiaChallenge(
            round_id=round_id,
            leaf_index=int.from_bytes(digest[:8], "big") % self.num_leaves,
        )

    def verify(self, challenge: SiaChallenge, proof: SiaProof) -> bool:
        if proof.proof.leaf_index != challenge.leaf_index:
            return False
        return verify_merkle_proof(self.root, proof.proof)


class SiaStyleProver:
    """Honest provider: stores the blocks, rebuilds proofs on demand."""

    def __init__(self, blocks: list[bytes]):
        self.tree = MerkleTree(blocks)

    @property
    def root(self) -> bytes:
        return self.tree.root

    @property
    def num_leaves(self) -> int:
        return len(self.tree.leaves)

    def respond(self, challenge: SiaChallenge) -> SiaProof:
        return SiaProof(proof=self.tree.prove(challenge.leaf_index))


@dataclass
class CachingCheater:
    """The exhaustion attacker: caches past responses, then drops the data.

    ``observe`` records each (leaf, proof) pair the honest phase produced —
    these are public on the chain, so even a *different* provider could
    collect them.  After ``go_rogue`` the file is gone; ``respond`` succeeds
    only for already-seen leaves.
    """

    cache: dict[int, SiaProof] = field(default_factory=dict)
    rogue: bool = False
    answered: int = 0
    busted: int = 0

    def observe(self, proof: SiaProof) -> None:
        self.cache[proof.proof.leaf_index] = proof

    def go_rogue(self) -> None:
        self.rogue = True

    def respond(self, challenge: SiaChallenge) -> SiaProof | None:
        cached = self.cache.get(challenge.leaf_index)
        if cached is not None:
            self.answered += 1
            return cached
        self.busted += 1
        return None

    def coverage(self, num_leaves: int) -> float:
        return len(self.cache) / num_leaves


def expected_coverage(num_leaves: int, rounds: int) -> float:
    """Coupon-collector expectation: 1 - (1 - 1/n)^rounds.

    After ``rounds`` honest audits a cheater expects to answer this fraction
    of future challenges — the quantitative version of the paper's "the
    challenge randomness would eventually run out".
    """
    return 1.0 - (1.0 - 1.0 / num_leaves) ** rounds
