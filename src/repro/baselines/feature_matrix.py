"""Table I: auditing-related feature comparison across DSN frameworks.

The paper's Table I is qualitative; we encode it as data so the Table-I
bench can regenerate it, and so our own system's row is *derived* from the
properties the test suite actually demonstrates rather than asserted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Support(enum.Enum):
    NO = "x"          # feature not considered by design
    FULL = "o"        # fully supported by design
    NA = "N/A"        # not applicable
    NP = "N/P"        # may be supported but not specified

    def __str__(self) -> str:
        return self.value


class FrameworkClass(enum.Enum):
    P2P = "P2P"
    ETHEREUM_COMPATIBLE = "EC"
    BITCOIN_COMPATIBLE = "BC"
    ALTCOIN = "ALT"

    def __str__(self) -> str:
        return self.value


class AuditMode(enum.Enum):
    NONE = "N/A"
    TRUSTED_THIRD_PARTY = "TTP"
    BLOCKCHAIN = "BC"
    PRIVATE = "PA"

    def __str__(self) -> str:
        return self.value


class StorageGuarantee(enum.Enum):
    NONE = "N/A"
    LOW = "Low"
    HIGH = "High"
    UNSPECIFIED = "N/P"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FrameworkRow:
    name: str
    audit_family: str          # "w.o. audit" / "w. Merkle tree" / "w. SNARK-based" / "w. HLA"
    framework_class: FrameworkClass
    incentive: Support
    audit_mode: AuditMode
    storage_guarantee: StorageGuarantee
    onchain_security: Support
    prover_efficiency: Support
    auditor_efficiency: Support


#: The eight systems of paper Table I, plus this work's row.
TABLE_I: tuple[FrameworkRow, ...] = (
    FrameworkRow("IPFS", "w.o. audit", FrameworkClass.P2P, Support.NO,
                 AuditMode.NONE, StorageGuarantee.NONE, Support.NA,
                 Support.NA, Support.NA),
    FrameworkRow("Swarm", "w. Merkle tree", FrameworkClass.ETHEREUM_COMPATIBLE,
                 Support.FULL, AuditMode.TRUSTED_THIRD_PARTY, StorageGuarantee.LOW,
                 Support.NO, Support.FULL, Support.FULL),
    FrameworkRow("Storj", "w. Merkle tree", FrameworkClass.ALTCOIN, Support.FULL,
                 AuditMode.TRUSTED_THIRD_PARTY, StorageGuarantee.LOW,
                 Support.NO, Support.FULL, Support.FULL),
    FrameworkRow("MaidSafe", "w. Merkle tree", FrameworkClass.ALTCOIN, Support.FULL,
                 AuditMode.TRUSTED_THIRD_PARTY, StorageGuarantee.LOW,
                 Support.NO, Support.FULL, Support.FULL),
    FrameworkRow("Sia", "w. Merkle tree", FrameworkClass.ALTCOIN, Support.FULL,
                 AuditMode.BLOCKCHAIN, StorageGuarantee.LOW,
                 Support.NO, Support.FULL, Support.FULL),
    FrameworkRow("Filecoin", "w. SNARK-based", FrameworkClass.ALTCOIN, Support.FULL,
                 AuditMode.PRIVATE, StorageGuarantee.HIGH,
                 Support.FULL, Support.NO, Support.FULL),
    FrameworkRow("ZKCSP", "w. SNARK-based", FrameworkClass.BITCOIN_COMPATIBLE,
                 Support.NO, AuditMode.PRIVATE, StorageGuarantee.HIGH,
                 Support.FULL, Support.NO, Support.FULL),
    FrameworkRow("Hawk", "w. SNARK-based", FrameworkClass.ETHEREUM_COMPATIBLE,
                 Support.NO, AuditMode.BLOCKCHAIN, StorageGuarantee.UNSPECIFIED,
                 Support.FULL, Support.NO, Support.FULL),
    FrameworkRow("This work", "w. HLA + PolyCommit", FrameworkClass.ETHEREUM_COMPATIBLE,
                 Support.FULL, AuditMode.BLOCKCHAIN, StorageGuarantee.HIGH,
                 Support.FULL, Support.FULL, Support.FULL),
)


def render_table() -> str:
    """ASCII rendering of Table I (what the bench prints)."""
    headers = [
        "Framework", "Family", "Class", "Incentive", "Audit mode",
        "Storage guar.", "On-chain sec.", "Prover eff.", "Auditor eff.",
    ]
    rows = [
        [
            row.name, row.audit_family, str(row.framework_class),
            str(row.incentive), str(row.audit_mode),
            str(row.storage_guarantee), str(row.onchain_security),
            str(row.prover_efficiency), str(row.auditor_efficiency),
        ]
        for row in TABLE_I
    ]
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in rows))
        for col in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines += [" | ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)
