"""A minimal but honest Ethereum-like chain for the auditing system.

What is modelled (because the paper's evaluation depends on it):

* accounts with wei balances, value transfer, gas fees debited to a
  fee-sink (the "miner"),
* contracts as Python objects with metered methods, persistent state and
  event logs,
* blocks with a gas limit and a block interval — the throughput analysis of
  Fig. 10 comes straight from these two constants,
* a scheduler in the spirit of the Ethereum Alarm Clock: contracts register
  future calls ("On trigger scheduling(...)" in paper Fig. 2) that fire as
  the chain's clock advances past their due time,
* per-transaction byte accounting so chain-growth (Fig. 10 left) is
  measured, not assumed.

What is deliberately not modelled: consensus, forks, the EVM itself.
Contract code runs as trusted Python with explicit gas metering — mirroring
the paper's own approach of a Golang precompile on a private testnet.

State lives behind a pluggable :class:`~repro.chain.state.StateStore`:
the default :class:`~repro.chain.state.MemoryStateStore` keeps the
original in-process behaviour, while
:class:`~repro.chain.state.WalStateStore` gives the chain an append-only
write-ahead log + snapshots, so ``Blockchain.open(directory)`` recovers a
crashed chain bit-identically (checked via :meth:`Blockchain.state_hash`).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from .gas import GasSchedule
from .state import MemoryStateStore, StateStore, WalStateStore
from .transaction import Event, OutOfGasError, Receipt, RevertError, Transaction

WEI_PER_GWEI = 10**9
WEI_PER_ETH = 10**18


@dataclass
class Block:
    number: int
    timestamp: float
    parent_hash: str
    receipts: list[Receipt] = field(default_factory=list)
    gas_used: int = 0
    byte_size: int = 0
    # wei/gas every transaction in this block paid as base fee; stays 0
    # on chains without a mempool (legacy direct-transact path).
    base_fee_wei: int = 0

    @property
    def block_hash(self) -> str:
        material = f"{self.number}:{self.timestamp}:{self.parent_hash}:{self.gas_used}"
        return hashlib.sha256(material.encode()).hexdigest()


@dataclass(order=True)
class ScheduledCall:
    due_time: float
    sequence: int
    contract: str = field(compare=False)
    method: str = field(compare=False)
    args: tuple = field(compare=False, default=())


class GasMeter:
    """Tracks gas within one transaction; contracts charge it explicitly."""

    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def consume(self, amount: int) -> None:
        self.used += int(amount)
        if self.used > self.limit:
            raise OutOfGasError(f"gas limit {self.limit} exceeded ({self.used})")


@dataclass
class CallContext:
    """What a contract method sees (msg.sender / msg.value / block / gas)."""

    sender: str
    value: int
    timestamp: float
    block_number: int
    gas: GasMeter
    chain: "Blockchain"


class Contract:
    """Base class for on-chain contracts.

    Subclasses implement methods taking ``ctx`` first; state is ordinary
    attributes.  ``emit`` appends to the transaction's event list.
    """

    def __init__(self) -> None:
        self.address: str = ""
        self.chain: "Blockchain | None" = None
        self._pending_events: list[Event] = []

    def emit(self, event_name: str, **payload: Any) -> None:
        self._pending_events.append(
            Event(contract=self.address, name=event_name, payload=payload)
        )

    def require(self, condition: bool, message: str) -> None:
        if not condition:
            raise RevertError(message)

    @property
    def balance(self) -> int:
        assert self.chain is not None
        return self.chain.balance_of(self.address)


class Blockchain:
    """The simulated chain: behaviour over a pluggable state store.

    ``store`` defaults to a fresh :class:`MemoryStateStore`; pass a
    :class:`WalStateStore` (or use :meth:`Blockchain.open`) for a chain
    that survives its process.  All mutating entry points run inside the
    store's ``begin``/``commit`` brackets so durable backends can log
    exactly one record per logical mutation.
    """

    def __init__(
        self,
        schedule: GasSchedule | None = None,
        block_time: float = 15.0,
        block_gas_limit: int = 10_000_000,
        base_block_bytes: int = 600,
        require_signatures: bool = False,
        store: StateStore | None = None,
        chain_id: int = 0,
        mempool=None,
    ):
        self.schedule = schedule or GasSchedule.istanbul()
        self.block_time = block_time
        self.block_gas_limit = block_gas_limit
        self.base_block_bytes = base_block_bytes
        self.require_signatures = require_signatures
        # Salt for address derivation: fabric lanes get distinct ids so a
        # contract (or account) address never collides across lanes.
        self.chain_id = chain_id
        # One chain is one unit of serialization: every mutating entry
        # point holds this lock, so concurrent callers (RPC handler
        # threads, fabric lane workers) interleave at transaction
        # granularity and never observe a half-applied mutation.
        # Reentrant because mine_block -> _fire_due_calls -> transact.
        self.lock = threading.RLock()
        self.store = store or MemoryStateStore()
        if not self.store.blocks:
            genesis = Block(number=0, timestamp=0.0, parent_hash="0" * 64)
            self.store.begin()
            self.store.blocks.append(genesis)
            self.store.commit("genesis", block=genesis)
        for contract in self.store.contracts.values():
            contract.chain = self  # rebind after a restore
        # Optional admission path: pass a MempoolConfig to give the chain
        # a fee market and a pending pool (submit() + priority drain in
        # mine_block()); transact() stays the direct legacy path.
        self.pool = None
        if mempool is not None:
            from .mempool import Mempool, MempoolConfig

            if not isinstance(mempool, (Mempool, MempoolConfig)):
                raise TypeError("mempool must be a MempoolConfig")
            config = mempool if isinstance(mempool, MempoolConfig) else mempool.config
            self.pool = Mempool(self, config)

    @classmethod
    def open(cls, directory, **kwargs) -> "Blockchain":
        """Open (or create) a WAL-persisted chain under ``directory``.

        Recovery replays ``snapshot + WAL``; a chain reopened after a
        crash — even one between ``transact`` and ``mine_block`` — reports
        the same :meth:`state_hash` the lost process would have.
        """
        return cls(store=WalStateStore(directory), **kwargs)

    # -- state passthroughs (the store owns all mutable chain state) ---------

    @property
    def time(self) -> float:
        return self.store.time

    @time.setter
    def time(self, value: float) -> None:
        self.store.time = value

    @property
    def blocks(self) -> list[Block]:
        return self.store.blocks

    @property
    def events(self) -> list[Event]:
        return self.store.events

    @property
    def fee_sink(self) -> int:
        return self.store.fee_sink

    @fee_sink.setter
    def fee_sink(self, value: int) -> None:
        self.store.fee_sink = value

    @property
    def _balances(self) -> dict[str, int]:
        return self.store.balances

    @_balances.setter
    def _balances(self, value: dict[str, int]) -> None:
        self.store.balances = value

    @property
    def _contracts(self) -> dict[str, Contract]:
        return self.store.contracts

    @property
    def _scheduled(self) -> list[ScheduledCall]:
        return self.store.scheduled

    @property
    def _nonces(self) -> dict[str, int]:
        return self.store.nonces

    @property
    def _signer_keys(self) -> dict[str, bytes]:
        return self.store.signer_keys

    @property
    def base_fee_wei(self) -> int:
        return self.store.base_fee_wei

    @property
    def burned(self) -> int:
        return self.store.burned

    def state_hash(self) -> str:
        """Canonical fingerprint of the entire chain state (hex digest)."""
        with self.lock:
            return self.store.state_hash()

    def snapshot(self) -> None:
        """Checkpoint the backing store (folds a WAL into its snapshot)."""
        with self.lock:
            self.store.snapshot()

    def close(self) -> None:
        self.store.close()

    # -- accounts -------------------------------------------------------------

    def create_account(self, balance_eth: float = 0.0, label: str = "") -> str:
        # Every mutating entry point commits in a finally block: whatever
        # mutated before an exception is still logged, so a durable store
        # never silently desynchronizes from the live state.
        with self.lock:
            self.store.begin()
            try:
                self.store.account_seq += 1
                tag = f":{self.chain_id}" if self.chain_id else ""
                material = f"account{tag}:{self.store.account_seq}:{label}".encode()
                address = "0x" + hashlib.sha256(material).hexdigest()[:40]
                self.store.balances[address] = int(balance_eth * WEI_PER_ETH)
            finally:
                self.store.commit("account")
            return address

    def register_signer(self, verifying_key_bytes: bytes, balance_eth: float = 0.0) -> str:
        """Create an account whose transactions must be Schnorr-signed.

        The address is derived from the public key (Ethereum-style), so
        only the matching signing key can authorise spends in
        ``require_signatures`` mode.
        """
        from ..crypto.schnorr import VerifyingKey

        address = VerifyingKey.from_bytes(verifying_key_bytes).address()
        with self.lock:
            self.store.begin()
            try:
                self.store.balances.setdefault(address, 0)
                self.store.balances[address] += int(balance_eth * WEI_PER_ETH)
                self.store.signer_keys[address] = bytes(verifying_key_bytes)
                self.store.nonces.setdefault(address, 0)
            finally:
                self.store.commit("account")
            return address

    def nonce_of(self, address: str) -> int:
        return self.store.nonces.get(address, 0)

    def _authenticate(self, tx) -> str | None:
        """Returns an error string, or None when the sender is authentic."""
        from ..crypto.schnorr import Signature, VerifyingKey

        if tx.sender in self._contracts or tx.sender == "0xscheduler":
            return None  # internal senders are not externally owned
        expected_key = self._signer_keys.get(tx.sender)
        if expected_key is None:
            return f"unknown signer account {tx.sender[:10]}"
        if tx.public_key != expected_key:
            return "public key does not match the sender address"
        if tx.signature is None:
            return "missing signature"
        if tx.nonce != self._nonces.get(tx.sender, 0):
            return f"bad nonce {tx.nonce} (expected {self._nonces.get(tx.sender, 0)})"
        try:
            signature = Signature.from_bytes(tx.signature)
        except ValueError as exc:
            return f"malformed signature: {exc}"
        verifying_key = VerifyingKey.from_bytes(expected_key)
        if not verifying_key.verify(tx.signing_payload(), signature):
            return "signature verification failed"
        return None

    def balance_of(self, address: str) -> int:
        return self.store.balances.get(address, 0)

    def balance_of_eth(self, address: str) -> float:
        return self.balance_of(address) / WEI_PER_ETH

    def _debit(self, address: str, amount: int) -> None:
        if self.store.balances.get(address, 0) < amount:
            raise RevertError(f"insufficient balance at {address[:10]}")
        self.store.balances[address] -= amount

    def _credit(self, address: str, amount: int) -> None:
        self.store.balances[address] = self.store.balances.get(address, 0) + amount

    def transfer(self, sender: str, to: str, amount_wei: int) -> None:
        """Internal value transfer (used by contracts for payouts)."""
        self._debit(sender, amount_wei)
        self._credit(to, amount_wei)

    def total_supply(self) -> int:
        """Conservation check helper: balances + collected + burned fees.

        ``burned`` stays 0 on chains without a fee market, so the legacy
        invariant ``balances + fee_sink == const`` is unchanged; with a
        mempool the burn leg joins the equation and escrowed fee budgets
        (held by the ``0xmempool`` account) remain inside ``balances``.
        """
        with self.lock:
            return (
                sum(self.store.balances.values())
                + self.store.fee_sink
                + self.store.burned
            )

    # -- contracts --------------------------------------------------------------

    def deploy(self, contract: Contract, deployer: str, deposit_bytes: int = 0) -> str:
        """Install a contract; charges the deployer for its on-chain size."""
        with self.lock:
            self.store.begin()
            try:
                self.store.account_seq += 1
                tag = f":{self.chain_id}" if self.chain_id else ""
                address = (
                    "0xc"
                    + hashlib.sha256(
                        f"contract{tag}:{self.store.account_seq}".encode()
                    ).hexdigest()[:39]
                )
                contract.address = address
                contract.chain = self
                self.store.contracts[address] = contract
                self.store.touch_contract(address)
                self.store.balances.setdefault(address, 0)
                if deposit_bytes:
                    gas = self.schedule.storage_gas(deposit_bytes)
                    fee = int(gas * 5 * WEI_PER_GWEI)
                    self._debit(deployer, fee)
                    self.store.fee_sink += fee
            finally:
                self.store.commit("deploy")
            return address

    def contract_at(self, address: str) -> Contract:
        contract = self.store.contracts[address]
        self.store.touch_contract(address)
        return contract

    # -- transactions -------------------------------------------------------------

    def transact(self, tx: Transaction, payload_bytes: int = 0) -> Receipt:
        """Execute a transaction against the current pending block.

        ``payload_bytes`` sizes the calldata for gas and chain-growth
        accounting when the args are Python objects rather than real ABI
        bytes.
        """
        with self.lock:
            self.store.begin()
            try:
                receipt = self._execute(tx, payload_bytes)
            except BaseException:
                # An unexpected fault (not a modelled revert): log whatever
                # state mutated so a durable store never silently diverges.
                pending = self.blocks[-1]
                self.store.commit(
                    "tx-abort",
                    pending_gas=pending.gas_used,
                    pending_bytes=pending.byte_size,
                )
                raise
            pending = self.blocks[-1]
            self.store.commit(
                "tx",
                receipt=receipt,
                pending_gas=pending.gas_used,
                pending_bytes=pending.byte_size,
            )
            return receipt

    def submit(self, tx: Transaction, payload_bytes: int = 0, *, replace: bool = False):
        """Queue a transaction through the mempool admission path.

        Returns the admitted :class:`~repro.chain.mempool.PendingEntry`;
        raises a :class:`~repro.chain.mempool.MempoolRejection` subclass
        (``PoolFull``, ``Underpriced``, ...) when admission fails.  The
        transaction executes when a later :meth:`mine_block` drains it.
        """
        if self.pool is None:
            raise RuntimeError(
                "this chain has no mempool; construct it with "
                "Blockchain(mempool=MempoolConfig()) or use transact()"
            )
        with self.lock:
            return self.pool.submit(tx, payload_bytes, replace=replace)

    def _tx_hash(self, tx: Transaction) -> str:
        """Chain-sequenced transaction hash.

        Derived from this chain's own transaction counter (not a process
        global), so receipts — and therefore ``state_hash()`` — are a pure
        function of the chain's history: two same-seed simulations in one
        process produce identical fingerprints.
        """
        material = (
            f"tx:{self.chain_id}:{self.store.tx_seq}:{tx.sender}:{tx.to}:"
            f"{tx.method}:{tx.value}"
        ).encode()
        return hashlib.sha256(material).hexdigest()

    def _execute(
        self,
        tx: Transaction,
        payload_bytes: int,
        base_fee_wei: int | None = None,
        tip_wei: int = 0,
        burn_base: bool = True,
    ) -> Receipt:
        self.store.tx_seq += 1
        tx_hash = self._tx_hash(tx)
        meter = GasMeter(tx.gas_limit)
        meter.consume(self.schedule.tx_intrinsic)
        meter.consume(payload_bytes * self.schedule.calldata_nonzero_byte)
        if self.require_signatures:
            auth_error = self._authenticate(tx)
            if auth_error is not None:
                receipt = Receipt(
                    tx_hash=tx_hash,
                    success=False,
                    gas_used=meter.used,
                    error=f"authentication: {auth_error}",
                    block_number=len(self.blocks),
                )
                self.blocks[-1].receipts.append(receipt)
                return receipt
            if tx.sender in self.store.nonces:
                self.store.nonces[tx.sender] += 1
        contract = None
        snapshot = dict(self.store.balances)
        try:
            if tx.value:
                self._debit(tx.sender, tx.value)
            if tx.to is None:
                return_value = None
            else:
                contract = self.store.contracts.get(tx.to)
                if contract is None:
                    # Plain transfer to an externally-owned account.
                    self._credit(tx.to, tx.value)
                    return_value = None
                else:
                    self.store.touch_contract(tx.to)
                    self._credit(contract.address, tx.value)
                    ctx = CallContext(
                        sender=tx.sender,
                        value=tx.value,
                        timestamp=self.time,
                        block_number=len(self.blocks),
                        gas=meter,
                        chain=self,
                    )
                    method: Callable = getattr(contract, tx.method or "")
                    contract._pending_events.clear()
                    return_value = method(ctx, *tx.args)
            success, error = True, None
        except (RevertError, OutOfGasError, AssertionError) as exc:
            self.store.balances = snapshot  # revert state changes
            if contract is not None:
                contract._pending_events.clear()
            success, error, return_value = False, str(exc), None
        if base_fee_wei is None:
            # Legacy direct path: the whole gas price goes to the sink.
            fee = int(meter.used * tx.gas_price_gwei * WEI_PER_GWEI)
            try:
                self._debit(tx.sender, fee)
            except RevertError:
                fee = self.store.balances.get(tx.sender, 0)
                self.store.balances[tx.sender] = 0
            self.store.fee_sink += fee
        else:
            # Fee-market path: base fee is burned (or sunk when the
            # market runs with burn disabled), the tip pays the miner.
            burn = meter.used * base_fee_wei
            tip = meter.used * tip_wei
            try:
                self._debit(tx.sender, burn + tip)
            except RevertError:
                available = self.store.balances.get(tx.sender, 0)
                self.store.balances[tx.sender] = 0
                burn = min(burn, available)
                tip = available - burn
            if burn_base:
                self.store.burned += burn
                self.store.fee_sink += tip
            else:
                self.store.fee_sink += burn + tip
        receipt = Receipt(
            tx_hash=tx_hash,
            success=success,
            gas_used=meter.used,
            error=error,
            return_value=return_value,
            block_number=len(self.blocks),
        )
        if success and contract is not None:
            receipt.events = list(contract._pending_events)
            for event in receipt.events:
                self.store.events.append(event)
            contract._pending_events.clear()
        pending = self.blocks[-1]
        pending.receipts.append(receipt)
        pending.gas_used += meter.used
        pending.byte_size += payload_bytes + 110  # tx envelope overhead
        return receipt

    def call(self, address: str, method: str, *args: Any) -> Any:
        """Read-only contract call (no gas, no state mutation expected)."""
        with self.lock:
            contract = self.store.contracts[address]
            ctx = CallContext(
                sender="0xview",
                value=0,
                timestamp=self.time,
                block_number=len(self.blocks),
                gas=GasMeter(10**12),
                chain=self,
            )
            return getattr(contract, method)(ctx, *args)

    # -- scheduling (Ethereum-Alarm-Clock style) -----------------------------------

    def schedule_call(
        self, contract: str, method: str, delay: float, args: tuple = ()
    ) -> None:
        with self.lock:
            self.store.begin()
            try:
                self.store.schedule_seq += 1
                self.store.scheduled.append(
                    ScheduledCall(
                        due_time=self.time + delay,
                        sequence=self.store.schedule_seq,
                        contract=contract,
                        method=method,
                        args=args,
                    )
                )
                self.store.scheduled.sort()
            finally:
                self.store.commit("schedule")

    # -- block production ------------------------------------------------------------

    def mine_block(self) -> Block:
        """Seal the pending block, advance time, fire due scheduled calls.

        On a mempool chain the pool first expires stale entries and then
        drains its best-priced transactions into the pending block (each
        drained execution commits its own WAL record), and the sealing
        commit stamps the block's base fee and rolls the fee market one
        step — so a crash anywhere in between recovers mid-drain exactly.
        """
        with self.lock:
            if self.pool is not None:
                self.pool.expire()
                self.pool.drain_into_block()
            self.store.begin()
            try:
                sealed = self.blocks[-1]
                sealed.timestamp = self.time
                sealed.byte_size += self.base_block_bytes
                if self.pool is not None:
                    self.pool.on_block_sealed(sealed)
                self.store.time += self.block_time
                new_block = Block(
                    number=len(self.blocks),
                    timestamp=self.time,
                    parent_hash=sealed.block_hash,
                )
                self.blocks.append(new_block)
            finally:
                self.store.commit(
                    "block",
                    sealed_timestamp=sealed.timestamp,
                    sealed_bytes=sealed.byte_size,
                    sealed_base_fee=sealed.base_fee_wei,
                    time=self.time,
                    new_block=new_block,
                )
            self._fire_due_calls()
            return sealed

    def advance_time(self, seconds: float) -> None:
        """Mine blocks until ``seconds`` of chain time have passed."""
        target = self.time + seconds
        while self.time < target:
            self.mine_block()

    def _fire_due_calls(self) -> None:
        if not (self._scheduled and self._scheduled[0].due_time <= self.time):
            return
        # The scheduler account is ensured in its own record *before* any
        # call is popped, so nothing ever hits the WAL between a pop and
        # its transaction's commit.
        self.store.begin()
        try:
            self.store.balances.setdefault("0xscheduler", 0)
        finally:
            self.store.commit("account")
        while self._scheduled and self._scheduled[0].due_time <= self.time:
            # The pop itself is deliberately unlogged: the fired call's tx
            # record captures the post-pop schedule, making pop + execution
            # one atomic WAL unit.  A crash before that commit recovers
            # with the call still queued, and the next mined block
            # re-fires it (at-least-once semantics).
            call = self.store.scheduled.pop(0)
            tx = Transaction(
                sender="0xscheduler",
                to=call.contract,
                method=call.method,
                args=call.args,
                gas_limit=self.block_gas_limit,
                gas_price_gwei=0.0,  # prepaid by the contract's deposit model
            )
            self.transact(tx)

    # -- introspection ------------------------------------------------------------------

    def chain_bytes(self) -> int:
        return sum(block.byte_size for block in self.blocks)

    def congestion_seconds(self) -> float:
        """Chain time the recorded traffic occupies under the gas limit.

        The simulator appends every transaction to the current pending
        block, so a burst that would not fit one real block still lands in
        one simulated block.  This translates each block's recorded gas
        back into the block slots it would actually occupy —
        ``ceil(gas_used / block_gas_limit)`` — and prices them in seconds.
        Idle blocks carry no settlement traffic and are not counted.
        The fabric uses this as its per-lane settlement-latency metric.
        """
        occupied_slots = sum(
            -(-block.gas_used // self.block_gas_limit)
            for block in self.blocks
            if block.gas_used > 0
        )
        return occupied_slots * self.block_time

    def events_named(self, name: str) -> list[Event]:
        return [event for event in self.events if event.name == name]
