"""Light client: independent re-verification of on-chain audit trails.

The transparency half of the paper's pitch: because challenges, proofs and
public keys are all on the chain, *any* third party — not just the
contract — can re-check every audit after the fact.  This module is that
third party.  It consumes only serialized on-chain material (pk bytes,
48-byte challenges, 288-byte proofs) and recomputes each round's verdict,
flagging any disagreement with what the contract recorded.

A disagreement would mean a mis-executing contract (or a forged trail) —
the situation the blockchain's honest-majority assumption is supposed to
prevent, and exactly what an auditor-of-the-auditor looks for.

Two trails exist since the epoch rollup landed, and both are covered:

* the **per-round trail** (:class:`LightClient`) re-verifies each round's
  on-chain bytes directly;
* the **checkpointed trail** (:class:`CheckpointLightClient`) verifies
  per-file *inclusion proofs* against committed Merkle roots, and replays
  whole checkpoints from their published leaf sets — a disagreement here
  is exactly the opening a fraud-proof challenger submits on chain
  (:mod:`~repro.chain.contracts.checkpoint_contract`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.challenge import Challenge
from ..core.keys import PublicKey
from ..core.params import ProtocolParams
from ..core.proof import PrivateProof
from ..core.verifier import Verifier
from ..crypto.merkle import MerkleProof, MerkleTree, verify_merkle_proof
from ..rollup.checkpoint import Checkpoint, aggregated_proof_digest
from ..rollup.records import RoundRecord
from ..rollup.verdict import leaf_ground_truth
from .contracts.audit_contract import AuditContract


@dataclass(frozen=True)
class TrailRecord:
    """One audit round as read off the chain (pure bytes + claimed verdict)."""

    round_id: int
    challenge_bytes: bytes
    proof_bytes: bytes | None
    claimed_verdict: bool | None


@dataclass
class ReplayReport:
    """Outcome of re-verifying a whole trail."""

    rounds_checked: int = 0
    agreements: int = 0
    disagreements: list[int] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.disagreements


def export_trail(contract: AuditContract) -> list[TrailRecord]:
    """Serialize a contract's audit history the way a node would serve it."""
    return [
        TrailRecord(
            round_id=record.round_id,
            challenge_bytes=record.challenge.to_bytes(),
            proof_bytes=record.proof_bytes,
            claimed_verdict=record.passed,
        )
        for record in contract.rounds
    ]


class LightClient:
    """Re-verifies an audit trail from raw on-chain bytes."""

    def __init__(
        self,
        public_key_bytes: bytes,
        file_name: int,
        num_chunks: int,
        params: ProtocolParams,
    ):
        self.public = PublicKey.from_bytes(public_key_bytes)
        self.file_name = file_name
        self.num_chunks = num_chunks
        self.params = params
        self._verifier = Verifier(self.public, file_name, num_chunks)

    def verify_round(self, record: TrailRecord):
        """Recompute one round's verdict from its bytes.

        Returns a truthy/falsy :class:`~repro.core.verifier.VerifyOutcome`
        (or plain ``False`` for a structurally missing/bad proof).
        """
        if record.proof_bytes is None:
            return False  # missing proof is a fail, as the contract rules
        challenge = Challenge.from_bytes(
            record.challenge_bytes,
            k=self.params.k,
            seed_bytes=self.params.seed_bytes,
        )
        try:
            proof = PrivateProof.from_bytes(record.proof_bytes)
        except ValueError:
            return False
        return self._verifier.verify_private(challenge, proof)

    def replay(self, trail: list[TrailRecord]) -> ReplayReport:
        """Re-verify every round and compare against the claimed verdicts."""
        report = ReplayReport()
        for record in trail:
            verdict = self.verify_round(record)
            report.rounds_checked += 1
            if record.claimed_verdict is None or bool(verdict) == bool(
                record.claimed_verdict
            ):
                report.agreements += 1
            else:
                report.disagreements.append(record.round_id)
        return report


def audit_the_auditor(
    contract: AuditContract, params: ProtocolParams
) -> ReplayReport:
    """One-call convenience: export a contract's trail and replay it."""
    assert contract.public_key is not None and contract.file_name is not None
    client = LightClient(
        public_key_bytes=contract.public_key.to_bytes(),
        file_name=contract.file_name,
        num_chunks=contract.num_chunks,
        params=params,
    )
    return client.replay(export_trail(contract))


# --------------------------------------------------------------------------- #
# Checkpointed trails                                                         #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class InclusionOutcome:
    """Verdict of checking one leaf against a committed checkpoint root.

    ``ok`` means: the proof opens the committed root, the leaf decodes,
    belongs to the commitment's epoch, carries the beacon-derived challenge
    and a verdict that matches independent re-verification.  Any failure
    names its reason — which doubles as the fraud ground the light client
    would cite when escalating to ``CheckpointContract.challenge_leaf``.
    """

    ok: bool
    reason: str = ""             # "" iff ok
    record: RoundRecord | None = None


@dataclass
class CheckpointReplayReport:
    """Outcome of re-verifying checkpointed trails leaf by leaf."""

    checkpoints_checked: int = 0
    rounds_checked: int = 0
    agreements: int = 0
    disagreements: list[tuple[int, int]] = field(default_factory=list)
    #: epochs whose published leaf set does not hash to the committed root
    root_mismatches: list[int] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.disagreements and not self.root_mismatches


class CheckpointLightClient:
    """Re-verifies checkpointed epochs from commitments + published leaves.

    Needs only what the chain itself serves: the instance registry
    (name -> pk bytes + chunk count, from
    ``CheckpointContract.export_instance_registry``), the protocol
    parameters, and the beacon — the same inputs the on-chain fraud proof
    consumes.
    """

    def __init__(
        self,
        instance_registry: dict[int, tuple[bytes, int]],
        params: ProtocolParams,
        beacon,
        fabric_lanes: int | None = None,
    ):
        self.params = params
        self.beacon = beacon
        # Total lane count of the fabric under audit (when known): lets
        # fabric inclusion proofs additionally enforce the deterministic
        # placement rule lane_id == lane(name) of PROTOCOL.md section 10.
        self.fabric_lanes = fabric_lanes
        self._registry = dict(instance_registry)
        self._verifiers: dict[int, Verifier] = {}

    def _verifier_for(self, name: int) -> Verifier | None:
        verifier = self._verifiers.get(name)
        if verifier is None:
            entry = self._registry.get(name)
            if entry is None:
                return None
            pk_bytes, num_chunks = entry
            verifier = Verifier(
                PublicKey.from_bytes(pk_bytes), name, num_chunks
            )
            self._verifiers[name] = verifier
        return verifier

    def check_record(
        self, commitment: Checkpoint, record: RoundRecord
    ) -> InclusionOutcome:
        """Validate one already-included leaf against epoch ground truth.

        Applies the *same* rule set the on-chain fraud proof applies
        (:func:`repro.rollup.verdict.leaf_ground_truth`), so a leaf this
        client flags is exactly a leaf worth challenging.
        """
        verdict = leaf_ground_truth(
            record,
            commitment.epoch,
            self.params,
            self.beacon,
            self._verifier_for,
        )
        if verdict.fraudulent:
            return InclusionOutcome(
                ok=False, reason=verdict.fraud_code, record=record
            )
        return InclusionOutcome(ok=True, record=record)

    def verify_inclusion(
        self, commitment: Checkpoint, proof: MerkleProof
    ) -> InclusionOutcome:
        """Check one file's inclusion proof against a committed root."""
        if not verify_merkle_proof(commitment.root, proof):
            return InclusionOutcome(ok=False, reason="not-included")
        try:
            record = RoundRecord.from_bytes(proof.leaf_data)
        except ValueError:
            return InclusionOutcome(ok=False, reason="malformed-record")
        return self.check_record(commitment, record)

    def verify_fabric_inclusion(
        self, commitment, proof
    ) -> InclusionOutcome:
        """Check a two-stage leaf → lane-root → fabric-root opening.

        ``commitment`` is an 87-byte
        :class:`~repro.rollup.fabric.FabricCheckpoint` (the cross-shard
        super-commitment), ``proof`` a
        :class:`~repro.rollup.fabric.FabricInclusionProof`.  Stage one
        opens the lane's 85-byte commitment into the fabric root; stage
        two opens the round record into that lane commitment's verdict
        root; then the leaf faces the same epoch ground truth as a
        single-chain inclusion — so every fraud ground of the per-lane
        checkpoint contract is preserved under sharding.

        The opened record must be *for the file the proof claims*
        (``name-mismatch`` otherwise — a DA server cannot answer a query
        about file X with some other accepted leaf), and when the client
        knows the fabric's lane count the placement rule
        ``lane_id == lane(name)`` is enforced too (``lane-misplaced``).
        """
        from ..rollup.checkpoint import Checkpoint as LaneCheckpoint

        if not verify_merkle_proof(commitment.fabric_root, proof.lane_proof):
            return InclusionOutcome(ok=False, reason="lane-not-included")
        try:
            lane_commitment = LaneCheckpoint.from_bytes(proof.lane_proof.leaf_data)
        except ValueError:
            return InclusionOutcome(ok=False, reason="malformed-lane-commitment")
        if lane_commitment.epoch != commitment.epoch:
            return InclusionOutcome(ok=False, reason="lane-epoch-mismatch")
        if not verify_merkle_proof(lane_commitment.root, proof.leaf_proof):
            return InclusionOutcome(ok=False, reason="not-included")
        try:
            record = RoundRecord.from_bytes(proof.leaf_proof.leaf_data)
        except ValueError:
            return InclusionOutcome(ok=False, reason="malformed-record")
        if record.name != proof.name:
            return InclusionOutcome(
                ok=False, reason="name-mismatch", record=record
            )
        if self.fabric_lanes is not None:
            from .fabric import lane_index_for_key

            if lane_index_for_key(proof.name, self.fabric_lanes) != proof.lane_id:
                return InclusionOutcome(
                    ok=False, reason="lane-misplaced", record=record
                )
        return self.check_record(lane_commitment, record)

    def replay_checkpoint(
        self,
        commitment: Checkpoint,
        records: tuple[RoundRecord, ...],
        report: CheckpointReplayReport | None = None,
    ) -> CheckpointReplayReport:
        """Replay one checkpoint from its full published leaf set.

        Rebuilds the Merkle tree over the served records and compares the
        root, counts and aggregated-proof digest against the commitment
        (data-availability integrity), then re-verifies every leaf verdict
        (verdict integrity).
        """
        report = report or CheckpointReplayReport()
        report.checkpoints_checked += 1
        ordered = tuple(sorted(records, key=lambda record: record.name))
        tree = MerkleTree([record.to_bytes() for record in ordered])
        accepted = sum(1 for record in ordered if record.verdict)
        if (
            tree.root != commitment.root
            or len(ordered) != commitment.num_leaves
            or accepted != commitment.accepted
            or aggregated_proof_digest(ordered) != commitment.proof_digest
        ):
            report.root_mismatches.append(commitment.epoch)
        for record in ordered:
            report.rounds_checked += 1
            if self.check_record(commitment, record).ok:
                report.agreements += 1
            else:
                report.disagreements.append((commitment.epoch, record.name))
        return report

    def replay_reconstructed(
        self,
        commitment: Checkpoint,
        reconstruction,
        report: CheckpointReplayReport | None = None,
    ) -> CheckpointReplayReport:
        """Replay a checkpoint from a DA k-of-n reconstruction.

        The trust-free path in: ``reconstruction`` is a
        :class:`~repro.da.commit.DaReconstruction` produced by
        :meth:`~repro.da.sampling.DaSampler.reconstruct` — its records were
        decoded from sampled chunks and already proven to hash to the DA
        commitment's bound checkpoint root.  This method refuses anything
        unverified or bound to a *different* checkpoint, then runs the
        ordinary full replay, so ``challenge_counts`` evidence and verdict
        re-checks never rest on aggregator-served leaf sets.
        """
        from ..da.errors import DaReconstructionMismatch, DaUnreconstructed

        if not getattr(reconstruction, "verified", False):
            raise DaUnreconstructed(
                "light client got an unverified reconstruction: sample and "
                "reconstruct via DaSampler before replaying"
            )
        if reconstruction.commitment.checkpoint_root != commitment.root:
            raise DaReconstructionMismatch(
                "reconstruction is bound to a different checkpoint root "
                "than the commitment being replayed"
            )
        return self.replay_checkpoint(
            commitment, reconstruction.records, report=report
        )


def audit_the_auditor_checkpoints(
    contract, bundles, params: ProtocolParams | None = None
) -> CheckpointReplayReport:
    """Replay every live checkpoint a contract has settled.

    ``contract`` is a
    :class:`~repro.chain.contracts.checkpoint_contract.CheckpointContract`;
    ``bundles`` maps epoch -> record tuple (or an object with
    ``bundle_for_epoch``, e.g. a
    :class:`~repro.rollup.pipeline.CheckpointPipeline` — the aggregator's
    data-availability obligation).  Slashed checkpoints are skipped: the
    chain already voided them.
    """
    from .contracts.checkpoint_contract import CheckpointStatus

    client = CheckpointLightClient(
        contract.export_instance_registry(),
        params or contract.params,
        contract.beacon,
    )
    report = CheckpointReplayReport()
    for entry in contract.checkpoints:
        if entry.status is CheckpointStatus.SLASHED:
            continue
        epoch = entry.commitment.epoch
        if hasattr(bundles, "bundle_for_epoch"):
            records = bundles.bundle_for_epoch(epoch).records
        else:
            records = bundles[epoch]
            if hasattr(records, "records"):  # a CheckpointBundle
                records = records.records
        client.replay_checkpoint(entry.commitment, tuple(records), report)
    return report


def audit_the_auditor_fabric(aggregator) -> CheckpointReplayReport:
    """Replay every lane's settled checkpoints of a sharded fabric.

    ``aggregator`` is a
    :class:`~repro.rollup.fabric.CrossShardAggregator`; each lane's
    bonded contract is replayed against that lane's published leaf sets
    (the per-lane data-availability obligation) into one merged report.
    """
    report = CheckpointReplayReport()
    for lane_id, pipeline in sorted(aggregator.pipelines.items()):
        lane_report = audit_the_auditor_checkpoints(
            pipeline.contract, pipeline, params=aggregator.params
        )
        report.checkpoints_checked += lane_report.checkpoints_checked
        report.rounds_checked += lane_report.rounds_checked
        report.agreements += lane_report.agreements
        report.disagreements.extend(lane_report.disagreements)
        report.root_mismatches.extend(lane_report.root_mismatches)
    return report
