"""Light client: independent re-verification of on-chain audit trails.

The transparency half of the paper's pitch: because challenges, proofs and
public keys are all on the chain, *any* third party — not just the
contract — can re-check every audit after the fact.  This module is that
third party.  It consumes only serialized on-chain material (pk bytes,
48-byte challenges, 288-byte proofs) and recomputes each round's verdict,
flagging any disagreement with what the contract recorded.

A disagreement would mean a mis-executing contract (or a forged trail) —
the situation the blockchain's honest-majority assumption is supposed to
prevent, and exactly what an auditor-of-the-auditor looks for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.challenge import Challenge
from ..core.keys import PublicKey
from ..core.params import ProtocolParams
from ..core.proof import PrivateProof
from ..core.verifier import Verifier
from .contracts.audit_contract import AuditContract


@dataclass(frozen=True)
class TrailRecord:
    """One audit round as read off the chain (pure bytes + claimed verdict)."""

    round_id: int
    challenge_bytes: bytes
    proof_bytes: bytes | None
    claimed_verdict: bool | None


@dataclass
class ReplayReport:
    """Outcome of re-verifying a whole trail."""

    rounds_checked: int = 0
    agreements: int = 0
    disagreements: list[int] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.disagreements


def export_trail(contract: AuditContract) -> list[TrailRecord]:
    """Serialize a contract's audit history the way a node would serve it."""
    return [
        TrailRecord(
            round_id=record.round_id,
            challenge_bytes=record.challenge.to_bytes(),
            proof_bytes=record.proof_bytes,
            claimed_verdict=record.passed,
        )
        for record in contract.rounds
    ]


class LightClient:
    """Re-verifies an audit trail from raw on-chain bytes."""

    def __init__(
        self,
        public_key_bytes: bytes,
        file_name: int,
        num_chunks: int,
        params: ProtocolParams,
    ):
        self.public = PublicKey.from_bytes(public_key_bytes)
        self.file_name = file_name
        self.num_chunks = num_chunks
        self.params = params
        self._verifier = Verifier(self.public, file_name, num_chunks)

    def verify_round(self, record: TrailRecord):
        """Recompute one round's verdict from its bytes.

        Returns a truthy/falsy :class:`~repro.core.verifier.VerifyOutcome`
        (or plain ``False`` for a structurally missing/bad proof).
        """
        if record.proof_bytes is None:
            return False  # missing proof is a fail, as the contract rules
        challenge = Challenge.from_bytes(
            record.challenge_bytes,
            k=self.params.k,
            seed_bytes=self.params.seed_bytes,
        )
        try:
            proof = PrivateProof.from_bytes(record.proof_bytes)
        except ValueError:
            return False
        return self._verifier.verify_private(challenge, proof)

    def replay(self, trail: list[TrailRecord]) -> ReplayReport:
        """Re-verify every round and compare against the claimed verdicts."""
        report = ReplayReport()
        for record in trail:
            verdict = self.verify_round(record)
            report.rounds_checked += 1
            if record.claimed_verdict is None or bool(verdict) == bool(
                record.claimed_verdict
            ):
                report.agreements += 1
            else:
                report.disagreements.append(record.round_id)
        return report


def audit_the_auditor(
    contract: AuditContract, params: ProtocolParams
) -> ReplayReport:
    """One-call convenience: export a contract's trail and replay it."""
    assert contract.public_key is not None and contract.file_name is not None
    client = LightClient(
        public_key_bytes=contract.public_key.to_bytes(),
        file_name=contract.file_name,
        num_chunks=contract.num_chunks,
        params=params,
    )
    return client.replay(export_trail(contract))
