"""Off-chain agents reacting to on-chain events (the D and S daemons).

The paper's deployment has three processes: the contract on the chain, the
data owner's client and the storage provider's daemon.  These classes are
the two daemons: after every block they inspect the contract state and act
(the provider answers open challenges; the owner just watches — its money
moves automatically through the contract's pass/fail logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.challenge import Challenge
from ..core.proof import PrivateProof
from ..core.protocol import OutsourcingPackage, StorageProvider
from ..core.prover import ProveReport, ResponseWithheld
from .blockchain import Blockchain, Transaction
from .contracts.audit_contract import AuditContract, ContractTerms, State


@dataclass
class ProviderAgent:
    """The storage provider's daemon: answers challenges as they appear."""

    chain: Blockchain
    account: str
    provider: StorageProvider
    contract_address: str
    file_name: int
    prove_reports: list[ProveReport] = field(default_factory=list)
    misbehave_after_round: int | None = None  # drop data mid-contract
    #: submit proofs through the chain's mempool instead of transact();
    #: requires the chain to carry a pool.  Proofs then compete for block
    #: space at ``tip_gwei`` under the fee market (audit-storm realism).
    use_pool: bool = False
    tip_gwei: float = 1.0
    pool_gas_limit: int = 1_000_000
    #: keep the legacy gas_price as fee cap + tip instead of the wallet
    #: suggestion — what the differential congestion test uses to prove
    #: the pool path charges bit-identical fees to transact().
    pool_legacy_fees: bool = False

    def pending_challenge(self) -> Challenge | None:
        """The challenge awaiting this agent's proof, if any.

        Applies the misbehaviour schedule (dropping the file when its round
        comes) and returns None when no response is due — either nothing is
        open or the data is gone and the agent stays silent.
        """
        contract = self.chain.contract_at(self.contract_address)
        assert isinstance(contract, AuditContract)
        if contract.state is not State.PROVE:
            return None
        current = contract.rounds[contract.cnt]
        if current.proof_bytes is not None:
            return None
        if (
            self.misbehave_after_round is not None
            and contract.cnt >= self.misbehave_after_round
        ):
            self.provider.drop_file(self.file_name)
        try:
            self.provider.prover_for(self.file_name)
        except KeyError:
            return None  # data gone: stay silent and eat the timeout failure
        return current.challenge

    def submit(self, proof: PrivateProof, report: ProveReport | None = None) -> None:
        """Post a finished proof for the currently-open round."""
        if report is not None:
            self.prove_reports.append(report)
        payload = proof.to_bytes()
        if self.use_pool:
            pool = self.chain.pool
            assert pool is not None, "use_pool requires a mempool-enabled chain"
            if self.pool_legacy_fees:
                max_fee_gwei = tip_gwei = None
            else:
                max_fee_gwei, tip_gwei = pool.suggest_fees(self.tip_gwei)
            self.chain.submit(
                Transaction(
                    sender=self.account,
                    to=self.contract_address,
                    method="submit_proof",
                    args=(payload,),
                    gas_limit=self.pool_gas_limit,
                    max_fee_gwei=max_fee_gwei,
                    priority_fee_gwei=tip_gwei,
                ),
                payload_bytes=len(payload),
            )
            return
        self.chain.transact(
            Transaction(
                sender=self.account,
                to=self.contract_address,
                method="submit_proof",
                args=(payload,),
            ),
            payload_bytes=len(payload),
        )

    def on_block(self) -> None:
        challenge = self.pending_challenge()
        if challenge is None:
            return
        report = ProveReport()
        try:
            proof = self.provider.respond(self.file_name, challenge, report)
        except (KeyError, ResponseWithheld):
            return  # data gone or provider offline: eat the timeout failure
        self.submit(proof, report)


@dataclass
class AuditDeployment:
    """Everything created by :func:`deploy_audit_contract`."""

    contract_address: str
    owner_account: str
    provider_account: str
    provider_agent: ProviderAgent


def deploy_audit_contract(
    chain,
    package: OutsourcingPackage,
    provider: StorageProvider,
    terms: ContractTerms,
    beacon,
    params,
    owner_funds_eth: float = 10.0,
    provider_funds_eth: float = 10.0,
    native_verify_ms: float | None = None,
    registry_address: str | None = None,
    validate: bool = True,
) -> AuditDeployment:
    """Run the full Initialize phase of Fig. 2 and return the live system.

    Performs: account creation, contract deployment, negotiate (D),
    off-chain package validation + acknowledge (S), and both freeze
    deposits; the first challenge is scheduled on the chain clock.  With
    ``registry_address`` the contract reports round outcomes to the
    reputation registry inline and dispute slashes reach the provider's
    stake (the caller must authorize the new contract as a reporter).

    ``chain`` may be a single :class:`Blockchain` or a
    :class:`~repro.chain.fabric.ShardedChainFabric`: on a fabric the whole
    deployment (both accounts and the contract) lands on the audited
    file's deterministic home lane, so agents and the contract never cross
    a shard boundary.
    """
    if hasattr(chain, "home_lane"):  # ShardedChainFabric
        chain = chain.home_lane(package.name)
    owner_account = chain.create_account(owner_funds_eth, label="data-owner")
    provider_account = chain.create_account(provider_funds_eth, label="provider")
    kwargs = {}
    if native_verify_ms is not None:
        kwargs["native_verify_ms"] = native_verify_ms
    contract = AuditContract(
        owner=owner_account,
        provider=provider_account,
        terms=terms,
        beacon=beacon,
        params=params,
        registry_address=registry_address,
        **kwargs,
    )
    address = chain.deploy(contract, deployer=owner_account)

    receipt = chain.transact(
        Transaction(
            sender=owner_account,
            to=address,
            method="negotiate",
            args=(package.public, package.name, package.num_chunks),
        ),
        payload_bytes=package.public.byte_size(),
    )
    if not receipt.success:
        raise RuntimeError(f"negotiate failed: {receipt.error}")

    if not provider.accept(package, validate=validate):
        chain.transact(
            Transaction(sender=provider_account, to=address, method="reject")
        )
        raise RuntimeError("provider rejected the package (invalid metadata)")
    receipt = chain.transact(
        Transaction(sender=provider_account, to=address, method="acknowledge")
    )
    if not receipt.success:
        raise RuntimeError(f"acknowledge failed: {receipt.error}")

    for sender, amount in (
        (owner_account, terms.owner_deposit_wei),
        (provider_account, terms.provider_deposit_wei),
    ):
        receipt = chain.transact(
            Transaction(
                sender=sender, to=address, method="freeze", value=amount
            )
        )
        if not receipt.success:
            raise RuntimeError(f"freeze failed: {receipt.error}")

    agent = ProviderAgent(
        chain=chain,
        account=provider_account,
        provider=provider,
        contract_address=address,
        file_name=package.name,
    )
    return AuditDeployment(
        contract_address=address,
        owner_account=owner_account,
        provider_account=provider_account,
        provider_agent=agent,
    )


def run_contract_to_completion(
    chain,
    deployment: AuditDeployment,
    max_blocks: int = 100_000,
) -> AuditContract:
    """Advance the chain until the contract closes, letting agents react."""
    return run_contracts_to_completion(chain, [deployment], max_blocks)[0]


def run_contracts_to_completion(
    chain,
    deployments: list[AuditDeployment],
    max_blocks: int = 100_000,
    executor=None,
) -> list[AuditContract]:
    """Drive many concurrent contracts until all close.

    ``chain`` is a single :class:`Blockchain` or a
    :class:`~repro.chain.fabric.ShardedChainFabric`; a fabric mines every
    lane per step (the lockstep clock) and routes ``contract_at`` to the
    owning lane, while each provider agent submits proofs directly to its
    deployment's home lane.

    All provider agents get to react after every block — necessary because
    contracts share the chain clock: running them one at a time would let
    the others' response windows lapse.

    With an :class:`~repro.engine.executor.AuditExecutor` (whose registered
    instances must cover the deployments' files), each block's open
    challenges are proven as one fan-out batch across the executor's
    workers instead of serially inside each agent — the engine's chain-
    facing integration.
    """
    contracts = []
    for deployment in deployments:
        contract = chain.contract_at(deployment.contract_address)
        assert isinstance(contract, AuditContract)
        contracts.append(contract)
    for _ in range(max_blocks):
        if all(c.state is State.CLOSED for c in contracts):
            return contracts
        chain.mine_block()
        if executor is None:
            for deployment in deployments:
                deployment.provider_agent.on_block()
            continue
        _answer_challenges_parallel(deployments, executor)
    raise RuntimeError("contracts did not close within the block budget")


def _answer_challenges_parallel(
    deployments: list[AuditDeployment], executor
) -> None:
    """Collect every open challenge and prove them through the engine.

    The executor proves from its own registered copy of each file, so a
    provider whose stored prover has been *replaced* (e.g. a
    :class:`~repro.core.prover.CheatingProver` in an attack simulation)
    would silently be proven honest; such agents fall back to in-agent
    proving so simulations keep their meaning.
    """
    from ..core.prover import Prover
    from ..engine.tasks import ProveTask

    waiting: list[ProviderAgent] = []
    tasks: list[ProveTask] = []
    for deployment in deployments:
        agent = deployment.provider_agent
        challenge = agent.pending_challenge()
        if challenge is None:
            continue
        if type(agent.provider.prover_for(agent.file_name)) is not Prover:
            agent.on_block()  # customized prover: keep its behaviour
            continue
        instance = executor.instances.get(agent.file_name)
        if instance is None:
            raise KeyError(
                f"file {agent.file_name} not registered with the executor"
            )
        waiting.append(agent)
        tasks.append(ProveTask.for_round(instance, challenge))
    if not tasks:
        return
    for agent, outcome in zip(waiting, executor.prove(tasks)):
        report = ProveReport(
            zp_seconds=outcome.zp_seconds,
            ecc_seconds=outcome.ecc_seconds,
            privacy_seconds=outcome.privacy_seconds,
        )
        agent.submit(outcome.proof(), report)
