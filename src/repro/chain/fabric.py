"""Sharded chain fabric: N independent lanes behind one chain-like facade.

The scaling axis the single :class:`~repro.chain.blockchain.Blockchain`
cannot offer: every contract, balance and receipt of one audit deployment
lives in exactly one *lane* (an ordinary ``Blockchain`` with its own
:class:`~repro.chain.state.StateStore`), and lanes produce blocks
concurrently on a lockstep clock.  Audit traffic that would serialize
through a single ``mine_block()`` loop spreads across lanes, so the
fabric's settlement latency for a burst of N verification transactions is
``max`` over lanes instead of ``sum`` — measured by
:meth:`ShardedChainFabric.settlement_chain_seconds` and reproduced by
``benchmarks/bench_sharded_fabric.py``.

Placement is deterministic: :func:`lane_index_for_key` hashes a stable
key (the audited file's name, an account label) so every participant —
aggregator, light client, fraud-proof challenger — independently derives
which lane holds which contract.  Cross-lane contract-to-contract calls
are deliberately unsupported (as in real sharded designs); value and
transactions route by recipient.

The facade mirrors the ``Blockchain`` surface that the agents
(:mod:`repro.chain.agents`), the DSN loop (:mod:`repro.dsn`) and the
explorer consume — ``mine_block`` (mines every lane), ``contract_at``,
``transact``, ``create_account``, ``deploy`` — so existing drivers run
unmodified on a fabric.
"""

from __future__ import annotations

import hashlib
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator

from ..obs.registry import MetricsRegistry, get_registry
from .blockchain import Block, Blockchain, Contract
from .gas import GasSchedule
from .state import MemoryStateStore, StateStore, WalStateStore
from .transaction import Event, Receipt, Transaction


def lane_index_for_key(key: int | str | bytes, num_lanes: int) -> int:
    """Deterministic contract→lane placement shared by every participant."""
    if num_lanes < 1:
        raise ValueError("num_lanes must be >= 1")
    if isinstance(key, int):
        material = b"int:" + key.to_bytes((key.bit_length() + 7) // 8 or 1, "big")
    elif isinstance(key, str):
        material = b"str:" + key.encode("utf-8")
    else:
        material = b"bytes:" + bytes(key)
    digest = hashlib.sha256(b"fabric-lane-v1:" + material).digest()
    return int.from_bytes(digest[:8], "big") % num_lanes


class ShardedChainFabric:
    """N block-producing lanes with deterministic placement and routing."""

    def __init__(
        self,
        num_lanes: int = 4,
        schedule: GasSchedule | None = None,
        block_time: float = 15.0,
        block_gas_limit: int = 10_000_000,
        base_block_bytes: int = 600,
        require_signatures: bool = False,
        persist_dir=None,
        mempool=None,
        concurrent: bool = False,
    ):
        if num_lanes < 1:
            raise ValueError("a fabric needs at least one lane")
        self.persist_dir = persist_dir
        self.mempool_config = mempool
        # Concurrent mode drives one worker thread per lane through
        # mine_block(); each lane serializes on its own Blockchain.lock,
        # so the per-lane op sequence — and therefore state_hash — is
        # bit-identical to lockstep mode (differential-tested).
        self.concurrent = bool(concurrent)
        self._lane_workers: ThreadPoolExecutor | None = None

        def _store(index: int) -> StateStore:
            if persist_dir is None:
                return MemoryStateStore()
            from pathlib import Path

            return WalStateStore(Path(persist_dir) / f"lane-{index:03d}")

        self.lanes: list[Blockchain] = [
            Blockchain(
                schedule=schedule,
                block_time=block_time,
                block_gas_limit=block_gas_limit,
                base_block_bytes=base_block_bytes,
                require_signatures=require_signatures,
                store=_store(index),
                chain_id=index,
                mempool=mempool,
            )
            for index in range(num_lanes)
        ]
        # Lazy routing caches: deploys may go straight at a lane (e.g.
        # through deploy_audit_contract's home-lane resolution), so the
        # fabric discovers placements by scanning and memoizing.  The
        # lock keeps scan-then-memoize atomic under concurrent ingress
        # (two RPC threads resolving the same fresh address).
        self._route_lock = threading.Lock()
        self._contract_lane: dict[str, int] = {}
        self._account_lane: dict[str, int] = {}
        # Registry mirror: cumulative counters update on every mined
        # round; live gauges (depth, base fees) attach via attach_gauges.
        self._registry = get_registry()
        self._m_blocks = self._registry.counter(
            "fabric_blocks_mined_total", "blocks mined across all lanes"
        )
        self._m_txs = self._registry.counter(
            "fabric_txs_settled_total", "transactions settled across all lanes"
        )
        self._gauge_hook = None

    # -- lanes ----------------------------------------------------------------

    @property
    def num_lanes(self) -> int:
        return len(self.lanes)

    def lane(self, index: int) -> Blockchain:
        return self.lanes[index]

    def __iter__(self) -> Iterator[Blockchain]:
        return iter(self.lanes)

    def lane_index_for(self, key: int | str | bytes) -> int:
        return lane_index_for_key(key, self.num_lanes)

    def home_lane(self, key: int | str | bytes) -> Blockchain:
        """The lane that owns everything placed under ``key``."""
        return self.lanes[self.lane_index_for(key)]

    def lane_index_of_contract(self, address: str) -> int:
        with self._route_lock:
            index = self._contract_lane.get(address)
            if index is None:
                for candidate, lane in enumerate(self.lanes):
                    if address in lane.store.contracts:
                        index = candidate
                        break
                if index is None:
                    raise KeyError(f"no lane holds contract {address[:12]}")
                self._contract_lane[address] = index
            return index

    def lane_index_of_account(self, address: str) -> int:
        with self._route_lock:
            index = self._account_lane.get(address)
            if index is None:
                for candidate, lane in enumerate(self.lanes):
                    if address in lane.store.balances:
                        index = candidate
                        break
                if index is None:
                    raise KeyError(f"no lane holds account {address[:12]}")
                self._account_lane[address] = index
            return index

    # -- chain facade ---------------------------------------------------------

    @property
    def time(self) -> float:
        return self.lanes[0].time

    @property
    def block_time(self) -> float:
        return self.lanes[0].block_time

    @property
    def events(self) -> list[Event]:
        merged: list[Event] = []
        for lane in self.lanes:
            merged.extend(lane.events)
        return merged

    def events_named(self, name: str) -> list[Event]:
        return [event for event in self.events if event.name == name]

    def create_account(
        self, balance_eth: float = 0.0, label: str = "", key=None
    ) -> str:
        """Create an account on the lane derived from ``key`` (or label)."""
        lane_index = self.lane_index_for(key if key is not None else label)
        address = self.lanes[lane_index].create_account(balance_eth, label)
        with self._route_lock:
            self._account_lane[address] = lane_index
        return address

    def deploy(
        self, contract: Contract, deployer: str, deposit_bytes: int = 0, key=None
    ) -> str:
        """Deploy next to the deployer (or onto ``key``'s home lane)."""
        if key is not None:
            lane_index = self.lane_index_for(key)
        else:
            try:
                lane_index = self.lane_index_of_account(deployer)
            except KeyError:
                lane_index = self.lane_index_for(deployer)
        address = self.lanes[lane_index].deploy(contract, deployer, deposit_bytes)
        with self._route_lock:
            self._contract_lane[address] = lane_index
        return address

    def contract_at(self, address: str) -> Contract:
        return self.lanes[self.lane_index_of_contract(address)].contract_at(address)

    def transact(self, tx: Transaction, payload_bytes: int = 0) -> Receipt:
        """Route a transaction to the lane owning its recipient."""
        return self.lanes[self.lane_index_for_tx(tx)].transact(tx, payload_bytes)

    def lane_index_for_tx(self, tx: Transaction) -> int:
        """The lane a transaction settles on (recipient-owned, like transact)."""
        if tx.to is not None:
            try:
                return self.lane_index_of_contract(tx.to)
            except KeyError:
                try:
                    return self.lane_index_of_account(tx.to)
                except KeyError:
                    return self.lane_index_for(tx.to)
        return self.lane_index_of_account(tx.sender)

    def submit(self, tx: Transaction, payload_bytes: int = 0, *, replace: bool = False):
        """Queue a transaction on its settlement lane's mempool."""
        return self.lanes[self.lane_index_for_tx(tx)].submit(
            tx, payload_bytes, replace=replace
        )

    def call(self, address: str, method: str, *args):
        return self.lanes[self.lane_index_of_contract(address)].call(
            address, method, *args
        )

    def balance_of(self, address: str) -> int:
        return sum(lane.balance_of(address) for lane in self.lanes)

    def _workers(self) -> ThreadPoolExecutor:
        if self._lane_workers is None:
            self._lane_workers = ThreadPoolExecutor(
                max_workers=self.num_lanes, thread_name_prefix="lane"
            )
        return self._lane_workers

    def mine_block(self) -> list[Block]:
        """Mine every lane once: the lockstep clock tick.

        Returns the sealed block of each lane (duck-type compatible with
        drivers that only need *a* mined-block signal).  In ``concurrent``
        mode one worker thread drives each lane; lanes share no state, so
        the result (and every lane's ``state_hash``) matches lockstep
        mining exactly — only wall-clock differs.
        """
        if self.concurrent and self.num_lanes > 1:
            blocks = list(
                self._workers().map(lambda lane: lane.mine_block(), self.lanes)
            )
        else:
            blocks = [lane.mine_block() for lane in self.lanes]
        self._m_blocks.inc(len(blocks))
        settled = sum(len(block.receipts) for block in blocks)
        if settled:
            self._m_txs.inc(settled)
        return blocks

    def advance_time(self, seconds: float) -> None:
        target = self.time + seconds
        while self.time < target:
            self.mine_block()

    # -- persistence / fingerprint -------------------------------------------

    def state_hash(self) -> str:
        """Order-sensitive combination of every lane's canonical hash."""
        hasher = hashlib.sha256(b"fabric-state-v1")
        hasher.update(len(self.lanes).to_bytes(4, "big"))
        for lane in self.lanes:
            hasher.update(bytes.fromhex(lane.state_hash()))
        return hasher.hexdigest()

    def snapshot(self) -> None:
        for lane in self.lanes:
            lane.snapshot()

    def close(self) -> None:
        if self._lane_workers is not None:
            self._lane_workers.shutdown(wait=True)
            self._lane_workers = None
        if self._gauge_hook is not None:
            self._registry.remove_collect_hook(self._gauge_hook)
            self._gauge_hook = None
        for lane in self.lanes:
            lane.close()

    # -- metrics --------------------------------------------------------------

    def chain_bytes(self) -> int:
        return sum(lane.chain_bytes() for lane in self.lanes)

    def total_gas_used(self) -> int:
        return sum(
            block.gas_used for lane in self.lanes for block in lane.blocks
        )

    def lane_gas_totals(self) -> list[int]:
        return [
            sum(block.gas_used for block in lane.blocks) for lane in self.lanes
        ]

    def pending_total(self) -> int:
        """Transactions queued across every lane's mempool."""
        return sum(len(lane.pool) for lane in self.lanes if lane.pool is not None)

    def mine_until_pools_drain(self, max_blocks: int = 10_000) -> int:
        """Lockstep-mine until no lane holds pending transactions."""
        mined = 0
        while self.pending_total() and mined < max_blocks:
            self.mine_block()
            mined += 1
        if self.pending_total():
            raise RuntimeError(f"pools not drained after {max_blocks} blocks")
        return mined

    def lane_base_fees(self) -> list[int]:
        """Per-lane base fee in wei/gas: the fabric's congestion price map.

        Lanes are independent fee markets, so a hot lane (one holding a
        popular contract) prices above its siblings; the spread is what
        :class:`~repro.sim.throughput.CongestionPricingModel` consumes to
        turn lane counts into steady-state inclusion economics.
        """
        return [lane.base_fee_wei for lane in self.lanes]

    def congestion_premium(self) -> float:
        """Hottest lane's base fee over the fleet minimum (1.0 = uniform)."""
        fees = self.lane_base_fees()
        floor = min(fees)
        return (max(fees) / floor) if floor else 1.0

    def settlement_chain_seconds(self) -> float:
        """Chain time to absorb the recorded traffic: max over lanes.

        Lanes mine concurrently, so the fabric's settlement latency is the
        slowest lane's :meth:`~repro.chain.blockchain.Blockchain.congestion_seconds`
        — the honest denominator for "audits settled per chain-second".
        """
        return max(lane.congestion_seconds() for lane in self.lanes)

    def attach_gauges(self, registry: MetricsRegistry | None = None) -> None:
        """Bind this fabric's live values to pull-style registry gauges.

        Registers a collect hook that refreshes ``mempool_depth``,
        ``fabric_lane_base_fee_wei{lane}`` and
        ``fabric_settlement_chain_seconds`` before every snapshot/export.
        Detached automatically by :meth:`close` so a long test session
        never samples a dead fabric.
        """
        if self._gauge_hook is not None:
            return
        registry = registry if registry is not None else self._registry
        if registry is not self._registry:
            self._registry = registry
            self._m_blocks = registry.counter(
                "fabric_blocks_mined_total", "blocks mined across all lanes"
            )
            self._m_txs = registry.counter(
                "fabric_txs_settled_total", "transactions settled across all lanes"
            )
        depth = registry.gauge("mempool_depth", "pending transactions across all lanes")
        base_fee = registry.gauge(
            "fabric_lane_base_fee_wei", "current base fee per lane", ("lane",)
        )
        chain_seconds = registry.gauge(
            "fabric_settlement_chain_seconds",
            "slowest lane's occupied block slots x slot time",
        )

        def refresh() -> None:
            depth.set(self.pending_total())
            for index, fee in enumerate(self.lane_base_fees()):
                base_fee.labels(str(index)).set(fee)
            chain_seconds.set(self.settlement_chain_seconds())

        self._gauge_hook = refresh
        registry.add_collect_hook(refresh)
