"""Chain explorer: the read side of the simulated blockchain.

The paper's transparency argument rests on anyone being able to inspect
audit trails; this module is that "anyone".  It answers the questions the
evaluation needs (per-contract gas, audit outcomes, trail bytes, balance
flows) and exports them as plain dicts for JSON serialisation.

Works over a single :class:`~repro.chain.blockchain.Blockchain` or a
:class:`~repro.chain.fabric.ShardedChainFabric`: on a fabric every query
spans all lanes, and the export gains a per-lane section (height,
transaction count, gas totals, congestion seconds) so gas accounting
stays per-lane honest under sharding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .blockchain import Blockchain
from .contracts.audit_contract import AuditContract
from .contracts.checkpoint_contract import CheckpointContract
from .contracts.reputation import ReputationRegistry

#: Event names the dispute/arbitration flow can emit (PROTOCOL.md sec. 7).
DISPUTE_EVENT_NAMES = (
    "disputed",
    "dispute_upheld",
    "dispute_overturned",
    "collateral_slashed",
    "stake_slashed",
)

#: Event names the checkpoint rollup can emit (PROTOCOL.md sec. 9).
CHECKPOINT_EVENT_NAMES = (
    "checkpointed",
    "checkpoint_challenged",
    "checkpoint_upheld",
    "checkpoint_slashed",
    "checkpoint_finalized",
)


@dataclass(frozen=True)
class ContractSummary:
    address: str
    state: str
    rounds: int
    passes: int
    fails: int
    total_gas: int
    trail_bytes: int
    disputes: int = 0
    reject_reasons: tuple[str, ...] = ()
    lane: int = 0


@dataclass(frozen=True)
class CheckpointSummary:
    """One posted epoch checkpoint as the explorer renders it."""

    address: str
    checkpoint_id: int
    epoch: int
    status: str
    leaves: int
    accepted: int
    rejected: int
    commitment_bytes: int
    gas_used: int
    fraud_reason: str | None = None
    lane: int = 0


@dataclass(frozen=True)
class FeeMarketSummary:
    """One lane's fee-market telemetry (zeroes when no mempool attached)."""

    lane: int
    base_fee_wei: int
    peak_base_fee_wei: int
    burned_wei: int
    pending: int
    submitted: int
    drained: int
    replaced: int
    evicted: int
    expired: int
    rejections: dict[str, int]
    priority_inversions: int


@dataclass(frozen=True)
class LaneSummary:
    """One lane's ledger totals (the per-lane gas-meter section)."""

    lane: int
    height: int
    transactions: int
    gas_used: int
    chain_bytes: int
    fee_sink_wei: int
    congestion_seconds: float
    audit_contracts: int
    checkpoints: int


class ChainExplorer:
    """Read-only queries over a simulated chain or a sharded fabric."""

    def __init__(self, chain):
        self.chain = chain
        if hasattr(chain, "lanes"):  # ShardedChainFabric
            self._lanes: list[Blockchain] = list(chain.lanes)
        else:
            self._lanes = [chain]

    @property
    def sharded(self) -> bool:
        return len(self._lanes) > 1

    def _lane_contracts(self):
        for lane_index, lane in enumerate(self._lanes):
            for address, contract in lane._contracts.items():
                yield lane_index, address, contract

    def _events(self):
        for lane in self._lanes:
            yield from lane.events

    # -- blocks / transactions ------------------------------------------------

    def height(self) -> int:
        """Block height (the tallest lane's, on a fabric)."""
        return max(len(lane.blocks) - 1 for lane in self._lanes)

    def block_summaries(self) -> list[dict]:
        out = []
        for lane_index, lane in enumerate(self._lanes):
            for block in lane.blocks:
                summary = {
                    "number": block.number,
                    "timestamp": block.timestamp,
                    "tx_count": len(block.receipts),
                    "gas_used": block.gas_used,
                    "byte_size": block.byte_size,
                    "base_fee_wei": getattr(block, "base_fee_wei", 0),
                }
                if self.sharded:
                    summary["lane"] = lane_index
                out.append(summary)
        return out

    def transaction_count(self) -> int:
        return sum(
            len(block.receipts)
            for lane in self._lanes
            for block in lane.blocks
        )

    def failed_transactions(self) -> list[dict]:
        out = []
        for lane_index, lane in enumerate(self._lanes):
            for block in lane.blocks:
                for receipt in block.receipts:
                    if not receipt.success:
                        entry = {
                            "block": block.number,
                            "tx": receipt.tx_hash[:16],
                            "error": receipt.error,
                            "gas_used": receipt.gas_used,
                        }
                        if self.sharded:
                            entry["lane"] = lane_index
                        out.append(entry)
        return out

    # -- events -------------------------------------------------------------------

    def event_log(self, name: str | None = None) -> list[dict]:
        return [
            {"contract": e.contract[:16], "name": e.name, "payload": e.payload}
            for e in self._events()
            if name is None or e.name == name
        ]

    def event_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self._events():
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    # -- audit contracts -------------------------------------------------------------

    def audit_contracts(self) -> list[ContractSummary]:
        out = []
        for lane_index, address, contract in self._lane_contracts():
            if isinstance(contract, AuditContract):
                out.append(
                    ContractSummary(
                        address=address,
                        state=contract.state.value,
                        rounds=len(contract.rounds),
                        passes=contract.passes,
                        fails=contract.fails,
                        total_gas=contract.total_audit_gas(),
                        trail_bytes=contract.total_trail_bytes(),
                        disputes=sum(
                            1 for r in contract.rounds if r.disputed_by is not None
                        ),
                        reject_reasons=tuple(
                            r.reject_reason
                            for r in contract.rounds
                            if r.reject_reason is not None
                        ),
                        lane=lane_index,
                    )
                )
        return out

    def audit_trail_bytes(self) -> int:
        return sum(summary.trail_bytes for summary in self.audit_contracts())

    def total_audit_gas(self) -> int:
        return sum(summary.total_gas for summary in self.audit_contracts())

    # -- checkpoints (epoch rollup) --------------------------------------------

    def checkpoint_contracts(self) -> list[CheckpointSummary]:
        """Every posted checkpoint across all deployed rollup contracts."""
        out = []
        for lane_index, address, contract in self._lane_contracts():
            if not isinstance(contract, CheckpointContract):
                continue
            for entry in contract.checkpoints:
                out.append(
                    CheckpointSummary(
                        address=address,
                        checkpoint_id=entry.checkpoint_id,
                        epoch=entry.commitment.epoch,
                        status=entry.status.value,
                        leaves=entry.commitment.num_leaves,
                        accepted=entry.commitment.accepted,
                        rejected=entry.commitment.rejected,
                        commitment_bytes=entry.commitment_bytes,
                        gas_used=entry.gas_used,
                        fraud_reason=entry.fraud_reason,
                        lane=lane_index,
                    )
                )
        return out

    def checkpoint_log(self) -> list[dict]:
        """Every checkpoint-lifecycle event, in per-lane emission order."""
        return [
            {"contract": e.contract[:16], "name": e.name, "payload": e.payload}
            for e in self._events()
            if e.name in CHECKPOINT_EVENT_NAMES
        ]

    def checkpoint_trail_bytes(self) -> int:
        """On-chain commitment bytes across all rollup contracts."""
        return sum(s.commitment_bytes for s in self.checkpoint_contracts())

    # -- lanes -----------------------------------------------------------------

    def lane_summaries(self) -> list[LaneSummary]:
        """Per-lane ledger totals: the fabric's honest gas accounting.

        Each lane's gas total is the sum of its sealed blocks' gas meters,
        so the fabric-wide total always decomposes exactly into lanes
        (asserted by the fabric tests).
        """
        out = []
        for lane_index, lane in enumerate(self._lanes):
            out.append(
                LaneSummary(
                    lane=lane_index,
                    height=len(lane.blocks) - 1,
                    transactions=sum(
                        len(block.receipts) for block in lane.blocks
                    ),
                    gas_used=sum(block.gas_used for block in lane.blocks),
                    chain_bytes=lane.chain_bytes(),
                    fee_sink_wei=lane.fee_sink,
                    congestion_seconds=lane.congestion_seconds(),
                    audit_contracts=sum(
                        1
                        for contract in lane._contracts.values()
                        if isinstance(contract, AuditContract)
                    ),
                    checkpoints=sum(
                        len(contract.checkpoints)
                        for contract in lane._contracts.values()
                        if isinstance(contract, CheckpointContract)
                    ),
                )
            )
        return out

    # -- fee market / mempool --------------------------------------------------

    @property
    def has_fee_market(self) -> bool:
        return any(lane.pool is not None for lane in self._lanes)

    def base_fee_series(self, lane: int = 0) -> list[int]:
        """Per-sealed-block base fee (wei/gas) of one lane, oldest first."""
        blocks = self._lanes[lane].blocks
        return [getattr(block, "base_fee_wei", 0) for block in blocks[:-1]]

    def tip_series(self, lane: int = 0) -> list[float]:
        """Mean effective tip (wei/gas) of drained txs per sealed block.

        Blocks that included no pool traffic report 0.  Receipts store a
        block number of ``len(blocks)`` at execution time (one past the
        pending block's index), hence the ``+ 1`` when joining the pool's
        per-block tip log back onto sealed blocks.
        """
        chain = self._lanes[lane]
        if chain.pool is None:
            return [0.0 for _ in chain.blocks[:-1]]
        out = []
        for block in chain.blocks[:-1]:
            tips = chain.pool.block_tips.get(block.number + 1, [])
            out.append(sum(tips) / len(tips) if tips else 0.0)
        return out

    def eviction_series(self) -> list[dict]:
        """Every pool eviction/expiry burst across lanes, time-ordered."""
        out = []
        for lane_index, lane in enumerate(self._lanes):
            if lane.pool is None:
                continue
            for when, reason, count in lane.pool.eviction_series:
                out.append(
                    {"time": when, "lane": lane_index, "reason": reason, "count": count}
                )
        return sorted(out, key=lambda row: (row["time"], row["lane"]))

    def fee_market_summaries(self) -> list[FeeMarketSummary]:
        out = []
        for lane_index, lane in enumerate(self._lanes):
            pool = lane.pool
            if pool is None:
                continue
            series = self.base_fee_series(lane_index)
            out.append(
                FeeMarketSummary(
                    lane=lane_index,
                    base_fee_wei=lane.base_fee_wei,
                    peak_base_fee_wei=max(series, default=lane.base_fee_wei),
                    burned_wei=lane.burned,
                    pending=len(pool),
                    submitted=pool.stats["submitted"],
                    drained=pool.stats["drained"],
                    replaced=pool.stats["replaced"],
                    evicted=pool.stats["evicted"],
                    expired=pool.stats["expired"],
                    rejections=dict(pool.rejections),
                    priority_inversions=pool.priority_inversions,
                )
            )
        return out

    # -- disputes / reputation -------------------------------------------------

    def dispute_log(self) -> list[dict]:
        """Every dispute-flow event, in per-lane emission order."""
        return [
            {"contract": e.contract[:16], "name": e.name, "payload": e.payload}
            for e in self._events()
            if e.name in DISPUTE_EVENT_NAMES
        ]

    def reputation_snapshot(self) -> list[dict]:
        """Provider records from every deployed reputation registry."""
        out = []
        for _, address, contract in self._lane_contracts():
            if not isinstance(contract, ReputationRegistry):
                continue
            for provider, record in contract.providers.items():
                out.append(
                    {
                        "registry": address[:16],
                        "provider": provider[:16],
                        "score": round(record.score, 4),
                        "stake_wei": record.stake_wei,
                        "passes": record.passes,
                        "fails": record.fails,
                        "banned": record.banned,
                    }
                )
        return out

    # -- export ---------------------------------------------------------------------------

    def export_json(self) -> str:
        payload = {
            "height": self.height(),
            "transactions": self.transaction_count(),
            "chain_bytes": sum(lane.chain_bytes() for lane in self._lanes),
            "fee_sink_wei": sum(lane.fee_sink for lane in self._lanes),
            "events": self.event_counts(),
            "audit_contracts": [
                {
                    "address": s.address,
                    "state": s.state,
                    "rounds": s.rounds,
                    "passes": s.passes,
                    "fails": s.fails,
                    "total_gas": s.total_gas,
                    "trail_bytes": s.trail_bytes,
                    "disputes": s.disputes,
                    "reject_reasons": list(s.reject_reasons),
                    "lane": s.lane,
                }
                for s in self.audit_contracts()
            ],
            "disputes": self.dispute_log(),
            "reputation": self.reputation_snapshot(),
            "checkpoints": [
                {
                    "address": s.address,
                    "checkpoint_id": s.checkpoint_id,
                    "epoch": s.epoch,
                    "status": s.status,
                    "leaves": s.leaves,
                    "accepted": s.accepted,
                    "rejected": s.rejected,
                    "commitment_bytes": s.commitment_bytes,
                    "gas_used": s.gas_used,
                    "fraud_reason": s.fraud_reason,
                    "lane": s.lane,
                }
                for s in self.checkpoint_contracts()
            ],
        }
        if self.has_fee_market:
            payload["fee_market"] = {
                "lanes": [
                    {
                        "lane": s.lane,
                        "base_fee_wei": s.base_fee_wei,
                        "peak_base_fee_wei": s.peak_base_fee_wei,
                        "burned_wei": s.burned_wei,
                        "pending": s.pending,
                        "submitted": s.submitted,
                        "drained": s.drained,
                        "replaced": s.replaced,
                        "evicted": s.evicted,
                        "expired": s.expired,
                        "rejections": s.rejections,
                        "priority_inversions": s.priority_inversions,
                    }
                    for s in self.fee_market_summaries()
                ],
                "base_fee_series": self.base_fee_series(0),
                "tip_series": self.tip_series(0),
                "evictions": self.eviction_series(),
            }
        if self.sharded:
            payload["lanes"] = [
                {
                    "lane": s.lane,
                    "height": s.height,
                    "transactions": s.transactions,
                    "gas_used": s.gas_used,
                    "chain_bytes": s.chain_bytes,
                    "fee_sink_wei": s.fee_sink_wei,
                    "congestion_seconds": s.congestion_seconds,
                    "audit_contracts": s.audit_contracts,
                    "checkpoints": s.checkpoints,
                }
                for s in self.lane_summaries()
            ]
        return json.dumps(payload, indent=2, sort_keys=True)
