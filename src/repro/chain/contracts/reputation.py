"""On-chain reputation registry (paper Section VI-A countermeasures).

The paper's remarks on fairness in practice: a provider can grief the data
owner by rejecting contracts after the owner has paid on-chain storage for
the public keys; Sybil identities can whitewash a bad history.  "We stress
this kind of denial-of-service attack would be good to none but worse to
himself under a robust reputation-based system.  Using similar
countermeasures, other attacks such as the Sybil attack, can also be
alleviated."

This contract is that system:

* providers register with a **stake** (Sybil resistance: fresh identities
  start at neutral reputation *and* must lock capital),
* audit contracts report per-round outcomes (pass/fail) and initialisation
  behaviour (acknowledge/reject) — rejections after negotiation cost
  reputation, making the Section VI-A DoS self-defeating,
* scores decay toward neutral over time so neither ancient glory nor
  ancient sins dominate,
* data owners query scores before selecting providers; deregistration
  returns the stake only to providers in good standing (griefers forfeit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..blockchain import CallContext, Contract

NEUTRAL_SCORE = 0.5


@dataclass
class ProviderRecord:
    stake_wei: int
    registered_at: float
    passes: int = 0
    fails: int = 0
    rejections: int = 0
    score: float = NEUTRAL_SCORE
    last_update: float = 0.0
    banned: bool = False
    staker: str = ""  # account that locked the stake (refund target guard)


class ReputationRegistry(Contract):
    """Stake-backed reputation for storage providers.

    Score update is an exponential moving average pulled toward 1.0 by
    passes and toward 0.0 by fails/rejections, with time decay toward
    neutral between observations.
    """

    def __init__(
        self,
        min_stake_wei: int = 10**18,
        learning_rate: float = 0.1,
        rejection_penalty: float = 0.15,
        decay_half_life: float = 30 * 24 * 3600.0,
        ban_threshold: float = 0.15,
    ):
        super().__init__()
        self.min_stake_wei = min_stake_wei
        self.learning_rate = learning_rate
        self.rejection_penalty = rejection_penalty
        self.decay_half_life = decay_half_life
        self.ban_threshold = ban_threshold
        self.providers: dict[str, ProviderRecord] = {}
        self.reporters: set[str] = set()  # audit contracts allowed to report

    # -- registration ------------------------------------------------------

    def register(self, ctx: CallContext, provider: str | None = None):
        """Join the marketplace by locking at least the minimum stake.

        ``provider`` optionally names the record (a storage-cluster node
        name); it defaults to the staking account's address.  Either way
        the stake is locked by the sender.
        """
        key = provider or ctx.sender
        self.require(key not in self.providers, "already registered")
        self.require(
            ctx.value >= self.min_stake_wei,
            f"stake below minimum ({self.min_stake_wei} wei)",
        )
        self.providers[key] = ProviderRecord(
            stake_wei=ctx.value,
            registered_at=ctx.timestamp,
            last_update=ctx.timestamp,
            staker=ctx.sender,
        )
        self.emit("registered", provider=key, stake=ctx.value)

    def deregister(self, ctx: CallContext, provider: str | None = None):
        """Leave and reclaim the stake — only in good standing.

        With a named record the refund still goes to the calling account
        (the one that locked the stake at :meth:`register` time).
        """
        key = provider or ctx.sender
        record = self.providers.get(key)
        self.require(record is not None, "not registered")
        assert record is not None
        # Named records can only be released by the exact account that
        # locked the stake (the refund goes to the caller).  The unnamed
        # path is safe by construction: its key *is* ctx.sender.
        self.require(
            provider is None or record.staker == ctx.sender,
            "only the staking account may deregister this record",
        )
        self._decay(record, ctx.timestamp)
        self.require(not record.banned, "banned providers forfeit their stake")
        self.require(
            record.score >= NEUTRAL_SCORE,
            "below-neutral reputation forfeits the stake",
        )
        stake = record.stake_wei
        del self.providers[key]
        assert self.chain is not None
        self.chain.transfer(self.address, ctx.sender, stake)
        self.emit("deregistered", provider=key, refunded=stake)

    # -- reporting ---------------------------------------------------------

    def authorize_reporter(self, ctx: CallContext, reporter: str):
        """Whitelist an audit contract to report outcomes.

        In production this would be the contract factory; here any caller
        may register reporters, and tests cover the access control on the
        reporting path itself.
        """
        self.reporters.add(reporter)
        self.emit("reporter_authorized", reporter=reporter)

    def report_audit(self, ctx: CallContext, provider: str, passed: bool):
        self.require(ctx.sender in self.reporters, "unauthorised reporter")
        record = self.providers.get(provider)
        self.require(record is not None, "unknown provider")
        assert record is not None
        self._decay(record, ctx.timestamp)
        if passed:
            record.passes += 1
            record.score += self.learning_rate * (1.0 - record.score)
        else:
            record.fails += 1
            record.score -= self.learning_rate * record.score
        self._maybe_ban(record, provider)
        self.emit("audit_reported", provider=provider, passed=passed,
                  score=round(record.score, 4))

    def slash_stake(
        self,
        ctx: CallContext,
        provider: str,
        fraction: float = 0.2,
        beneficiary: str | None = None,
    ):
        """Dispute-confirmed misbehaviour: burn reputation *and* capital.

        Called by an authorized audit contract when arbitration upholds a
        failed round (see ``AuditContract.raise_dispute``).  A ``fraction``
        of the provider's locked stake is transferred to ``beneficiary``
        (the wronged data owner; defaults to the reporter), the score takes
        a rejection-sized hit, and the ban threshold applies as usual.
        """
        self.require(ctx.sender in self.reporters, "unauthorised reporter")
        self.require(0.0 < fraction <= 1.0, "fraction out of range")
        record = self.providers.get(provider)
        self.require(record is not None, "unknown provider")
        assert record is not None
        self._decay(record, ctx.timestamp)
        amount = int(record.stake_wei * fraction)
        record.stake_wei -= amount
        record.score = max(0.0, record.score - self.rejection_penalty)
        assert self.chain is not None
        self.chain.transfer(self.address, beneficiary or ctx.sender, amount)
        self._maybe_ban(record, provider)
        self.emit(
            "stake_slashed",
            provider=provider,
            slashed_wei=amount,
            remaining_stake_wei=record.stake_wei,
            score=round(record.score, 4),
        )

    def report_rejection(self, ctx: CallContext, provider: str):
        """The Section VI-A DoS: rejecting after the owner paid for setup."""
        self.require(ctx.sender in self.reporters, "unauthorised reporter")
        record = self.providers.get(provider)
        self.require(record is not None, "unknown provider")
        assert record is not None
        self._decay(record, ctx.timestamp)
        record.rejections += 1
        record.score = max(0.0, record.score - self.rejection_penalty)
        self._maybe_ban(record, provider)
        self.emit("rejection_reported", provider=provider,
                  score=round(record.score, 4))

    # -- queries -----------------------------------------------------------

    def score_of(self, ctx: CallContext, provider: str) -> float:
        """Pure view: the decayed score *without* mutating the record.

        Exponential decay composes multiplicatively, so deferring the
        ``last_update`` write to the next real mutation (report / slash /
        rejection) yields the same trajectory — and keeps read-only calls
        from mutating state behind the WAL's back.
        """
        record = self.providers.get(provider)
        if record is None:
            return 0.0
        return 0.0 if record.banned else self._decayed_score(record, ctx.timestamp)

    def eligible(self, ctx: CallContext, provider: str, minimum: float = 0.3) -> bool:
        return self.score_of(ctx, provider) >= minimum

    def ranked(self, ctx: CallContext) -> list[tuple[str, float]]:
        """Providers best-first — the owner's selection input."""
        scores = [
            (name, self.score_of(ctx, name)) for name in self.providers
        ]
        return sorted(scores, key=lambda pair: -pair[1])

    # -- internals -----------------------------------------------------------

    def _decayed_score(self, record: ProviderRecord, now: float) -> float:
        elapsed = max(0.0, now - record.last_update)
        if elapsed > 0 and self.decay_half_life > 0:
            weight = math.pow(0.5, elapsed / self.decay_half_life)
            return NEUTRAL_SCORE + (record.score - NEUTRAL_SCORE) * weight
        return record.score

    def _decay(self, record: ProviderRecord, now: float) -> None:
        record.score = self._decayed_score(record, now)
        record.last_update = now

    def _maybe_ban(self, record: ProviderRecord, provider: str) -> None:
        if record.score < self.ban_threshold and not record.banned:
            record.banned = True
            self.emit("banned", provider=provider)
