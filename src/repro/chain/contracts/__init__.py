"""On-chain contracts: the Fig. 2 audit state machine."""

from .audit_contract import AuditContract, AuditRound, ContractTerms, State
from .reputation import ProviderRecord, ReputationRegistry

__all__ = [
    "AuditContract",
    "AuditRound",
    "ContractTerms",
    "ProviderRecord",
    "ReputationRegistry",
    "State",
]
