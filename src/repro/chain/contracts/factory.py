"""Audit-contract factory: one deployment point for the marketplace.

Ties the two contracts of this reproduction together the way a production
deployment would: the factory deploys :class:`AuditContract` instances and
authorises each one as a reporter on the shared
:class:`~repro.chain.contracts.reputation.ReputationRegistry`, so audit
outcomes flow into provider reputation without manual wiring (the paper's
Section VI-A countermeasures as infrastructure, not convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...core.params import ProtocolParams
from ...randomness.beacon import RandomnessBeacon
from ..blockchain import CallContext, Contract
from .audit_contract import AuditContract, ContractTerms
from .reputation import ReputationRegistry


@dataclass(frozen=True)
class FactoryRecord:
    contract_address: str
    owner: str
    provider: str


class AuditContractFactory(Contract):
    """Deploys audit contracts and bridges their outcomes to reputation."""

    def __init__(
        self,
        beacon: RandomnessBeacon,
        params: ProtocolParams,
        registry_address: str | None = None,
    ):
        super().__init__()
        self.beacon = beacon
        self.params = params
        self.registry_address = registry_address
        self.deployed: list[FactoryRecord] = []

    def create_contract(
        self,
        ctx: CallContext,
        provider: str,
        terms: ContractTerms,
    ) -> str:
        """Deploy a new audit contract between msg.sender (D) and provider."""
        assert self.chain is not None
        contract = AuditContract(
            owner=ctx.sender,
            provider=provider,
            terms=terms,
            beacon=self.beacon,
            params=self.params,
        )
        address = self.chain.deploy(contract, deployer=ctx.sender)
        if self.registry_address is not None:
            registry = self.chain.contract_at(self.registry_address)
            assert isinstance(registry, ReputationRegistry)
            registry.reporters.add(address)
        self.deployed.append(
            FactoryRecord(
                contract_address=address, owner=ctx.sender, provider=provider
            )
        )
        self.emit("contract_created", address=address, provider=provider)
        return address

    def contracts_for_provider(self, ctx: CallContext, provider: str) -> list[str]:
        return [
            record.contract_address
            for record in self.deployed
            if record.provider == provider
        ]

    def contracts_for_owner(self, ctx: CallContext, owner: str) -> list[str]:
        return [
            record.contract_address
            for record in self.deployed
            if record.owner == owner
        ]


def report_round_outcomes(
    chain, factory: AuditContractFactory, registry_address: str
) -> int:
    """Push any unreported round outcomes from factory contracts to the
    registry.  Returns the number of reports sent.

    (A convenience driver for simulations; on a real chain the audit
    contract would call the registry inline from ``trigger_verify``.)
    """
    from ..blockchain import Transaction

    sent = 0
    for record in factory.deployed:
        contract = chain.contract_at(record.contract_address)
        assert isinstance(contract, AuditContract)
        reported = getattr(contract, "_reported_to_registry", 0)
        for round_record in contract.rounds[reported:]:
            if round_record.passed is None:
                break
            chain.transact(
                Transaction(
                    sender=record.contract_address,
                    to=registry_address,
                    method="report_audit",
                    args=(record.provider, round_record.passed),
                    gas_price_gwei=0.0,
                )
            )
            reported += 1
            sent += 1
        contract._reported_to_registry = reported  # type: ignore[attr-defined]
    return sent
