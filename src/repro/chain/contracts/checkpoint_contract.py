"""Checkpoint contract: one commitment per epoch, guarded by fraud proofs.

The rollup's settlement layer.  Instead of N per-round (challenge, proof,
verdict) transactions, an aggregator posts a single 85-byte
:class:`~repro.rollup.checkpoint.Checkpoint` commitment per epoch — root of
the Merkle verdict tree, accepted/rejected counts, aggregated-proof digest
— bonded for a fraud-proof window.

Soundness comes from the optimistic-rollup argument rather than from
on-chain re-execution: during the window *anyone* holding the published
leaf set can open one leaf on chain (:meth:`CheckpointContract.challenge_leaf`)
and the contract re-derives that round's ground truth entirely from
on-chain state — the registered public key, the beacon's epoch output (so
a substituted challenge is caught, not just a flipped verdict) and the
leaf's proof bytes.  A lying checkpoint loses its poster's bond to the
challenger and is marked ``slashed``; a frivolous challenge forfeits the
challenger's bond to the poster, mirroring the per-round dispute economics
of :mod:`~repro.chain.contracts.audit_contract`.  When a
:class:`~repro.chain.contracts.reputation.ReputationRegistry` is wired in,
a slashed checkpoint also slashes the poster's registry stake.

Gas follows the same Fig. 5 accounting as the per-round path: posting pays
calldata + storage for 85 bytes (vs ``N * (48 + 288)`` trail bytes), and
only the *failure path* — a fraud challenge — ever pays for a pairing
check on chain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ...core.challenge import epoch_challenge
from ...core.keys import PublicKey
from ...core.params import ProtocolParams
from ...core.proof import PrivateProof
from ...core.verifier import Verifier
from ...crypto.merkle import MerkleProof, MerkleTree, verify_merkle_proof
from ...randomness.beacon import RandomnessBeacon
from ...rollup.checkpoint import Checkpoint
from ...rollup.records import RoundRecord
from ...rollup.verdict import LeafVerdict, leaf_ground_truth
from ..blockchain import CallContext, Contract
from ..gas import PAPER_VERIFY_MS, AuditPrecompileModel, GasSchedule
from ..transaction import RevertError


class CheckpointStatus(enum.Enum):
    OPEN = "open"            # inside the fraud-proof window
    FINAL = "final"          # window closed unchallenged, bond released
    SLASHED = "slashed"      # a fraud proof landed; commitment is void


@dataclass
class CheckpointEntry:
    """One posted commitment and its dispute lifecycle."""

    checkpoint_id: int
    commitment: Checkpoint
    poster: str
    bond_wei: int
    posted_at: float
    status: CheckpointStatus = CheckpointStatus.OPEN
    challenged_by: str | None = None
    fraud_reason: str | None = None
    gas_used: int = 0
    da_commitment: object | None = None  # DaCommitment once post_da_root lands

    @property
    def commitment_bytes(self) -> int:
        return self.commitment.byte_size()


@dataclass(frozen=True)
class RegisteredInstance:
    """On-chain registration of one auditable (owner, file) instance."""

    name: int
    public_key_bytes: bytes
    num_chunks: int


class CheckpointContract(Contract):
    """Epoch-rollup settlement: commitments in, fraud proofs only on lies."""

    def __init__(
        self,
        beacon: RandomnessBeacon,
        params: ProtocolParams,
        posting_bond_wei: int = 5 * 10**16,
        challenge_bond_wei: int = 10**15,
        fraud_window: float = 24 * 3600.0,
        native_verify_ms: float = PAPER_VERIFY_MS,
        gas_schedule: GasSchedule | None = None,
        registry_address: str | None = None,
    ):
        super().__init__()
        self.beacon = beacon
        self.params = params
        self.posting_bond_wei = posting_bond_wei
        self.challenge_bond_wei = challenge_bond_wei
        self.fraud_window = fraud_window
        self.native_verify_ms = native_verify_ms
        self.gas_model = AuditPrecompileModel(gas_schedule or GasSchedule.istanbul())
        self.registry_address = registry_address
        self.instances: dict[int, RegisteredInstance] = {}
        self.checkpoints: list[CheckpointEntry] = []
        self._by_epoch: dict[int, int] = {}  # epoch -> checkpoint_id

    # ------------------------------------------------------------------ #
    # Instance registry (the once-per-file on-chain metadata)             #
    # ------------------------------------------------------------------ #

    def register_instance(
        self, ctx: CallContext, name: int, public_key_bytes: bytes, num_chunks: int
    ):
        """Record a file's audit metadata (pk bytes + chunk count) on chain.

        The same one-time Fig. 4 storage cost as the per-round path's
        ``negotiate``; the fraud proof later reads the key back from here,
        so leaf re-verification consumes no off-chain trust.
        """
        self.require(name not in self.instances, "instance already registered")
        self.require(num_chunks > 0, "empty file")
        # Decode up front so garbage bytes cannot poison the registry.
        try:
            PublicKey.from_bytes(bytes(public_key_bytes))
        except ValueError as exc:
            raise RevertError(f"bad public key bytes: {exc}") from None
        self.instances[name] = RegisteredInstance(
            name=name,
            public_key_bytes=bytes(public_key_bytes),
            num_chunks=num_chunks,
        )
        ctx.gas.consume(
            self.gas_model.schedule.storage_gas(len(public_key_bytes) + 36)
        )
        self.emit("instance_registered", name=name, num_chunks=num_chunks)

    def export_instance_registry(self) -> dict[int, tuple[bytes, int]]:
        """name -> (pk bytes, num_chunks): what a light client reads off chain."""
        return {
            name: (entry.public_key_bytes, entry.num_chunks)
            for name, entry in self.instances.items()
        }

    # ------------------------------------------------------------------ #
    # Posting                                                             #
    # ------------------------------------------------------------------ #

    def post_checkpoint(self, ctx: CallContext, commitment_bytes: bytes) -> int:
        """Commit one epoch's verdict tree; returns the checkpoint id."""
        self.require(
            ctx.value >= self.posting_bond_wei,
            f"posting bond is {self.posting_bond_wei} wei",
        )
        try:
            commitment = Checkpoint.from_bytes(bytes(commitment_bytes))
        except ValueError as exc:
            raise RevertError(f"bad commitment: {exc}") from None
        self.require(
            commitment.epoch not in self._by_epoch,
            f"epoch {commitment.epoch} already checkpointed",
        )
        self.require(commitment.num_leaves > 0, "empty checkpoint")
        # Storage only: the calldata side of the commitment is already
        # metered by the transaction layer from ``payload_bytes``.
        gas = self.gas_model.schedule.storage_gas(len(commitment_bytes))
        ctx.gas.consume(gas)
        entry = CheckpointEntry(
            checkpoint_id=len(self.checkpoints),
            commitment=commitment,
            poster=ctx.sender,
            bond_wei=ctx.value,
            posted_at=ctx.timestamp,
            gas_used=gas,
        )
        self.checkpoints.append(entry)
        self._by_epoch[commitment.epoch] = entry.checkpoint_id
        self.emit(
            "checkpointed",
            checkpoint=entry.checkpoint_id,
            epoch=commitment.epoch,
            leaves=commitment.num_leaves,
            accepted=commitment.accepted,
            rejected=commitment.rejected,
            bytes=commitment.byte_size(),
        )
        return entry.checkpoint_id

    def post_da_root(
        self, ctx: CallContext, checkpoint_id: int, commitment_bytes: bytes
    ):
        """Bind a DA commitment (erasure-coded chunk NMT) to a checkpoint.

        The 119-byte :class:`~repro.da.commit.DaCommitment` names the
        (n, k) extension, the per-chunk byte length, and the namespaced
        Merkle root of the extended chunk set — everything a sampling
        light client needs to verify chunks against on-chain state alone.
        Only the checkpoint's poster may bind it (it is *their*
        availability obligation), and the embedded checkpoint root and
        epoch must match the bonded commitment, so a DA root can never
        point at different data than the verdict tree it claims to cover.
        """
        from ...da.commit import DaCommitment

        self.require(
            0 <= checkpoint_id < len(self.checkpoints), "unknown checkpoint"
        )
        entry = self.checkpoints[checkpoint_id]
        self.require(
            ctx.sender == entry.poster,
            "only the checkpoint poster may bind its DA commitment",
        )
        self.require(
            entry.da_commitment is None,
            "DA commitment already posted for this checkpoint",
        )
        try:
            commitment = DaCommitment.from_bytes(bytes(commitment_bytes))
        except ValueError as exc:
            raise RevertError(f"bad DA commitment: {exc}") from None
        self.require(
            commitment.checkpoint_root == entry.commitment.root,
            "DA commitment does not bind the committed checkpoint root",
        )
        self.require(
            commitment.epoch == entry.commitment.epoch,
            "DA commitment epoch does not match the checkpoint",
        )
        gas = self.gas_model.schedule.storage_gas(len(commitment_bytes))
        ctx.gas.consume(gas)
        entry.gas_used += gas
        entry.da_commitment = commitment
        self.emit(
            "da_committed",
            checkpoint=checkpoint_id,
            epoch=commitment.epoch,
            lane=commitment.lane_id,
            n=commitment.n,
            k=commitment.k,
            chunk_bytes=commitment.chunk_bytes,
        )

    # ------------------------------------------------------------------ #
    # Fraud proofs                                                        #
    # ------------------------------------------------------------------ #

    def _verifier_for(self, name: int) -> Verifier | None:
        instance = self.instances.get(name)
        if instance is None:
            return None
        return Verifier(
            PublicKey.from_bytes(instance.public_key_bytes),
            name,
            instance.num_chunks,
        )

    def _require_challengeable(
        self, ctx: CallContext, checkpoint_id: int
    ) -> CheckpointEntry:
        """Shared guards for every fraud-proof entry point."""
        self.require(
            0 <= checkpoint_id < len(self.checkpoints), "unknown checkpoint"
        )
        entry = self.checkpoints[checkpoint_id]
        self.require(
            entry.status is CheckpointStatus.OPEN,
            f"checkpoint is {entry.status.value}, not challengeable",
        )
        self.require(
            ctx.value >= self.challenge_bond_wei,
            f"challenge bond is {self.challenge_bond_wei} wei",
        )
        self.require(
            ctx.timestamp <= entry.posted_at + self.fraud_window,
            "fraud-proof window closed",
        )
        return entry

    def _settle_challenge(
        self,
        ctx: CallContext,
        entry: CheckpointEntry,
        fraud_reason: str | None,
        upheld_payload: dict,
    ) -> None:
        """Common outcome path: slash on fraud, forfeit a frivolous bond."""
        assert self.chain is not None
        if fraud_reason is not None:
            entry.status = CheckpointStatus.SLASHED
            entry.challenged_by = ctx.sender
            entry.fraud_reason = fraud_reason
            # Free the epoch slot: a slashed commitment is void, so a
            # correct aggregator can still settle the epoch afterwards —
            # otherwise one bonded garbage post would censor the epoch
            # forever at the cost of a slash.
            if self._by_epoch.get(entry.commitment.epoch) == entry.checkpoint_id:
                del self._by_epoch[entry.commitment.epoch]
            # Challenger bond back + the poster's bond as the bounty.
            payout = ctx.value + entry.bond_wei
            entry.bond_wei = 0
            self.chain.transfer(self.address, ctx.sender, payout)
            self.emit(
                "checkpoint_slashed",
                checkpoint=entry.checkpoint_id,
                epoch=entry.commitment.epoch,
                reason=fraud_reason,
                slashed_wei=payout - ctx.value,
            )
            self._slash_registry_stake(ctx, entry.poster)
        else:
            # Frivolous challenge: bond to the poster, checkpoint stays open
            # (others may still find a genuinely bad leaf in the window).
            self.chain.transfer(self.address, entry.poster, ctx.value)
            self.emit(
                "checkpoint_upheld",
                checkpoint=entry.checkpoint_id,
                **upheld_payload,
            )

    def challenge_leaf(
        self,
        ctx: CallContext,
        checkpoint_id: int,
        leaf_bytes: bytes,
        leaf_index: int,
        siblings: tuple[bytes, ...],
        directions: tuple[bool, ...],
        counterproof: bytes = b"",
    ):
        """Open one leaf of a bonded checkpoint and re-run its verdict.

        The challenger supplies the leaf's canonical record bytes plus its
        Merkle authentication path.  Inclusion is checked against the
        committed root first — a proof that does not open the committed
        tree reverts (the challenger proved nothing).  A leaf that *is*
        committed but lies gets the checkpoint slashed: the poster's bond
        moves to the challenger and the commitment is void.

        ``counterproof`` rebuts aggregator *slander*: a committed
        rejection — ``no-proof``, or garbage proof bytes substituted for
        the provider's real answer — is internally consistent (it
        re-verifies to reject), so the wronged provider instead submits
        the real proof it generated for the epoch's beacon challenge.  A
        verifying counterproof voids the committed rejection and slashes
        the checkpoint (``rejection-rebutted``).  This is a *convention*,
        not an attribution: the chain cannot time off-chain delivery, so
        a provider who stonewalled the aggregator and later rebuts wins
        too — the benefit of the doubt goes to whoever can exhibit a
        valid proof (only a party storing the file can).  Production
        aggregators close that griefing vector off chain by demanding
        signed submission receipts before recording a rejection.
        """
        entry = self._require_challengeable(ctx, checkpoint_id)
        proof = MerkleProof(
            leaf_index=leaf_index,
            leaf_data=bytes(leaf_bytes),
            siblings=tuple(bytes(s) for s in siblings),
            directions=tuple(bool(d) for d in directions),
        )
        self.require(
            verify_merkle_proof(entry.commitment.root, proof),
            "inclusion proof does not open the committed root",
        )
        # Leaf re-verification: the only place the rollup ever pays
        # pairing gas on chain, and only when someone claims fraud.
        gas = self.gas_model.verification_gas(
            len(bytes(leaf_bytes)), self.native_verify_ms
        )
        ctx.gas.consume(gas)
        entry.gas_used += gas
        try:
            record = RoundRecord.from_bytes(bytes(leaf_bytes))
        except ValueError as exc:
            verdict = LeafVerdict(
                actual=None, fraud_code="malformed-record", detail=str(exc)
            )
        else:
            verdict = leaf_ground_truth(
                record,
                entry.commitment.epoch,
                self.params,
                self.beacon,
                self._verifier_for,
            )
        fraud_reason = verdict.describe()
        if fraud_reason is None and counterproof and not record.verdict:
            fraud_reason = self._rebut_rejection(ctx, entry, record, counterproof)
        self.emit(
            "checkpoint_challenged",
            checkpoint=checkpoint_id,
            leaf=leaf_index,
            by=ctx.sender[:16],
        )
        self._settle_challenge(
            ctx, entry, fraud_reason, upheld_payload={"leaf": leaf_index}
        )

    def _rebut_rejection(
        self, ctx: CallContext, entry: CheckpointEntry, record, counterproof: bytes
    ) -> str | None:
        """Fraud reason when a valid counterproof rebuts a rejected leaf."""
        try:
            proof = PrivateProof.from_bytes(bytes(counterproof))
        except ValueError:
            return None  # not a valid rebuttal; the leaf stands
        verifier = self._verifier_for(record.name)
        assert verifier is not None  # ground truth already passed the lookup
        challenge = epoch_challenge(
            self.beacon.output(record.epoch), self.params, record.name
        )
        gas = self.gas_model.verification_gas(
            len(bytes(counterproof)), self.native_verify_ms
        )
        ctx.gas.consume(gas)
        entry.gas_used += gas
        if verifier.verify_private(challenge, proof):
            return (
                "rejection-rebutted: a valid proof exists for the epoch's "
                "challenge, so the committed rejection is slander"
            )
        return None

    def challenge_counts(
        self, ctx: CallContext, checkpoint_id: int, leaves: tuple[bytes, ...]
    ):
        """Full-data fraud proof for the commitment's summary fields.

        A single-leaf opening cannot expose forged ``accepted`` /
        ``rejected`` / ``num_leaves`` counts over an honest root, so this
        entry point takes the *entire* leaf set (cheap: hashing only, no
        pairings), rebuilds the Merkle tree, and requires it to reproduce
        the committed root — which proves the supplied leaves are exactly
        the committed ones.  The counts are then recomputed; any
        discrepancy (including undecodable or duplicate-name leaves, which
        an honest aggregator can never commit) slashes the checkpoint.
        """
        entry = self._require_challengeable(ctx, checkpoint_id)
        leaf_list = [bytes(leaf) for leaf in leaves]
        self.require(bool(leaf_list), "no leaves supplied")
        # Hash metering: one leaf hash each plus the internal nodes.
        schedule = self.gas_model.schedule
        gas = sum(schedule.hash_gas(len(leaf)) for leaf in leaf_list)
        gas += (len(leaf_list) - 1) * schedule.hash_gas(64)
        ctx.gas.consume(gas)
        entry.gas_used += gas
        tree = MerkleTree(leaf_list)
        if tree.root != entry.commitment.root:
            # A light client holding only a *partial* leaf set used to hit
            # the same opaque root-mismatch revert as a genuinely wrong
            # set.  Name the real problem and the documented way in.  The
            # size check stays inside the root-mismatch branch on purpose:
            # a leaf set that DOES rebuild the root must always reach the
            # count checks, or forging ``num_leaves`` itself would become
            # unpunishable (the true set has a different size).
            self.require(
                len(leaf_list) == entry.commitment.num_leaves,
                f"partial-leaf-set: got {len(leaf_list)} leaves for a "
                f"checkpoint committing {entry.commitment.num_leaves}; "
                "reconstruct the full epoch from DA samples "
                "(da_sample_get -> k-of-n reconstruction) before "
                "challenging counts",
            )
            raise RevertError(
                "supplied leaves do not rebuild the committed root"
            )
        fraud_reason = None
        accepted = 0
        names = set()
        for leaf in leaf_list:
            try:
                record = RoundRecord.from_bytes(leaf)
            except ValueError as exc:
                fraud_reason = f"malformed-record: {exc}"
                break
            if record.name in names:
                fraud_reason = f"duplicate-name: {record.name:#x}"
                break
            names.add(record.name)
            accepted += 1 if record.verdict else 0
        if fraud_reason is None:
            commitment = entry.commitment
            if (
                len(leaf_list) != commitment.num_leaves
                or accepted != commitment.accepted
                or len(leaf_list) - accepted != commitment.rejected
            ):
                fraud_reason = (
                    f"count-mismatch: committed {commitment.accepted}/"
                    f"{commitment.rejected}/{commitment.num_leaves}, tree has "
                    f"{accepted}/{len(leaf_list) - accepted}/{len(leaf_list)}"
                )
        self.emit(
            "checkpoint_challenged",
            checkpoint=checkpoint_id,
            scope="counts",
            by=ctx.sender[:16],
        )
        self._settle_challenge(
            ctx, entry, fraud_reason, upheld_payload={"scope": "counts"}
        )

    def _slash_registry_stake(self, ctx: CallContext, poster: str) -> None:
        """Best-effort reputation slash for a fraudulent aggregator."""
        if self.registry_address is None:
            return
        assert self.chain is not None
        registry = self.chain.contract_at(self.registry_address)
        sub_ctx = CallContext(
            sender=self.address,
            value=0,
            timestamp=ctx.timestamp,
            block_number=ctx.block_number,
            gas=ctx.gas,
            chain=self.chain,
        )
        try:
            registry.slash_stake(sub_ctx, poster, 0.2, ctx.sender)
        except RevertError:
            return  # poster unregistered / contract unauthorized: skip
        self._pending_events.extend(registry._pending_events)
        registry._pending_events.clear()

    # ------------------------------------------------------------------ #
    # Finalization                                                        #
    # ------------------------------------------------------------------ #

    def finalize_checkpoint(self, ctx: CallContext, checkpoint_id: int):
        """Close the window on an unchallenged checkpoint, release the bond."""
        self.require(
            0 <= checkpoint_id < len(self.checkpoints), "unknown checkpoint"
        )
        entry = self.checkpoints[checkpoint_id]
        self.require(
            entry.status is CheckpointStatus.OPEN,
            f"checkpoint is {entry.status.value}",
        )
        self.require(
            ctx.timestamp > entry.posted_at + self.fraud_window,
            "fraud-proof window still open",
        )
        entry.status = CheckpointStatus.FINAL
        bond = entry.bond_wei
        entry.bond_wei = 0
        assert self.chain is not None
        if bond:
            self.chain.transfer(self.address, entry.poster, bond)
        self.emit(
            "checkpoint_finalized",
            checkpoint=checkpoint_id,
            epoch=entry.commitment.epoch,
            refunded_wei=bond,
        )

    # -- views -----------------------------------------------------------

    def checkpoint_for_epoch(self, ctx: CallContext, epoch: int) -> Checkpoint | None:
        checkpoint_id = self._by_epoch.get(epoch)
        if checkpoint_id is None:
            return None
        return self.checkpoints[checkpoint_id].commitment

    def da_commitment_for_epoch(self, ctx: CallContext, epoch: int):
        """The DA commitment bound to an epoch's checkpoint, if posted."""
        checkpoint_id = self._by_epoch.get(epoch)
        if checkpoint_id is None:
            return None
        return self.checkpoints[checkpoint_id].da_commitment

    def status(self, ctx: CallContext) -> dict:
        return {
            "checkpoints": len(self.checkpoints),
            "instances": len(self.instances),
            "open": sum(
                1 for e in self.checkpoints if e.status is CheckpointStatus.OPEN
            ),
            "final": sum(
                1 for e in self.checkpoints if e.status is CheckpointStatus.FINAL
            ),
            "slashed": sum(
                1 for e in self.checkpoints if e.status is CheckpointStatus.SLASHED
            ),
        }

    def total_checkpoint_gas(self) -> int:
        return sum(entry.gas_used for entry in self.checkpoints)

    def total_commitment_bytes(self) -> int:
        """On-chain audit-trail bytes (the Fig. 10 chain-growth quantity)."""
        return sum(entry.commitment_bytes for entry in self.checkpoints)

    def audited_rounds(self) -> int:
        """Rounds settled across every non-slashed checkpoint."""
        return sum(
            entry.commitment.num_leaves
            for entry in self.checkpoints
            if entry.status is not CheckpointStatus.SLASHED
        )
