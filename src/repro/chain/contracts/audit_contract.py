"""The secure storage-auditing smart contract — paper Fig. 2, faithfully.

The contract is a state machine::

    NEGOTIATING --negotiate(D)--> ACK --acknowledge(S)--> FREEZE
        --freeze(D,$) + freeze(S,$)--> AUDIT
        --scheduler--> PROVE --submit_proof(S)--> (verify trigger)
        --pass: pay S / fail: pay D--> AUDIT ... until cnt == num --> CLOSED

Every transition broadcasts the event named in the paper ("negotiated",
"acked", "inited", "challenged", "proofposted", "pass", "fail") and is
guarded by the same asserts.  Scheduling of the Chal/Verify triggers uses
the chain's Ethereum-Alarm-Clock-style service; per-round randomness comes
from a pluggable beacon (Section V-E).

Gas for the verification transaction follows the paper's Fig. 5
time-extrapolation model (:class:`repro.chain.gas.AuditPrecompileModel`),
with the native verification time as a parameter (default: the paper's
7.2 ms anchor) since our Python wall-clock is not the Golang precompile's.
Fees are drawn from the data owner's gas fund, matching "the data owner
needs to pay the on-chain cost" (Section VII-B).

Beyond the paper's Fig. 2, the contract carries a **dispute/arbitration
flow** (see ``docs/PROTOCOL.md`` section 7): any resolved round can be
re-arbitrated from its on-chain bytes by either party against a bond.  A
confirmed cheating round lets the owner slash extra provider collateral
and — when a :class:`~repro.chain.contracts.reputation.ReputationRegistry`
is wired in — the provider's registry stake, so failed audits carry
consequences beyond the per-round penalty.  Every failed round records a
structured rejection reason (``no-proof`` / ``malformed-proof`` /
``replayed-proof`` / ``pairing-mismatch``) that the explorer surfaces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ...core.challenge import Challenge, challenge_from_beacon
from ...core.keys import PublicKey
from ...core.params import ProtocolParams
from ...core.proof import PRIVATE_PROOF_BYTES, PrivateProof
from ...core.verifier import Verifier, VerifyOutcome, VerifyReport
from ...randomness.beacon import RandomnessBeacon
from ..blockchain import CallContext, Contract, WEI_PER_GWEI
from ..gas import PAPER_VERIFY_MS, AuditPrecompileModel, GasSchedule
from ..transaction import RevertError


class State(enum.Enum):
    NEGOTIATING = "negotiating"   # the paper's bottom state
    ACK = "ack"
    FREEZE = "freeze"
    AUDIT = "audit"
    PROVE = "prove"
    CLOSED = "closed"


@dataclass(frozen=True)
class ContractTerms:
    """agrmts in the paper: duration, round count, cadence, payments."""

    num_audits: int
    audit_interval: float = 24 * 3600.0       # daily auditing by default
    response_window: float = 600.0            # S must answer within this
    payment_per_round_wei: int = 5 * 10**15   # micro-payment to S per pass
    penalty_per_round_wei: int = 5 * 10**15   # slashed from S per fail
    gas_fund_wei: int = 10**17                # D prepays scheduled executions
    dispute_bond_wei: int = 10**15            # stake to open an arbitration
    dispute_slash_wei: int = 2 * 10**16       # extra collateral slashed on a
                                              # dispute-confirmed cheat
    dispute_window: float = 24 * 3600.0       # how long after a round
                                              # resolves it stays disputable

    @property
    def duration(self) -> float:
        """T in the paper: deposits stay locked this long."""
        return self.num_audits * self.audit_interval + self.response_window

    @property
    def owner_deposit_wei(self) -> int:
        return self.num_audits * self.payment_per_round_wei + self.gas_fund_wei

    @property
    def provider_deposit_wei(self) -> int:
        """Per-round penalties plus one dispute-slash reserve.

        The reserve is what gives a dispute on the *final* round teeth:
        without it the closing verdict and the deposit refund land in the
        same transaction and there is nothing left to slash.
        """
        return (
            self.num_audits * self.penalty_per_round_wei
            + self.dispute_slash_wei
        )


@dataclass
class AuditRound:
    """One round's on-chain trail (what Fig. 10's chain-growth counts)."""

    round_id: int
    challenge: Challenge
    proof_bytes: bytes | None = None
    passed: bool | None = None
    gas_used: int = 0
    verify_ms: float = 0.0
    reject_reason: str | None = None     # structured code for a failed round
    reject_detail: str = ""              # residual fingerprints / context
    resolved_at: float | None = None     # chain time of the verdict
    disputed_by: str | None = None       # account that opened arbitration
    dispute_verdict: str | None = None   # "upheld" | "overturned"

    def trail_bytes(self) -> int:
        proof = len(self.proof_bytes) if self.proof_bytes else 0
        return self.challenge.byte_size() + proof


class AuditContract(Contract):
    """One storage contract between one data owner and one provider."""

    def __init__(
        self,
        owner: str,
        provider: str,
        terms: ContractTerms,
        beacon: RandomnessBeacon,
        params: ProtocolParams,
        native_verify_ms: float = PAPER_VERIFY_MS,
        gas_schedule: GasSchedule | None = None,
        registry_address: str | None = None,
    ):
        super().__init__()
        self.owner = owner
        self.provider = provider
        self.terms = terms
        self.beacon = beacon
        self.params = params
        self.native_verify_ms = native_verify_ms
        # Optional reputation wiring: when set (and this contract is an
        # authorized reporter), every round outcome is reported inline and
        # dispute-confirmed cheats slash the provider's registry stake.
        self.registry_address = registry_address
        self.gas_model = AuditPrecompileModel(gas_schedule or GasSchedule.istanbul())
        self.state = State.NEGOTIATING
        self.cnt = 0
        self.public_key: PublicKey | None = None
        self.file_name: int | None = None
        self.num_chunks: int = 0
        self.deposits: dict[str, int] = {owner: 0, provider: 0}
        self.rounds: list[AuditRound] = []
        self.passes = 0
        self.fails = 0
        self._expiry: float | None = None
        self._verify_scheduled_for: int | None = None

    # ------------------------------------------------------------------ #
    # Initialize phase (paper Fig. 2 left)                                #
    # ------------------------------------------------------------------ #

    def negotiate(
        self,
        ctx: CallContext,
        public_key: PublicKey,
        file_name: int,
        num_chunks: int,
    ):
        """On receive ("negotiated", agrmts, params, metadata) from D."""
        self.require(ctx.sender == self.owner, "only the data owner negotiates")
        self.require(self.state is State.NEGOTIATING, "st != bottom")
        self.require(num_chunks > 0, "empty file")
        self.public_key = public_key
        self.file_name = file_name
        self.num_chunks = num_chunks
        # One-time on-chain storage of pk + metadata: the Fig. 4 cost.
        ctx.gas.consume(
            self.gas_model.schedule.storage_gas(public_key.byte_size())
        )
        self.state = State.ACK
        self.emit("negotiated", pk_bytes=public_key.byte_size(), name=file_name)

    def acknowledge(self, ctx: CallContext):
        """On receive ("acked") from S."""
        self.require(ctx.sender == self.provider, "only the provider acks")
        self.require(self.state is State.ACK, "st != ACK")
        self.state = State.FREEZE
        self.emit("acked")

    def reject(self, ctx: CallContext):
        """Provider refuses the terms during ACK (Section VI-A's DoS note:
        D already paid the on-chain storage for params and metadata)."""
        self.require(ctx.sender == self.provider, "only the provider rejects")
        self.require(self.state is State.ACK, "st != ACK")
        self.state = State.CLOSED
        self.emit("rejected")

    def freeze(self, ctx: CallContext):
        """On receive ("freeze", $D, $S): both parties lock their deposits."""
        self.require(self.state is State.FREEZE, "st != FREEZE")
        self.require(ctx.sender in (self.owner, self.provider), "not a party")
        self.deposits[ctx.sender] += ctx.value
        required = {
            self.owner: self.terms.owner_deposit_wei,
            self.provider: self.terms.provider_deposit_wei,
        }
        self.require(
            self.deposits[ctx.sender] <= required[ctx.sender],
            "deposit exceeds the agreed amount",
        )
        if all(self.deposits[party] >= required[party] for party in required):
            self.state = State.AUDIT
            self._expiry = ctx.timestamp + self.terms.duration
            self.emit("inited", locked_until=self._expiry)
            assert self.chain is not None
            self.chain.schedule_call(
                self.address, "trigger_challenge", self.terms.audit_interval
            )

    # ------------------------------------------------------------------ #
    # Audit phase (paper Fig. 2 right)                                    #
    # ------------------------------------------------------------------ #

    def trigger_challenge(self, ctx: CallContext):
        """On trigger scheduling ("Chal")."""
        if self.state is State.CLOSED:
            return
        self.require(self.state is State.AUDIT, "st != AUDIT")
        self.require(self.cnt < self.terms.num_audits, "cnt out of range")
        randomness = self.beacon.output(self.cnt)
        challenge = challenge_from_beacon(randomness, self.params)
        self.rounds.append(AuditRound(round_id=self.cnt, challenge=challenge))
        # The 48-byte challenge is recorded on chain.
        ctx.gas.consume(
            self.gas_model.schedule.storage_gas(challenge.byte_size())
        )
        self.state = State.PROVE
        self.emit("challenged", round=self.cnt, bytes=challenge.byte_size())
        assert self.chain is not None
        self._verify_scheduled_for = self.cnt
        self.chain.schedule_call(
            self.address, "trigger_verify", self.terms.response_window
        )

    def submit_proof(self, ctx: CallContext, proof_bytes: bytes):
        """On receive ("prove", prf) from S."""
        self.require(ctx.sender == self.provider, "only the provider proves")
        self.require(self.state is State.PROVE, "st != PROVE")
        self.require(self.cnt < self.terms.num_audits, "cnt out of range")
        self.require(
            len(proof_bytes) == PRIVATE_PROOF_BYTES,
            f"proof must be {PRIVATE_PROOF_BYTES} bytes",
        )
        current = self.rounds[self.cnt]
        self.require(current.proof_bytes is None, "proof already posted")
        current.proof_bytes = bytes(proof_bytes)
        ctx.gas.consume(self.gas_model.schedule.storage_gas(len(proof_bytes)))
        self.emit("proofposted", round=self.cnt)

    def _adjudicate(self, current: AuditRound) -> tuple[bool, str | None, str, float]:
        """Verify one round's on-chain bytes; returns (passed, reason code,
        detail, verify_ms).  Shared by the round verdict and arbitration."""
        if current.proof_bytes is None:
            return False, "no-proof", "response window lapsed", 0.0
        # Replay detection: identical bytes to an earlier round's proof.
        # The pairing check rejects stale proofs anyway (the challenge is
        # fresh per round); the explicit code names the behaviour on chain.
        for earlier in self.rounds[: current.round_id]:
            if earlier.proof_bytes == current.proof_bytes:
                return (
                    False,
                    "replayed-proof",
                    f"identical bytes to round {earlier.round_id}",
                    0.0,
                )
        try:
            proof = PrivateProof.from_bytes(current.proof_bytes)
        except ValueError as exc:
            return False, "malformed-proof", str(exc), 0.0
        assert self.public_key is not None and self.file_name is not None
        verifier = Verifier(self.public_key, self.file_name, self.num_chunks)
        report = VerifyReport()
        outcome: VerifyOutcome = verifier.verify_private(
            current.challenge, proof, report
        )
        verify_ms = report.total_seconds * 1000.0
        if outcome:
            return True, None, "", verify_ms
        assert outcome.reason is not None
        return False, outcome.reason.code, outcome.reason.describe(), verify_ms

    def trigger_verify(self, ctx: CallContext):
        """On trigger scheduling ("Verify")."""
        if self.state is State.CLOSED:
            return
        self.require(self.state is State.PROVE, "st != PROVE")
        current = self.rounds[self.cnt]
        passed, reason, detail, verify_ms = self._adjudicate(current)
        current.reject_reason = reason
        current.reject_detail = detail
        # Charge the Fig. 5 gas model against the owner's prepaid gas fund.
        gas = self.gas_model.verification_gas(
            len(current.proof_bytes or b""), self.native_verify_ms
        )
        ctx.gas.consume(gas)
        fee = int(gas * 5 * WEI_PER_GWEI)
        assert self.chain is not None
        fee = min(fee, self.deposits[self.owner])
        self.deposits[self.owner] -= fee
        self.chain._debit(self.address, fee)
        self.chain.fee_sink += fee

        current.passed = passed
        current.gas_used = gas
        # Round state feeds state_hash: record the cost model's pinned
        # verification time (zero when no verification ran), never the
        # live wall-clock measurement — two chains fed the same workload
        # must hash identically.
        current.verify_ms = self.native_verify_ms if verify_ms else 0.0
        current.resolved_at = ctx.timestamp
        if passed:
            self.passes += 1
            payment = min(
                self.terms.payment_per_round_wei, self.deposits[self.owner]
            )
            self.deposits[self.owner] -= payment
            self.chain.transfer(self.address, self.provider, payment)
            self.emit("pass", round=self.cnt, paid_wei=payment)
        else:
            self.fails += 1
            penalty = min(
                self.terms.penalty_per_round_wei, self.deposits[self.provider]
            )
            self.deposits[self.provider] -= penalty
            self.chain.transfer(self.address, self.owner, penalty)
            self.emit(
                "fail", round=self.cnt, slashed_wei=penalty, reason=reason
            )
        self._report_to_registry(ctx, passed)
        self.cnt += 1
        if self.cnt >= self.terms.num_audits:
            self._finalize()
        else:
            self.state = State.AUDIT
            self.chain.schedule_call(
                self.address, "trigger_challenge", self.terms.audit_interval
            )

    # ------------------------------------------------------------------ #
    # Dispute / arbitration (docs/PROTOCOL.md section 7)                  #
    # ------------------------------------------------------------------ #

    def _call_registry(self, ctx: CallContext, method: str, *args):
        """EVM-style internal call into the wired reputation registry.

        Events the registry emits are hoisted into this transaction's
        pending list so they land in the same receipt.
        """
        assert self.chain is not None and self.registry_address is not None
        registry = self.chain.contract_at(self.registry_address)
        sub_ctx = CallContext(
            sender=self.address,
            value=0,
            timestamp=ctx.timestamp,
            block_number=ctx.block_number,
            gas=ctx.gas,
            chain=self.chain,
        )
        result = getattr(registry, method)(sub_ctx, *args)
        self._pending_events.extend(registry._pending_events)
        registry._pending_events.clear()
        return result

    def _report_to_registry(self, ctx: CallContext, passed: bool) -> None:
        """Best-effort inline outcome report (no-op when not wired)."""
        if self.registry_address is None:
            return
        try:
            self._call_registry(ctx, "report_audit", self.provider, passed)
        except RevertError:
            pass  # provider unregistered / contract unauthorized: skip

    def raise_dispute(self, ctx: CallContext, round_id: int):
        """Re-arbitrate a resolved round from its on-chain bytes.

        Either party posts ``dispute_bond_wei`` and the contract re-runs
        the verdict from the recorded (challenge, proof) bytes:

        * arbitration disagrees with the recorded verdict → the trail is
          corrected (verdict and pass/fail tallies) and the bond refunded;
          the already-settled round payment/penalty is left to governance
          since a mis-recorded trail means contract execution itself broke;
        * verdict confirmed, challenger is the wronged owner of a failed
          round → the bond is refunded, extra provider collateral
          (``dispute_slash_wei``) is slashed to the owner, and the
          provider's registry stake is slashed when a registry is wired;
        * verdict confirmed, challenger was wrong (provider contesting a
          genuine failure, or owner contesting a genuine pass) → the bond
          is forfeited to the counterparty.
        """
        self.require(ctx.sender in (self.owner, self.provider), "not a party")
        self.require(
            ctx.value >= self.terms.dispute_bond_wei,
            f"dispute bond is {self.terms.dispute_bond_wei} wei",
        )
        self.require(0 <= round_id < len(self.rounds), "unknown round")
        record = self.rounds[round_id]
        self.require(record.passed is not None, "round not yet resolved")
        self.require(record.disputed_by is None, "round already disputed")
        assert record.resolved_at is not None
        self.require(
            ctx.timestamp <= record.resolved_at + self.terms.dispute_window,
            "dispute window closed",
        )
        assert self.chain is not None
        # Adjudicate and meter gas BEFORE marking the round disputed: the
        # simulated chain only reverts balances on failure, so mutating
        # contract state ahead of a potential OutOfGasError would lock the
        # round against any future (properly funded) dispute.
        verdict, reason, detail, _ = self._adjudicate(record)
        gas = self.gas_model.verification_gas(
            len(record.proof_bytes or b""), self.native_verify_ms
        )
        ctx.gas.consume(gas)
        record.disputed_by = ctx.sender
        challenger_role = "owner" if ctx.sender == self.owner else "provider"
        self.emit("disputed", round=round_id, by=challenger_role)
        counterparty = self.provider if ctx.sender == self.owner else self.owner

        if verdict != record.passed:
            # Arbitration is a deterministic re-run over immutable bytes,
            # so this branch fires only for a mis-recorded trail (the
            # light-client disagreement case): correct the record, refund
            # the challenger's bond, and leave value flows to governance.
            record.dispute_verdict = "overturned"
            record.passed = verdict
            record.reject_reason = reason
            record.reject_detail = detail
            self.passes += 1 if verdict else -1
            self.fails += -1 if verdict else 1
            self.chain.transfer(self.address, ctx.sender, ctx.value)
            self.emit(
                "dispute_overturned",
                round=round_id,
                corrected_verdict="pass" if verdict else "fail",
            )
            return

        record.dispute_verdict = "upheld"
        self.emit("dispute_upheld", round=round_id, verdict="pass" if verdict else "fail")
        if not verdict and ctx.sender == self.owner:
            # Escalation by the wronged party: the chain itself confirms
            # the provider cheated, so the failure gets teeth — bond back,
            # deep collateral slash, registry stake slash.
            self.chain.transfer(self.address, ctx.sender, ctx.value)
            slash = min(self.terms.dispute_slash_wei, self.deposits[self.provider])
            if slash > 0:
                self.deposits[self.provider] -= slash
                self.chain.transfer(self.address, self.owner, slash)
                self.emit(
                    "collateral_slashed",
                    round=round_id,
                    slashed_wei=slash,
                    reason=record.reject_reason,
                )
            if self.registry_address is not None:
                try:
                    self._call_registry(
                        ctx, "slash_stake", self.provider, 0.2, self.owner
                    )
                except RevertError:
                    pass
        else:
            # Frivolous dispute: bond to the counterparty.
            self.chain.transfer(self.address, counterparty, ctx.value)

    # ------------------------------------------------------------------ #
    # Settlement                                                          #
    # ------------------------------------------------------------------ #

    def _finalize(self) -> None:
        """Refund unspent deposits and close (contract expiry).

        When failed rounds are still disputable, up to ``dispute_slash_wei``
        of the provider's deposit stays locked as the dispute reserve —
        otherwise the closing verdict and the refund would land in the same
        transaction and a final-round dispute would have nothing to slash.
        The provider reclaims whatever survives the window through
        :meth:`withdraw_reserve`.
        """
        assert self.chain is not None
        undisputed_fails = any(
            r.passed is False and r.disputed_by is None for r in self.rounds
        )
        reserve = (
            min(self.terms.dispute_slash_wei, self.deposits[self.provider])
            if undisputed_fails
            else 0
        )
        for party in (self.owner, self.provider):
            hold_back = reserve if party == self.provider else 0
            remaining = self.deposits[party] - hold_back
            if remaining:
                self.deposits[party] = hold_back
                self.chain.transfer(self.address, party, remaining)
        self.state = State.CLOSED
        self.emit(
            "expired",
            passes=self.passes,
            fails=self.fails,
            dispute_reserve_wei=reserve,
        )

    def withdraw_reserve(self, ctx: CallContext):
        """Provider reclaims the dispute reserve once every window closed."""
        self.require(ctx.sender == self.provider, "only the provider withdraws")
        self.require(self.state is State.CLOSED, "st != CLOSED")
        latest = max(
            (r.resolved_at for r in self.rounds if r.resolved_at is not None),
            default=0.0,
        )
        self.require(
            ctx.timestamp >= latest + self.terms.dispute_window,
            "dispute window still open",
        )
        remaining = self.deposits[self.provider]
        self.require(remaining > 0, "no reserve held")
        self.deposits[self.provider] = 0
        assert self.chain is not None
        self.chain.transfer(self.address, self.provider, remaining)
        self.emit("reserve_released", refunded_wei=remaining)

    # -- views -----------------------------------------------------------

    def current_challenge(self, ctx: CallContext) -> Challenge | None:
        if self.state is not State.PROVE:
            return None
        return self.rounds[self.cnt].challenge

    def status(self, ctx: CallContext) -> dict:
        return {
            "state": self.state.value,
            "cnt": self.cnt,
            "passes": self.passes,
            "fails": self.fails,
            "owner_deposit": self.deposits[self.owner],
            "provider_deposit": self.deposits[self.provider],
        }

    def total_audit_gas(self) -> int:
        return sum(r.gas_used for r in self.rounds)

    def total_trail_bytes(self) -> int:
        return sum(r.trail_bytes() for r in self.rounds)
