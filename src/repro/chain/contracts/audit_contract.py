"""The secure storage-auditing smart contract — paper Fig. 2, faithfully.

The contract is a state machine::

    NEGOTIATING --negotiate(D)--> ACK --acknowledge(S)--> FREEZE
        --freeze(D,$) + freeze(S,$)--> AUDIT
        --scheduler--> PROVE --submit_proof(S)--> (verify trigger)
        --pass: pay S / fail: pay D--> AUDIT ... until cnt == num --> CLOSED

Every transition broadcasts the event named in the paper ("negotiated",
"acked", "inited", "challenged", "proofposted", "pass", "fail") and is
guarded by the same asserts.  Scheduling of the Chal/Verify triggers uses
the chain's Ethereum-Alarm-Clock-style service; per-round randomness comes
from a pluggable beacon (Section V-E).

Gas for the verification transaction follows the paper's Fig. 5
time-extrapolation model (:class:`repro.chain.gas.AuditPrecompileModel`),
with the native verification time as a parameter (default: the paper's
7.2 ms anchor) since our Python wall-clock is not the Golang precompile's.
Fees are drawn from the data owner's gas fund, matching "the data owner
needs to pay the on-chain cost" (Section VII-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ...core.challenge import Challenge, challenge_from_beacon
from ...core.keys import PublicKey
from ...core.params import ProtocolParams
from ...core.proof import PRIVATE_PROOF_BYTES, PrivateProof
from ...core.verifier import Verifier, VerifyReport
from ...randomness.beacon import RandomnessBeacon
from ..blockchain import CallContext, Contract, WEI_PER_GWEI
from ..gas import PAPER_VERIFY_MS, AuditPrecompileModel, GasSchedule


class State(enum.Enum):
    NEGOTIATING = "negotiating"   # the paper's bottom state
    ACK = "ack"
    FREEZE = "freeze"
    AUDIT = "audit"
    PROVE = "prove"
    CLOSED = "closed"


@dataclass(frozen=True)
class ContractTerms:
    """agrmts in the paper: duration, round count, cadence, payments."""

    num_audits: int
    audit_interval: float = 24 * 3600.0       # daily auditing by default
    response_window: float = 600.0            # S must answer within this
    payment_per_round_wei: int = 5 * 10**15   # micro-payment to S per pass
    penalty_per_round_wei: int = 5 * 10**15   # slashed from S per fail
    gas_fund_wei: int = 10**17                # D prepays scheduled executions

    @property
    def duration(self) -> float:
        """T in the paper: deposits stay locked this long."""
        return self.num_audits * self.audit_interval + self.response_window

    @property
    def owner_deposit_wei(self) -> int:
        return self.num_audits * self.payment_per_round_wei + self.gas_fund_wei

    @property
    def provider_deposit_wei(self) -> int:
        return self.num_audits * self.penalty_per_round_wei


@dataclass
class AuditRound:
    """One round's on-chain trail (what Fig. 10's chain-growth counts)."""

    round_id: int
    challenge: Challenge
    proof_bytes: bytes | None = None
    passed: bool | None = None
    gas_used: int = 0
    verify_ms: float = 0.0

    def trail_bytes(self) -> int:
        proof = len(self.proof_bytes) if self.proof_bytes else 0
        return self.challenge.byte_size() + proof


class AuditContract(Contract):
    """One storage contract between one data owner and one provider."""

    def __init__(
        self,
        owner: str,
        provider: str,
        terms: ContractTerms,
        beacon: RandomnessBeacon,
        params: ProtocolParams,
        native_verify_ms: float = PAPER_VERIFY_MS,
        gas_schedule: GasSchedule | None = None,
    ):
        super().__init__()
        self.owner = owner
        self.provider = provider
        self.terms = terms
        self.beacon = beacon
        self.params = params
        self.native_verify_ms = native_verify_ms
        self.gas_model = AuditPrecompileModel(gas_schedule or GasSchedule.istanbul())
        self.state = State.NEGOTIATING
        self.cnt = 0
        self.public_key: PublicKey | None = None
        self.file_name: int | None = None
        self.num_chunks: int = 0
        self.deposits: dict[str, int] = {owner: 0, provider: 0}
        self.rounds: list[AuditRound] = []
        self.passes = 0
        self.fails = 0
        self._expiry: float | None = None
        self._verify_scheduled_for: int | None = None

    # ------------------------------------------------------------------ #
    # Initialize phase (paper Fig. 2 left)                                #
    # ------------------------------------------------------------------ #

    def negotiate(
        self,
        ctx: CallContext,
        public_key: PublicKey,
        file_name: int,
        num_chunks: int,
    ):
        """On receive ("negotiated", agrmts, params, metadata) from D."""
        self.require(ctx.sender == self.owner, "only the data owner negotiates")
        self.require(self.state is State.NEGOTIATING, "st != bottom")
        self.require(num_chunks > 0, "empty file")
        self.public_key = public_key
        self.file_name = file_name
        self.num_chunks = num_chunks
        # One-time on-chain storage of pk + metadata: the Fig. 4 cost.
        ctx.gas.consume(
            self.gas_model.schedule.storage_gas(public_key.byte_size())
        )
        self.state = State.ACK
        self.emit("negotiated", pk_bytes=public_key.byte_size(), name=file_name)

    def acknowledge(self, ctx: CallContext):
        """On receive ("acked") from S."""
        self.require(ctx.sender == self.provider, "only the provider acks")
        self.require(self.state is State.ACK, "st != ACK")
        self.state = State.FREEZE
        self.emit("acked")

    def reject(self, ctx: CallContext):
        """Provider refuses the terms during ACK (Section VI-A's DoS note:
        D already paid the on-chain storage for params and metadata)."""
        self.require(ctx.sender == self.provider, "only the provider rejects")
        self.require(self.state is State.ACK, "st != ACK")
        self.state = State.CLOSED
        self.emit("rejected")

    def freeze(self, ctx: CallContext):
        """On receive ("freeze", $D, $S): both parties lock their deposits."""
        self.require(self.state is State.FREEZE, "st != FREEZE")
        self.require(ctx.sender in (self.owner, self.provider), "not a party")
        self.deposits[ctx.sender] += ctx.value
        required = {
            self.owner: self.terms.owner_deposit_wei,
            self.provider: self.terms.provider_deposit_wei,
        }
        self.require(
            self.deposits[ctx.sender] <= required[ctx.sender],
            "deposit exceeds the agreed amount",
        )
        if all(self.deposits[party] >= required[party] for party in required):
            self.state = State.AUDIT
            self._expiry = ctx.timestamp + self.terms.duration
            self.emit("inited", locked_until=self._expiry)
            assert self.chain is not None
            self.chain.schedule_call(
                self.address, "trigger_challenge", self.terms.audit_interval
            )

    # ------------------------------------------------------------------ #
    # Audit phase (paper Fig. 2 right)                                    #
    # ------------------------------------------------------------------ #

    def trigger_challenge(self, ctx: CallContext):
        """On trigger scheduling ("Chal")."""
        if self.state is State.CLOSED:
            return
        self.require(self.state is State.AUDIT, "st != AUDIT")
        self.require(self.cnt < self.terms.num_audits, "cnt out of range")
        randomness = self.beacon.output(self.cnt)
        challenge = challenge_from_beacon(randomness, self.params)
        self.rounds.append(AuditRound(round_id=self.cnt, challenge=challenge))
        # The 48-byte challenge is recorded on chain.
        ctx.gas.consume(
            self.gas_model.schedule.storage_gas(challenge.byte_size())
        )
        self.state = State.PROVE
        self.emit("challenged", round=self.cnt, bytes=challenge.byte_size())
        assert self.chain is not None
        self._verify_scheduled_for = self.cnt
        self.chain.schedule_call(
            self.address, "trigger_verify", self.terms.response_window
        )

    def submit_proof(self, ctx: CallContext, proof_bytes: bytes):
        """On receive ("prove", prf) from S."""
        self.require(ctx.sender == self.provider, "only the provider proves")
        self.require(self.state is State.PROVE, "st != PROVE")
        self.require(self.cnt < self.terms.num_audits, "cnt out of range")
        self.require(
            len(proof_bytes) == PRIVATE_PROOF_BYTES,
            f"proof must be {PRIVATE_PROOF_BYTES} bytes",
        )
        current = self.rounds[self.cnt]
        self.require(current.proof_bytes is None, "proof already posted")
        current.proof_bytes = bytes(proof_bytes)
        ctx.gas.consume(self.gas_model.schedule.storage_gas(len(proof_bytes)))
        self.emit("proofposted", round=self.cnt)

    def trigger_verify(self, ctx: CallContext):
        """On trigger scheduling ("Verify")."""
        if self.state is State.CLOSED:
            return
        self.require(self.state is State.PROVE, "st != PROVE")
        current = self.rounds[self.cnt]
        passed = False
        verify_ms = 0.0
        if current.proof_bytes is not None:
            try:
                proof = PrivateProof.from_bytes(current.proof_bytes)
                assert self.public_key is not None and self.file_name is not None
                verifier = Verifier(self.public_key, self.file_name, self.num_chunks)
                report = VerifyReport()
                passed = verifier.verify_private(current.challenge, proof, report)
                verify_ms = report.total_seconds * 1000.0
            except ValueError:
                passed = False
        # Charge the Fig. 5 gas model against the owner's prepaid gas fund.
        gas = self.gas_model.verification_gas(
            len(current.proof_bytes or b""), self.native_verify_ms
        )
        ctx.gas.consume(gas)
        fee = int(gas * 5 * WEI_PER_GWEI)
        assert self.chain is not None
        fee = min(fee, self.deposits[self.owner])
        self.deposits[self.owner] -= fee
        self.chain._debit(self.address, fee)
        self.chain.fee_sink += fee

        current.passed = passed
        current.gas_used = gas
        current.verify_ms = verify_ms
        if passed:
            self.passes += 1
            payment = min(
                self.terms.payment_per_round_wei, self.deposits[self.owner]
            )
            self.deposits[self.owner] -= payment
            self.chain.transfer(self.address, self.provider, payment)
            self.emit("pass", round=self.cnt, paid_wei=payment)
        else:
            self.fails += 1
            penalty = min(
                self.terms.penalty_per_round_wei, self.deposits[self.provider]
            )
            self.deposits[self.provider] -= penalty
            self.chain.transfer(self.address, self.owner, penalty)
            self.emit("fail", round=self.cnt, slashed_wei=penalty)
        self.cnt += 1
        if self.cnt >= self.terms.num_audits:
            self._finalize()
        else:
            self.state = State.AUDIT
            self.chain.schedule_call(
                self.address, "trigger_challenge", self.terms.audit_interval
            )

    # ------------------------------------------------------------------ #
    # Settlement                                                          #
    # ------------------------------------------------------------------ #

    def _finalize(self) -> None:
        """Refund unspent deposits and close (contract expiry)."""
        assert self.chain is not None
        for party in (self.owner, self.provider):
            remaining = self.deposits[party]
            if remaining:
                self.deposits[party] = 0
                self.chain.transfer(self.address, party, remaining)
        self.state = State.CLOSED
        self.emit("expired", passes=self.passes, fails=self.fails)

    # -- views -----------------------------------------------------------

    def current_challenge(self, ctx: CallContext) -> Challenge | None:
        if self.state is not State.PROVE:
            return None
        return self.rounds[self.cnt].challenge

    def status(self, ctx: CallContext) -> dict:
        return {
            "state": self.state.value,
            "cnt": self.cnt,
            "passes": self.passes,
            "fails": self.fails,
            "owner_deposit": self.deposits[self.owner],
            "provider_deposit": self.deposits[self.provider],
        }

    def total_audit_gas(self) -> int:
        return sum(r.gas_used for r in self.rounds)

    def total_trail_bytes(self) -> int:
        return sum(r.trail_bytes() for r in self.rounds)
