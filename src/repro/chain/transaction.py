"""Transactions, receipts and event logs for the simulated chain."""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any

_TX_COUNTER = itertools.count()


@dataclass(frozen=True)
class Event:
    """A contract 'broadcast' (paper Fig. 2 emits these every transition)."""

    contract: str
    name: str
    payload: dict[str, Any] = field(default_factory=dict)
    block_number: int = -1

    def __str__(self) -> str:
        return f"[{self.contract[:10]}] {self.name} {self.payload}"


@dataclass
class Transaction:
    """A call into a contract (or a plain value transfer when method is None).

    ``signature``/``public_key`` authenticate the sender when the chain
    runs in ``require_signatures`` mode (Schnorr over BN254 G1; see
    :mod:`repro.crypto.schnorr`); ``nonce`` provides replay protection.
    """

    sender: str
    to: str | None
    method: str | None = None
    args: tuple = ()
    value: int = 0            # wei
    gas_limit: int = 10_000_000
    gas_price_gwei: float = 5.0
    nonce: int = 0
    signature: bytes | None = None
    public_key: bytes | None = None
    # EIP-1559-style fee fields, consumed by the mempool admission path.
    # When both are None the legacy ``gas_price_gwei`` doubles as fee cap
    # and tip cap (pre-1559 semantics): the sender pays up to gas_price,
    # base fee first, the remainder as tip.
    max_fee_gwei: float | None = None
    priority_fee_gwei: float | None = None
    tx_id: int = field(default_factory=lambda: next(_TX_COUNTER))

    @property
    def tx_hash(self) -> str:
        material = f"{self.tx_id}:{self.sender}:{self.to}:{self.method}".encode()
        return hashlib.sha256(material).hexdigest()

    def signing_payload(self) -> bytes:
        """The bytes a sender signs (args are bound via their repr)."""
        material = (
            f"{self.sender}|{self.to}|{self.method}|{self.value}|{self.nonce}"
            f"|{len(self.args)}"
        )
        return hashlib.sha256(material.encode()).digest()


@dataclass
class Receipt:
    """Execution result: status, gas, emitted events, return value."""

    tx_hash: str
    success: bool
    gas_used: int
    events: list[Event] = field(default_factory=list)
    return_value: Any = None
    error: str | None = None
    block_number: int = -1

    @property
    def fee_wei(self) -> int:
        return self.gas_used  # scaled by gas price at the chain layer


class OutOfGasError(RuntimeError):
    pass


class RevertError(RuntimeError):
    """Contract-initiated revert (failed assert in the Fig. 2 state machine)."""
