"""Pluggable chain state persistence: where a lane's world lives.

Extracted from :class:`~repro.chain.blockchain.Blockchain` so that chain
*behaviour* (transaction execution, gas, scheduling) is separated from
chain *state* (accounts, nonces, contract storage, receipts, scheduled
calls, the clock).  Two backends:

* :class:`MemoryStateStore` — the original in-process dict store; state
  dies with the process.  Zero overhead, used by tests and benchmarks.
* :class:`WalStateStore` — a file-backed append-only write-ahead log plus
  snapshots.  Every committed mutation (account creation, contract
  deployment, transaction, block seal) appends one self-contained record;
  reopening the directory replays ``snapshot + WAL tail`` and reproduces
  the chain **bit-identically** (verified by :meth:`StateStore.state_hash`),
  including a crash between ``transact`` and ``mine_block``.

The canonical ``state_hash()`` is computed over a deterministic recursive
encoding of the whole logical state (balances, nonces, signer keys,
scheduled calls, blocks, receipts, events, and every contract's attribute
dict) — *not* over pickles — so live and replayed stores can be compared
across processes.

Contract objects are Python instances; the store persists them as
``(class, attribute dict)`` with the ``chain`` back-reference stripped,
and the owning :class:`~repro.chain.blockchain.Blockchain` rebinds it on
restore.
"""

from __future__ import annotations

import enum
import hashlib
import io
import os
import pickle
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "MemoryStateStore",
    "StateStore",
    "WalStateStore",
    "canonical_state_digest",
]

#: Attributes never persisted or hashed on a contract: the chain
#: back-reference would drag the whole world into every record.
_CONTRACT_SKIP_ATTRS = frozenset({"chain"})


# --------------------------------------------------------------------------- #
# Canonical state encoding                                                    #
# --------------------------------------------------------------------------- #


def _encode_canonical(value: Any, hasher, depth: int = 0) -> None:
    """Feed a deterministic, type-tagged encoding of ``value`` into ``hasher``.

    Dicts are encoded sorted by their keys' encodings, objects as
    ``module.qualname`` plus their sorted attribute dict, floats via
    ``repr`` (exact round-trip), so the digest is a pure function of the
    logical state — independent of dict insertion order, pickle protocol
    or process identity.
    """
    if depth > 64:
        raise ValueError("state encoding recursion too deep (cycle?)")
    if value is None:
        hasher.update(b"N")
    elif isinstance(value, bool):
        hasher.update(b"b1" if value else b"b0")
    elif isinstance(value, int):
        encoded = str(value).encode()
        hasher.update(b"i" + struct.pack(">I", len(encoded)) + encoded)
    elif isinstance(value, float):
        encoded = repr(value).encode()
        hasher.update(b"f" + struct.pack(">I", len(encoded)) + encoded)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        hasher.update(b"s" + struct.pack(">I", len(encoded)) + encoded)
    elif isinstance(value, (bytes, bytearray)):
        hasher.update(b"y" + struct.pack(">I", len(value)) + bytes(value))
    elif isinstance(value, enum.Enum):
        _encode_canonical(
            f"{type(value).__module__}.{type(value).__qualname__}", hasher, depth + 1
        )
        _encode_canonical(value.value, hasher, depth + 1)
    elif isinstance(value, (list, tuple)):
        hasher.update(b"l" + struct.pack(">I", len(value)))
        for item in value:
            _encode_canonical(item, hasher, depth + 1)
    elif isinstance(value, (set, frozenset)):
        digests = sorted(canonical_state_digest(item) for item in value)
        hasher.update(b"e" + struct.pack(">I", len(digests)))
        for digest in digests:
            hasher.update(digest)
    elif isinstance(value, dict):
        entries = sorted(
            (canonical_state_digest(key), key, val) for key, val in value.items()
        )
        hasher.update(b"d" + struct.pack(">I", len(entries)))
        for key_digest, _, val in entries:
            hasher.update(key_digest)
            _encode_canonical(val, hasher, depth + 1)
    else:
        attrs = _object_attrs(value)
        if attrs is None:
            raise TypeError(f"cannot canonically encode {type(value)!r}")
        hasher.update(b"o")
        _encode_canonical(
            f"{type(value).__module__}.{type(value).__qualname__}", hasher, depth + 1
        )
        _encode_canonical(attrs, hasher, depth + 1)


def _object_attrs(value: Any) -> dict | None:
    """An object's state dict (``__dict__`` and/or ``__slots__`` members).

    A class may publish ``_canonical_state_slots`` naming exactly the
    attributes that define its logical state; anything else (memoized
    derived values like a curve point's cached affine form) would make the
    digest depend on *usage history* instead of state.
    """
    explicit = getattr(type(value), "_canonical_state_slots", None)
    if explicit is not None:
        return {name: getattr(value, name) for name in explicit}
    attrs: dict[str, Any] = {}
    found = False
    if hasattr(value, "__dict__"):
        found = True
        attrs.update(
            (name, attr)
            for name, attr in vars(value).items()
            if name not in _CONTRACT_SKIP_ATTRS
        )
    for klass in type(value).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            found = True
            if hasattr(value, slot):
                attrs[slot] = getattr(value, slot)
    return attrs if found else None


def canonical_state_digest(value: Any) -> bytes:
    """SHA-256 over the canonical encoding of one value."""
    hasher = hashlib.sha256()
    _encode_canonical(value, hasher)
    return hasher.digest()


# --------------------------------------------------------------------------- #
# The store interface (and its in-memory reference backend)                   #
# --------------------------------------------------------------------------- #


class StateStore:
    """All mutable chain state, behind commit hooks the backends can log.

    The base class *is* the in-memory representation; subclasses override
    the ``begin_*`` / ``commit_*`` hooks to add durability.  The owning
    :class:`~repro.chain.blockchain.Blockchain` brackets every mutating
    entry point (account creation, deploy, transact, block seal) with one
    ``begin()`` / ``commit(kind, ...)`` pair; reads go straight at the
    attributes.
    """

    def __init__(self) -> None:
        self.time: float = 0.0
        self.blocks: list = []
        self.balances: dict[str, int] = {}
        self.contracts: dict[str, Any] = {}
        self.scheduled: list = []
        self.schedule_seq: int = 0
        self.events: list = []
        self.fee_sink: int = 0
        self.account_seq: int = 0
        self.tx_seq: int = 0
        self.signer_keys: dict[str, bytes] = {}
        self.nonces: dict[str, int] = {}
        # Fee-market / mempool state (zero until a Mempool is attached).
        # ``base_fee_wei`` and ``burned`` are ledger state (hashed); the
        # pending pool itself is admission-queue state, fingerprinted
        # separately by :meth:`pool_hash` so a drained pool-fed chain can
        # be compared hash-for-hash against a direct-transact chain.
        self.base_fee_wei: int = 0
        self.burned: int = 0
        self.pool: dict = {}              # (sender, nonce) -> PendingEntry
        self.pool_seq: int = 0
        self.mined_nonces: dict[str, int] = {}
        # Commit bookkeeping (used by logging backends).
        self._tx_depth = 0
        self._touched: set[str] = set()

    # -- commit protocol ----------------------------------------------------

    def begin(self) -> None:
        """Open a mutation scope (nestable; only the outermost commits)."""
        self._tx_depth += 1
        if self._tx_depth == 1:
            self._touched = set()
            self._begin_hook()

    def touch_contract(self, address: str) -> None:
        """Mark a contract as possibly mutated inside the open scope."""
        if self._tx_depth:
            self._touched.add(address)

    def commit(self, kind: str, **payload: Any) -> None:
        """Close the innermost scope; the outermost one logs a record."""
        assert self._tx_depth > 0, "commit without begin"
        self._tx_depth -= 1
        if self._tx_depth == 0:
            self._commit_hook(kind, payload, frozenset(self._touched))
            self._touched = set()

    def _begin_hook(self) -> None:  # pragma: no cover - trivial
        pass

    def _commit_hook(
        self, kind: str, payload: dict, touched: frozenset
    ) -> None:  # pragma: no cover - trivial
        pass

    # -- durability ----------------------------------------------------------

    def snapshot(self) -> None:
        """Persist a full-state snapshot (no-op for memory stores)."""

    def close(self) -> None:
        """Release any backing resources."""

    # -- the canonical fingerprint -------------------------------------------

    def state_hash(self) -> str:
        """Hex digest of the entire logical chain state.

        Two stores (live and WAL-replayed, or two fabric lanes fed the
        same traffic) agree on this iff they agree on every balance,
        nonce, signer key, scheduled call, block, receipt, event and
        contract attribute.
        """
        hasher = hashlib.sha256(b"chain-state-v1")
        _encode_canonical(
            {
                "time": self.time,
                "fee_sink": self.fee_sink,
                "base_fee_wei": self.base_fee_wei,
                "burned": self.burned,
                "account_seq": self.account_seq,
                "tx_seq": self.tx_seq,
                "schedule_seq": self.schedule_seq,
                "balances": self.balances,
                "nonces": self.nonces,
                "signer_keys": self.signer_keys,
                "scheduled": list(self.scheduled),
                "blocks": list(self.blocks),
                "events": list(self.events),
            },
            hasher,
        )
        for address in sorted(self.contracts):
            hasher.update(address.encode())
            _encode_canonical(self.contracts[address], hasher)
        return hasher.hexdigest()

    def pool_hash(self) -> str:
        """Canonical fingerprint of the pending mempool (hex digest).

        Kept separate from :meth:`state_hash` on purpose: the pool is
        admission-queue state, not ledger state, so a chain fed through
        the mempool and one fed through direct ``transact`` can agree on
        ``state_hash`` once the pool drains.  Crash-recovery tests compare
        this digest to prove the pool itself replays bit-identically.
        """
        hasher = hashlib.sha256(b"chain-pool-v1")
        _encode_canonical(
            {
                "pool": {f"{s}:{n}": entry for (s, n), entry in self.pool.items()},
                "pool_seq": self.pool_seq,
                "mined_nonces": self.mined_nonces,
                "base_fee_wei": self.base_fee_wei,
                "burned": self.burned,
            },
            hasher,
        )
        return hasher.hexdigest()


class MemoryStateStore(StateStore):
    """The original behaviour: everything in process memory, nothing on disk."""


# --------------------------------------------------------------------------- #
# WAL backend                                                                 #
# --------------------------------------------------------------------------- #


def _contract_state(contract: Any) -> tuple[type, dict]:
    """(class, attribute dict) with the chain back-reference stripped."""
    state = {
        name: attr
        for name, attr in vars(contract).items()
        if name not in _CONTRACT_SKIP_ATTRS
    }
    return type(contract), state


def _restore_contract(cls: type, state: dict, existing: Any = None) -> Any:
    contract = existing if existing is not None else cls.__new__(cls)
    for stale in [k for k in vars(contract) if k not in _CONTRACT_SKIP_ATTRS]:
        delattr(contract, stale)
    contract.__dict__.update(state)
    contract.chain = None
    return contract


@dataclass
class _WalRecord:
    """One committed mutation: a self-contained, idempotent state patch."""

    kind: str                     # "account" | "deploy" | "tx" | "block"
    balances: dict[str, int]      # changed balances (absolute values)
    nonces: dict[str, int]
    signer_keys: dict[str, bytes]
    fee_sink: int
    account_seq: int
    schedule_seq: int
    scheduled: list               # full pending schedule (small)
    events_tail: list             # events appended in this scope
    contracts: dict[str, tuple[type, dict]] = field(default_factory=dict)
    payload: dict = field(default_factory=dict)
    tx_seq: int = 0
    # Fee-market / mempool patch (all deltas vs. the pre-scope state).
    base_fee_wei: int = 0
    burned: int = 0
    pool_seq: int = 0
    mined_nonces: dict = field(default_factory=dict)
    pool_add: dict = field(default_factory=dict)    # key -> PendingEntry
    pool_remove: list = field(default_factory=list)  # keys dropped


class WalStateStore(StateStore):
    """Append-only write-ahead log + snapshots under one directory.

    Layout::

        <dir>/snapshot.pkl   full-state snapshot (optional)
        <dir>/wal.log        length-prefixed pickled _WalRecord frames

    ``WalStateStore(path)`` recovers whatever the directory holds: the
    snapshot (if any) is loaded, then every complete WAL frame is applied
    in order.  A torn final frame (crash mid-append) is ignored, exactly
    like a database would.  ``snapshot()`` folds the log into a fresh
    snapshot and truncates it.
    """

    _FRAME_HEADER = struct.Struct(">I")
    _SNAPSHOT_NAME = "snapshot.pkl"
    _WAL_NAME = "wal.log"

    def __init__(self, directory: str | os.PathLike, fsync: bool = False):
        super().__init__()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._pre: dict[str, Any] = {}
        self.replayed_records = 0
        self._valid_wal_bytes = 0
        self._recover()
        wal_path = self.directory / self._WAL_NAME
        if wal_path.exists() and wal_path.stat().st_size > self._valid_wal_bytes:
            # Drop a torn tail frame (crash mid-append) before appending:
            # otherwise new records would land *behind* the garbage and be
            # unreachable to every future recovery.
            with open(wal_path, "r+b") as handle:
                handle.truncate(self._valid_wal_bytes)
        self._wal = open(wal_path, "ab")

    # -- commit hooks ---------------------------------------------------------

    def _begin_hook(self) -> None:
        self._pre = {
            "balances": dict(self.balances),
            "nonces": dict(self.nonces),
            "signer_keys": dict(self.signer_keys),
            "events_len": len(self.events),
            "mined_nonces": dict(self.mined_nonces),
            "pool": dict(self.pool),
        }

    def _commit_hook(self, kind: str, payload: dict, touched: frozenset) -> None:
        pre = self._pre
        record = _WalRecord(
            kind=kind,
            balances={
                addr: wei
                for addr, wei in self.balances.items()
                if pre["balances"].get(addr) != wei
            },
            nonces={
                addr: nonce
                for addr, nonce in self.nonces.items()
                if pre["nonces"].get(addr) != nonce
            },
            signer_keys={
                addr: key
                for addr, key in self.signer_keys.items()
                if pre["signer_keys"].get(addr) != key
            },
            fee_sink=self.fee_sink,
            account_seq=self.account_seq,
            schedule_seq=self.schedule_seq,
            tx_seq=self.tx_seq,
            base_fee_wei=self.base_fee_wei,
            burned=self.burned,
            pool_seq=self.pool_seq,
            mined_nonces={
                addr: nonce
                for addr, nonce in self.mined_nonces.items()
                if pre["mined_nonces"].get(addr) != nonce
            },
            # PendingEntry objects are frozen, so identity comparison is
            # an exact change detector (covers replace-by-fee rewrites).
            pool_add={
                key: entry
                for key, entry in self.pool.items()
                if pre["pool"].get(key) is not entry
            },
            pool_remove=[key for key in pre["pool"] if key not in self.pool],
            scheduled=list(self.scheduled),
            events_tail=list(self.events[pre["events_len"] :]),
            contracts={
                address: _contract_state(self.contracts[address])
                for address in sorted(touched)
                if address in self.contracts
            },
            payload=payload,
        )
        frame = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        self._wal.write(self._FRAME_HEADER.pack(len(frame)) + frame)
        self._wal.flush()
        if self.fsync:
            os.fsync(self._wal.fileno())

    # -- recovery -------------------------------------------------------------

    def _recover(self) -> None:
        snapshot_path = self.directory / self._SNAPSHOT_NAME
        if snapshot_path.exists():
            with open(snapshot_path, "rb") as handle:
                state = pickle.load(handle)
            for name, value in state["scalars"].items():
                setattr(self, name, value)
            self.contracts = {
                address: _restore_contract(cls, attrs)
                for address, (cls, attrs) in state["contracts"].items()
            }
        for record in self._read_wal():
            self._apply(record)
            self.replayed_records += 1

    def _read_wal(self) -> Iterator[_WalRecord]:
        wal_path = self.directory / self._WAL_NAME
        if not wal_path.exists():
            return
        data = wal_path.read_bytes()
        stream = io.BytesIO(data)
        while True:
            header = stream.read(self._FRAME_HEADER.size)
            if len(header) < self._FRAME_HEADER.size:
                return  # clean end (or torn length prefix)
            (length,) = self._FRAME_HEADER.unpack(header)
            frame = stream.read(length)
            if len(frame) < length:
                return  # torn frame: the crash interrupted this append
            record = pickle.loads(frame)
            self._valid_wal_bytes = stream.tell()
            yield record

    def _apply(self, record: _WalRecord) -> None:
        self.balances.update(record.balances)
        self.nonces.update(record.nonces)
        self.signer_keys.update(record.signer_keys)
        self.fee_sink = record.fee_sink
        self.account_seq = record.account_seq
        self.schedule_seq = record.schedule_seq
        self.tx_seq = record.tx_seq
        # Fee-market fields arrived after the WAL format shipped; frames
        # pickled by older code lack them entirely (dataclass defaults are
        # not stored in the instance), so read via the pickled __dict__
        # and leave the current value untouched when a frame predates the
        # field — an old frame cannot have changed what it never knew.
        patch = vars(record)
        self.base_fee_wei = patch.get("base_fee_wei", self.base_fee_wei)
        self.burned = patch.get("burned", self.burned)
        self.pool_seq = patch.get("pool_seq", self.pool_seq)
        self.mined_nonces.update(patch.get("mined_nonces", {}))
        for key in patch.get("pool_remove", ()):
            self.pool.pop(key, None)
        self.pool.update(patch.get("pool_add", {}))
        self.scheduled = list(record.scheduled)
        self.events.extend(record.events_tail)
        for address, (cls, attrs) in record.contracts.items():
            self.contracts[address] = _restore_contract(
                cls, attrs, existing=self.contracts.get(address)
            )
        payload = record.payload
        if record.kind == "tx":
            pending = self.blocks[-1]
            pending.receipts.append(payload["receipt"])
            pending.gas_used = payload["pending_gas"]
            pending.byte_size = payload["pending_bytes"]
        elif record.kind == "block":
            sealed = self.blocks[-1]
            sealed.timestamp = payload["sealed_timestamp"]
            sealed.byte_size = payload["sealed_bytes"]
            sealed.base_fee_wei = payload.get("sealed_base_fee", 0)
            self.time = payload["time"]
            self.blocks.append(payload["new_block"])
        elif record.kind == "genesis":
            self.blocks = [payload["block"]]

    # -- snapshot / lifecycle --------------------------------------------------

    def snapshot(self) -> None:
        """Fold the log into a fresh snapshot and truncate the WAL."""
        scalars = {
            name: getattr(self, name)
            for name in (
                "time",
                "blocks",
                "balances",
                "scheduled",
                "schedule_seq",
                "events",
                "fee_sink",
                "account_seq",
                "tx_seq",
                "signer_keys",
                "nonces",
                "base_fee_wei",
                "burned",
                "pool",
                "pool_seq",
                "mined_nonces",
            )
        }
        state = {
            "scalars": scalars,
            "contracts": {
                address: _contract_state(contract)
                for address, contract in self.contracts.items()
            },
        }
        tmp_path = self.directory / (self._SNAPSHOT_NAME + ".tmp")
        with open(tmp_path, "wb") as handle:
            pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        tmp_path.replace(self.directory / self._SNAPSHOT_NAME)
        self._wal.close()
        self._wal = open(self.directory / self._WAL_NAME, "wb")

    def close(self) -> None:
        if not self._wal.closed:
            self._wal.close()

    # -- log introspection (lifecycle checkpointing) -------------------------

    @property
    def wal_path(self) -> Path:
        return self.directory / self._WAL_NAME

    def wal_size(self) -> int:
        """Durable size of the log: a safe cut point for this store.

        The lifecycle engine records this at each epoch boundary; on a
        crash-reopen it truncates the log back to the recorded size, which
        rewinds the chain exactly to that boundary (every commit is one
        whole frame, so a recorded size always falls on a frame boundary).
        The log is fsynced first — a recorded cut point must never exceed
        what actually survives an OS crash, or the truncate-and-replay
        recovery would come up short and refuse to resume.
        """
        if not self._wal.closed:
            self._wal.flush()
            os.fsync(self._wal.fileno())
        return self.wal_path.stat().st_size if self.wal_path.exists() else 0

    @staticmethod
    def truncate_wal(directory: str | os.PathLike, size: int) -> None:
        """Cut a (closed) store's log back to ``size`` bytes before reopening."""
        path = Path(directory) / WalStateStore._WAL_NAME
        if path.exists() and path.stat().st_size > size:
            with open(path, "r+b") as handle:
                handle.truncate(size)
