"""EIP-1559-style fee market for the simulated chain.

The protocol the pool implements is the one Ethereum shipped in London:

* every block carries a **base fee** (wei per gas) that every included
  transaction must pay; the base fee is burned (removed from supply) by
  default, or redirected to the fee sink when ``burn_base_fee`` is off,
* after each block the base fee moves toward a **gas target** (a fraction
  of the block gas limit, default half): a full block raises it by up to
  1/``max_change_denominator`` (12.5%), an empty block lowers it by the
  same factor, never below the floor,
* senders bid a **fee cap** (``max_fee``) and a **tip cap**
  (``priority_fee``); the miner receives
  ``min(tip_cap, max_fee - base_fee)`` per gas — the *effective tip* the
  pool orders on — and the sender is never charged above the cap.

All arithmetic is integer wei-per-gas, matching the spec's divisions, so
the base-fee trajectory is bit-reproducible across runs and replays.
"""

from __future__ import annotations

from dataclasses import dataclass

WEI_PER_GWEI = 10**9


def gwei_to_wei(gwei: float) -> int:
    return int(gwei * WEI_PER_GWEI)


@dataclass(frozen=True)
class FeeMarketConfig:
    """Parameters of the per-block base-fee controller."""

    initial_base_fee_gwei: float = 1.0
    base_fee_floor_gwei: float = 1.0
    #: target gas per block as a fraction of the block gas limit; the
    #: spec's elasticity multiplier of 2 corresponds to 0.5.
    gas_target_fraction: float = 0.5
    #: bounds the per-block move to 1/denominator (8 -> +/-12.5%).
    max_change_denominator: int = 8
    #: burn the base fee (EIP-1559) or redirect it to the fee sink.
    burn_base_fee: bool = True

    @property
    def initial_base_fee_wei(self) -> int:
        return gwei_to_wei(self.initial_base_fee_gwei)

    @property
    def base_fee_floor_wei(self) -> int:
        return gwei_to_wei(self.base_fee_floor_gwei)

    def gas_target(self, block_gas_limit: int) -> int:
        return max(1, int(block_gas_limit * self.gas_target_fraction))

    def next_base_fee(self, base_fee_wei: int, gas_used: int, block_gas_limit: int) -> int:
        """The base fee of the next block given this block's gas usage."""
        return update_base_fee(
            base_fee_wei,
            gas_used,
            self.gas_target(block_gas_limit),
            self.max_change_denominator,
            self.base_fee_floor_wei,
        )


def update_base_fee(
    base_fee_wei: int,
    gas_used: int,
    gas_target: int,
    max_change_denominator: int,
    floor_wei: int,
) -> int:
    """One step of the EIP-1559 integer update rule (clamped at the floor)."""
    if gas_used == gas_target:
        return max(floor_wei, base_fee_wei)
    if gas_used > gas_target:
        delta = max(
            1,
            base_fee_wei * (gas_used - gas_target) // gas_target // max_change_denominator,
        )
        return max(floor_wei, base_fee_wei + delta)
    delta = base_fee_wei * (gas_target - gas_used) // gas_target // max_change_denominator
    return max(floor_wei, base_fee_wei - delta)


def effective_tip_wei(max_fee_wei: int, tip_cap_wei: int, base_fee_wei: int) -> int:
    """Per-gas amount the miner earns from this transaction (may be 0)."""
    return max(0, min(tip_cap_wei, max_fee_wei - base_fee_wei))


def suggest_fees(base_fee_wei: int, tip_gwei: float = 1.0) -> tuple[int, int]:
    """The default wallet tip policy: (max_fee_wei, tip_cap_wei).

    Cap at twice the current base fee plus the tip — enough headroom to
    survive several consecutive full blocks (each raises the base fee by
    at most 12.5%) without the transaction becoming inadmissible.
    """
    tip_wei = gwei_to_wei(tip_gwei)
    return 2 * base_fee_wei + tip_wei, tip_wei
