"""Synthetic congestion traffic: a gas sink plus storm/griefing generators.

Benchmarks, scenario tests and ``repro congest`` all need the *shape* of
audit-settlement traffic (many ~589k-gas verification transactions from
many senders) without paying for real pairing cryptography per
transaction.  :class:`GasSinkContract` burns a caller-chosen amount of
gas — the knob that turns one cheap Python call into a block-space
citizen the fee market must price — and :class:`StormTraffic` emits
deterministic submission schedules against it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..blockchain import Contract
from ..gas import PAPER_AUDIT_GAS
from ..transaction import Transaction


class GasSinkContract(Contract):
    """Burns exactly the gas its caller names (a stand-in verifier)."""

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0

    def consume(self, ctx, gas_cost: int, tag: str = "") -> int:
        ctx.gas.consume(int(gas_cost))
        self.calls += 1
        return self.calls


@dataclass
class StormTraffic:
    """Deterministic generator of audit-shaped congestion transactions.

    ``offered_load`` is expressed relative to the fee market's gas target
    (1.0 = exactly the target per block; 2.0 = twice it), the regime the
    acceptance bench sweeps.  Senders are assigned round-robin, so load
    spreads evenly across the fleet; once the per-block count exceeds the
    sender set, senders queue several nonce-sequenced transactions per
    block — providers with more than one proof due in the epoch.
    """

    sink_address: str
    senders: list[str]
    gas_per_tx: int = PAPER_AUDIT_GAS
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(f"storm:{self.seed}")

    def txs_for_block(
        self,
        gas_budget: int,
        *,
        max_fee_gwei: float,
        priority_fee_gwei: float,
        jitter_gwei: float = 0.0,
    ) -> list[Transaction]:
        """Transactions whose gas reservations sum to ``gas_budget``."""
        count = max(0, int(gas_budget // self.gas_per_tx))
        txs = []
        for index in range(count):
            sender = self.senders[index % len(self.senders)]
            tip = priority_fee_gwei
            if jitter_gwei:
                tip += self._rng.random() * jitter_gwei
            txs.append(
                Transaction(
                    sender=sender,
                    to=self.sink_address,
                    method="consume",
                    args=(self.gas_per_tx - 25_000, f"storm-{index}"),
                    gas_limit=self.gas_per_tx,
                    max_fee_gwei=max_fee_gwei,
                    priority_fee_gwei=tip,
                )
            )
        return txs
