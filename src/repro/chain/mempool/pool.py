"""The pending-transaction pool: admission, ordering, eviction, drain.

This is the layer the paper's evaluation abstracts away: between a client
signing a transaction and a block including it sits a priority queue with
bounded capacity.  Under audit storms (every provider posting proofs at an
epoch boundary) that queue — not the verifier — decides which audits
settle inside their windows, so the pool is modelled with the same rules
real Ethereum clients enforce:

* **ordering** — a max-heap on the effective tip
  (``min(tip_cap, max_fee - base_fee)``), FIFO (submission sequence)
  within equal price; within one sender strictly by nonce,
* **nonce sequencing** — per-sender nonces are gapless: a sender's
  pending nonces are exactly ``[mined, mined + pending_count)``; evicting
  a transaction evicts the sender's whole nonce tail above it,
* **replace-by-fee** — resubmitting an occupied nonce must bump both the
  tip cap and the fee cap by ``rbf_bump_percent``,
* **watermark backpressure** — at the high watermark the pool evicts the
  cheapest tails down to the low watermark; an arrival priced at or below
  every resident transaction is rejected with :class:`PoolFull`.  The
  submitting sender's own entries are never selected as victims: the
  arrival's nonce extends that sender's pending run, and evicting the
  run's tail would re-open a gap under the nonce just assigned, stranding
  the new entry (it could never drain or expire),
* **fee escrow** — admission debits ``max_fee * gas_limit`` from the
  sender into the ``0xmempool`` escrow account and refunds it on drain,
  eviction or expiry, so pending transactions cannot double-spend their
  fee budget and conservation (`Blockchain.total_supply`) holds at every
  instant.

All pool state (entries, sequence counters, mined nonces, the base fee,
the burn total) lives on the chain's :class:`~repro.chain.state.StateStore`,
so a :class:`~repro.chain.state.WalStateStore` persists the pool and crash
recovery replays it bit-identically (``StateStore.pool_hash``).
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass, field

from ...obs.registry import MetricsRegistry, get_registry
from ..transaction import Receipt, Transaction
from .fee_market import (
    FeeMarketConfig,
    effective_tip_wei,
    gwei_to_wei,
    suggest_fees,
)

#: The escrow account that holds pending transactions' fee budgets.
ESCROW_ACCOUNT = "0xmempool"


# --------------------------------------------------------------------------- #
# Rejection taxonomy (the codes PROTOCOL.md documents)                        #
# --------------------------------------------------------------------------- #


class MempoolRejection(RuntimeError):
    """Base class for every admission failure; ``code`` names the reason."""

    code = "rejected"


class PoolFull(MempoolRejection):
    """The pool is at its high watermark and the arrival prices below it."""

    code = "pool-full"


class Underpriced(MempoolRejection):
    """The fee cap cannot cover the current base fee."""

    code = "underpriced"


class NonceTooLow(MempoolRejection):
    code = "nonce-too-low"


class NonceGap(MempoolRejection):
    code = "nonce-gap"


class NonceOccupied(MempoolRejection):
    """The nonce is already pending; resubmit with ``replace=True``."""

    code = "nonce-occupied"


class ReplacementUnderpriced(MempoolRejection):
    code = "replacement-underpriced"


class SenderLimitExceeded(MempoolRejection):
    code = "sender-limit"


class InsufficientFunds(MempoolRejection):
    """The sender cannot escrow ``max_fee * gas_limit``."""

    code = "insufficient-funds"


# --------------------------------------------------------------------------- #
# Configuration and entries                                                   #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class MempoolConfig:
    """Pool sizing, pricing and hygiene knobs (all per lane)."""

    fee_market: FeeMarketConfig = FeeMarketConfig()
    high_watermark: int = 4096
    low_watermark: int = 3072
    max_per_sender: int = 64
    max_age_seconds: float = 3600.0
    rbf_bump_percent: int = 10

    def __post_init__(self) -> None:
        if not (0 < self.low_watermark <= self.high_watermark):
            raise ValueError("watermarks must satisfy 0 < low <= high")
        if self.max_per_sender < 1:
            raise ValueError("max_per_sender must be >= 1")


@dataclass(frozen=True)
class PendingEntry:
    """One admitted transaction, frozen so WAL diffing can use identity."""

    tx: Transaction
    payload_bytes: int
    max_fee_wei: int
    tip_cap_wei: int
    escrow_wei: int
    seq: int
    submitted_at: float

    def effective_tip(self, base_fee_wei: int) -> int:
        return effective_tip_wei(self.max_fee_wei, self.tip_cap_wei, base_fee_wei)


class Mempool:
    """Behaviour over the store-resident pool of one chain (lane)."""

    def __init__(
        self,
        chain,
        config: MempoolConfig | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.chain = chain
        self.config = config or MempoolConfig()
        store = chain.store
        if ESCROW_ACCOUNT not in store.balances:
            # First attach on this store: create the escrow account and
            # seed the base fee.  On a WAL reopen the account (and the
            # evolved base fee) are already durable, so this is skipped
            # and recovery stays bit-identical.
            store.begin()
            try:
                store.balances[ESCROW_ACCOUNT] = 0
                store.base_fee_wei = self.config.fee_market.initial_base_fee_wei
            finally:
                store.commit("mempool-init")
        # Derived index (rebuilt on reopen) and in-memory telemetry; none
        # of this is persisted state — ``StateStore.pool_hash`` is.
        self._pending_count: dict[str, int] = {}
        for sender, _nonce in store.pool:
            self._pending_count[sender] = self._pending_count.get(sender, 0) + 1
        self.stats = {
            "submitted": 0,
            "drained": 0,
            "replaced": 0,
            "evicted": 0,
            "expired": 0,
        }
        self.rejections: dict[str, int] = {}
        self.priority_inversions = 0
        self.last_drained: dict[tuple[str, int], Receipt] = {}
        self.drained_gas_by_sender: dict[str, int] = {}
        self.eviction_series: list[tuple[float, str, int]] = []
        self.block_tips: dict[int, list[int]] = {}  # block number -> tips (wei/gas)
        self.drained_tips: dict[tuple[str, int], int] = {}  # (sender, nonce) -> tip
        # Process-wide registry mirror (aggregated across lanes; the
        # per-pool dicts above stay the per-lane source of truth).
        registry = registry if registry is not None else get_registry()
        self._m_stats = {
            stat: registry.counter(
                f"mempool_{stat}_total", f"transactions {stat} (all lanes)"
            )
            for stat in self.stats
        }
        self._m_rejections = registry.counter(
            "mempool_rejections_total",
            "admission rejections by taxonomy reason",
            ("reason",),
        )
        self._m_inversions = registry.counter(
            "mempool_priority_inversions_total",
            "lower-tip tx mined before higher-tip",
        )
        self._m_tips = registry.counter(
            "mempool_tips_paid_total", "priority fees paid to miners (wei)"
        )

    # -- views ----------------------------------------------------------------

    @property
    def store(self):
        return self.chain.store

    @property
    def base_fee_wei(self) -> int:
        return self.store.base_fee_wei

    def __len__(self) -> int:
        return len(self.store.pool)

    def pending_count(self, sender: str) -> int:
        return self._pending_count.get(sender, 0)

    def next_nonce(self, sender: str) -> int:
        return self.store.mined_nonces.get(sender, 0) + self.pending_count(sender)

    def pending_entries(self) -> list[PendingEntry]:
        return sorted(self.store.pool.values(), key=lambda entry: entry.seq)

    def tip_floor_wei(self) -> int:
        """The cheapest resident effective tip (admission floor when full)."""
        base = self.store.base_fee_wei
        return min(
            (entry.effective_tip(base) for entry in self.store.pool.values()),
            default=0,
        )

    def telemetry_snapshot(self) -> dict:
        """One read-only view of this pool's cumulative telemetry.

        Every counter here is **cumulative over the pool's lifetime** and is
        never reset by reads (PROTOCOL.md §11): ``stats``, ``rejections``
        and ``priority_inversions`` only ever grow, and ``block_tips`` keys
        every mined block number to the tips (wei/gas) its drained
        transactions paid, in drain order.  Callers get copies, so mutating
        the snapshot never perturbs the live telemetry.
        """
        return {
            "depth": len(self.store.pool),
            "base_fee_wei": self.store.base_fee_wei,
            "stats": dict(self.stats),
            "rejections": dict(self.rejections),
            "priority_inversions": self.priority_inversions,
            "block_tips": {
                number: list(tips) for number, tips in self.block_tips.items()
            },
        }

    def suggest_fees(self, tip_gwei: float = 1.0) -> tuple[float, float]:
        """Default tip policy against the live base fee, in gwei."""
        max_fee_wei, tip_wei = suggest_fees(self.store.base_fee_wei, tip_gwei)
        return max_fee_wei / gwei_to_wei(1.0), tip_wei / gwei_to_wei(1.0)

    def rejection_total(self) -> int:
        return sum(self.rejections.values())

    # -- admission ------------------------------------------------------------

    def _bump(self, stat: str, amount: int = 1) -> None:
        """One telemetry event: per-pool dict plus the registry mirror."""
        self.stats[stat] += amount
        self._m_stats[stat].inc(amount)

    def _reject(self, exc: MempoolRejection):
        self.rejections[exc.code] = self.rejections.get(exc.code, 0) + 1
        self._m_rejections.labels(exc.code).inc()
        raise exc

    def _fees_of(self, tx: Transaction) -> tuple[int, int]:
        max_fee_wei = gwei_to_wei(
            tx.max_fee_gwei if tx.max_fee_gwei is not None else tx.gas_price_gwei
        )
        if tx.priority_fee_gwei is not None:
            tip_cap_wei = min(max_fee_wei, gwei_to_wei(tx.priority_fee_gwei))
        else:
            tip_cap_wei = max_fee_wei
        return max_fee_wei, tip_cap_wei

    def submit(
        self, tx: Transaction, payload_bytes: int = 0, *, replace: bool = False
    ) -> PendingEntry:
        """Admit ``tx`` (or raise a :class:`MempoolRejection`).

        Nonces: with ``replace=True`` the transaction's own nonce names
        the pending slot to replace-by-fee.  Otherwise, on a
        ``require_signatures`` chain the signed nonce is used (and must
        be the sender's next), while unsigned chains auto-assign the next
        nonce — callers never track a counter themselves.
        """
        store = self.store
        sender = tx.sender
        max_fee_wei, tip_cap_wei = self._fees_of(tx)
        if max_fee_wei < store.base_fee_wei:
            self._reject(
                Underpriced(
                    f"max fee {max_fee_wei} wei/gas is below the base fee "
                    f"{store.base_fee_wei} wei/gas"
                )
            )
        mined = store.mined_nonces.get(sender, 0)
        pending = self.pending_count(sender)
        old: PendingEntry | None = None
        if replace:
            nonce = tx.nonce
            if nonce < mined:
                self._reject(NonceTooLow(f"nonce {nonce} already mined (next {mined})"))
            old = store.pool.get((sender, nonce))
            if old is None:
                self._reject(NonceGap(f"nonce {nonce} is not pending for {sender[:10]}"))
            bump = 100 + self.config.rbf_bump_percent
            if (
                tip_cap_wei * 100 < old.tip_cap_wei * bump
                or max_fee_wei * 100 < old.max_fee_wei * bump
            ):
                self._reject(
                    ReplacementUnderpriced(
                        f"replacement must raise tip and fee cap by >= "
                        f"{self.config.rbf_bump_percent}%"
                    )
                )
        else:
            nonce = mined + pending
            if self.chain.require_signatures:
                if tx.nonce < mined:
                    self._reject(
                        NonceTooLow(f"nonce {tx.nonce} already mined (next {mined})")
                    )
                if tx.nonce < nonce:
                    self._reject(
                        NonceOccupied(
                            f"nonce {tx.nonce} is pending; resubmit with replace=True"
                        )
                    )
                if tx.nonce > nonce:
                    self._reject(
                        NonceGap(f"nonce {tx.nonce} leaves a gap (expected {nonce})")
                    )
            if pending >= self.config.max_per_sender:
                self._reject(
                    SenderLimitExceeded(
                        f"{sender[:10]} already has {pending} pending transactions"
                    )
                )
            if len(store.pool) >= self.config.high_watermark:
                base = store.base_fee_wei
                new_tip = effective_tip_wei(max_fee_wei, tip_cap_wei, base)
                if new_tip <= self.tip_floor_wei():
                    self._reject(
                        PoolFull(
                            f"pool at high watermark ({len(store.pool)}) and "
                            f"tip {new_tip} wei/gas does not beat the floor"
                        )
                    )
                if pending >= self.config.high_watermark:
                    # The sender's own pending run fills the pool, and that
                    # run is exempt from victim selection (evicting it would
                    # gap the nonce this arrival extends), so no eviction
                    # can make room.  Only reachable when max_per_sender
                    # exceeds the high watermark.
                    self._reject(
                        PoolFull(
                            f"{sender[:10]}'s own {pending} pending "
                            f"transactions fill the pool and cannot be "
                            f"evicted to admit their successor"
                        )
                    )
        escrow_wei = max_fee_wei * tx.gas_limit
        refund = old.escrow_wei if old is not None else 0
        if self.chain.balance_of(sender) + refund < escrow_wei:
            self._reject(
                InsufficientFunds(
                    f"{sender[:10]} cannot escrow {escrow_wei} wei of fee budget"
                )
            )
        entry = PendingEntry(
            tx=dataclasses.replace(tx, nonce=nonce, tx_id=0),
            payload_bytes=payload_bytes,
            max_fee_wei=max_fee_wei,
            tip_cap_wei=tip_cap_wei,
            escrow_wei=escrow_wei,
            seq=store.pool_seq,
            submitted_at=self.chain.time,
        )
        store.begin()
        try:
            if old is not None:
                self._remove_entry(sender, nonce)
                self._bump("replaced")
            elif len(store.pool) >= self.config.high_watermark:
                # ``nonce`` (= mined + pending) is already fixed, so the
                # submitting sender's tail must survive this eviction —
                # shortening it would strand the new entry at a gapped
                # nonce that neither drain nor expiry could ever reclaim.
                self._evict_down_to(
                    min(self.config.low_watermark, self.config.high_watermark - 1),
                    "evicted",
                    protect=sender,
                )
            store.pool_seq += 1
            store.balances[sender] = store.balances.get(sender, 0) - entry.escrow_wei
            store.balances[ESCROW_ACCOUNT] += entry.escrow_wei
            store.pool[(sender, nonce)] = entry
            self._pending_count[sender] = self.pending_count(sender) + 1
        finally:
            store.commit("pool-submit")
        self._bump("submitted")
        return entry

    # -- eviction -------------------------------------------------------------

    def _remove_entry(self, sender: str, nonce: int) -> None:
        """Drop one entry and refund its escrow (inside an open scope)."""
        store = self.store
        entry = store.pool.pop((sender, nonce))
        store.balances[ESCROW_ACCOUNT] -= entry.escrow_wei
        store.balances[sender] = store.balances.get(sender, 0) + entry.escrow_wei
        remaining = self.pending_count(sender) - 1
        if remaining:
            self._pending_count[sender] = remaining
        else:
            self._pending_count.pop(sender, None)

    def _evict_tail(self, sender: str, from_nonce: int) -> int:
        """Evict ``(sender, from_nonce)`` and every higher pending nonce.

        Whole-tail eviction is what keeps per-sender nonces gapless: a
        hole in the middle of a sender's sequence would strand everything
        behind it forever.
        """
        store = self.store
        top = store.mined_nonces.get(sender, 0) + self.pending_count(sender)
        removed = 0
        for nonce in range(top - 1, from_nonce - 1, -1):
            if (sender, nonce) in store.pool:
                self._remove_entry(sender, nonce)
                removed += 1
        return removed

    def _evict_down_to(self, target: int, stat: str, *, protect: str | None = None) -> int:
        """Evict cheapest tails until ``len(pool) <= target``.

        ``protect`` exempts one sender from victim selection (the
        submitter during watermark backpressure, whose next nonce is
        already committed); if only protected entries remain the loop
        stops short of ``target`` rather than gap that sender's run.
        """
        store = self.store
        base = store.base_fee_wei
        evicted = 0
        while len(store.pool) > target:
            candidates = [key for key in store.pool if key[0] != protect]
            if not candidates:
                break
            victim_key = min(
                candidates,
                key=lambda key: (store.pool[key].effective_tip(base), -store.pool[key].seq),
            )
            evicted += self._evict_tail(*victim_key)
        if evicted:
            self._bump(stat, evicted)
            self.eviction_series.append((self.chain.time, stat, evicted))
        return evicted

    def expire(self) -> int:
        """Drop entries older than ``max_age_seconds`` (and their tails)."""
        store = self.store
        deadline = self.chain.time - self.config.max_age_seconds
        stale: dict[str, int] = {}
        for (sender, nonce), entry in store.pool.items():
            if entry.submitted_at <= deadline:
                stale[sender] = min(stale.get(sender, nonce), nonce)
        if not stale:
            return 0
        expired = 0
        store.begin()
        try:
            for sender in sorted(stale):
                expired += self._evict_tail(sender, stale[sender])
        finally:
            store.commit("pool-expire")
        self._bump("expired", expired)
        self.eviction_series.append((self.chain.time, "expired", expired))
        return expired

    # -- drain (block building) ----------------------------------------------

    def drain_into_block(self) -> list[Receipt]:
        """Move the best-priced transactions into the current pending block.

        Called by ``Blockchain.mine_block`` before sealing.  Selection is
        the Ethereum miner loop: a heap of per-sender *head* transactions
        (lowest pending nonce each) keyed on effective tip then FIFO
        sequence; popping a head promotes that sender's next nonce.
        Packing is priority-ordered FCFS under the remaining block gas:
        the first head whose ``gas_limit`` reservation does not fit ends
        the block — no gap-filling behind it, which is what makes the
        priority-inversion count structurally zero.
        """
        chain = self.chain
        store = self.store
        base = store.base_fee_wei
        pops = 0
        heads: list[tuple[int, int, str]] = []
        push_round: dict[tuple[str, int], int] = {}

        def push_head(sender: str) -> None:
            nonce = store.mined_nonces.get(sender, 0)
            entry = store.pool.get((sender, nonce))
            if entry is None or entry.max_fee_wei < base:
                return  # sender (and its whole nonce chain) waits
            heapq.heappush(heads, (-entry.effective_tip(base), entry.seq, sender))
            push_round[(sender, entry.seq)] = pops

        for sender in sorted({sender for sender, _nonce in store.pool}):
            push_head(sender)
        receipts: list[Receipt] = []
        last_tip: int | None = None
        while heads:
            neg_tip, seq, sender = heapq.heappop(heads)
            nonce = store.mined_nonces.get(sender, 0)
            entry = store.pool.get((sender, nonce))
            if entry is None or entry.seq != seq:
                continue  # stale head (evicted or replaced since push)
            pending_block = chain.blocks[-1]
            if entry.tx.gas_limit > chain.block_gas_limit - pending_block.gas_used:
                break
            tip = -neg_tip
            if last_tip is not None and tip > last_tip and push_round[(sender, seq)] < pops:
                self.priority_inversions += 1
                self._m_inversions.inc()
            last_tip = tip
            pops += 1
            receipts.append(self._execute_entry(entry, sender, nonce, base, tip))
            push_head(sender)
        return receipts

    def _execute_entry(
        self, entry: PendingEntry, sender: str, nonce: int, base: int, tip: int
    ) -> Receipt:
        """Pop + refund escrow + execute as one atomic WAL unit.

        Mirrors the scheduled-call contract: a crash before this record
        commits recovers with the entry still pending, and the next mined
        block re-drains it deterministically.
        """
        chain = self.chain
        store = self.store
        store.begin()
        try:
            self._remove_entry(sender, nonce)
            store.mined_nonces[sender] = nonce + 1
            receipt = chain._execute(
                entry.tx,
                entry.payload_bytes,
                base_fee_wei=base,
                tip_wei=tip,
                burn_base=self.config.fee_market.burn_base_fee,
            )
        except BaseException:
            pending_block = chain.blocks[-1]
            store.commit(
                "tx-abort",
                pending_gas=pending_block.gas_used,
                pending_bytes=pending_block.byte_size,
            )
            raise
        pending_block = chain.blocks[-1]
        store.commit(
            "tx",
            receipt=receipt,
            pending_gas=pending_block.gas_used,
            pending_bytes=pending_block.byte_size,
        )
        self._bump("drained")
        self.last_drained[(sender, nonce)] = receipt
        self.drained_gas_by_sender[sender] = (
            self.drained_gas_by_sender.get(sender, 0) + receipt.gas_used
        )
        self.block_tips.setdefault(receipt.block_number, []).append(tip)
        self.drained_tips[(sender, nonce)] = tip
        if tip:
            self._m_tips.inc(tip * receipt.gas_used)
        return receipt

    def on_block_sealed(self, sealed) -> None:
        """Stamp the sealed block's base fee and roll it for the next block.

        Runs inside ``mine_block``'s block-commit scope so the base-fee
        step is durable in the same WAL record as the seal itself.
        """
        store = self.store
        sealed.base_fee_wei = store.base_fee_wei
        store.base_fee_wei = self.config.fee_market.next_base_fee(
            store.base_fee_wei, sealed.gas_used, self.chain.block_gas_limit
        )

    # -- fingerprint ----------------------------------------------------------

    def pool_fingerprint(self) -> str:
        """Delegates to ``StateStore.pool_hash`` (crash-recovery identity)."""
        return self.store.pool_hash()
