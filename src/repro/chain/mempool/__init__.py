"""Mempool package: fee market, pending pool, and congestion workloads."""

from .fee_market import (
    FeeMarketConfig,
    effective_tip_wei,
    gwei_to_wei,
    suggest_fees,
    update_base_fee,
)
from .pool import (
    ESCROW_ACCOUNT,
    InsufficientFunds,
    Mempool,
    MempoolConfig,
    MempoolRejection,
    NonceGap,
    NonceOccupied,
    NonceTooLow,
    PendingEntry,
    PoolFull,
    ReplacementUnderpriced,
    SenderLimitExceeded,
    Underpriced,
)
from .workload import GasSinkContract, StormTraffic

__all__ = [
    "ESCROW_ACCOUNT",
    "FeeMarketConfig",
    "GasSinkContract",
    "InsufficientFunds",
    "Mempool",
    "MempoolConfig",
    "MempoolRejection",
    "NonceGap",
    "NonceOccupied",
    "NonceTooLow",
    "PendingEntry",
    "PoolFull",
    "ReplacementUnderpriced",
    "SenderLimitExceeded",
    "StormTraffic",
    "Underpriced",
    "effective_tip_wei",
    "gwei_to_wei",
    "suggest_fees",
    "update_base_fee",
]
