"""Blockchain substrate: chain, gas model, audit contract, agents."""

from .agents import (
    run_contracts_to_completion,
    AuditDeployment,
    ProviderAgent,
    deploy_audit_contract,
    run_contract_to_completion,
)
from .blockchain import (
    Block,
    Blockchain,
    CallContext,
    Contract,
    GasMeter,
    WEI_PER_ETH,
    WEI_PER_GWEI,
)
from .contracts.audit_contract import AuditContract, AuditRound, ContractTerms, State
from .contracts.reputation import ReputationRegistry
from .contracts.factory import AuditContractFactory, report_round_outcomes
from .explorer import ChainExplorer, ContractSummary
from .light_client import LightClient, ReplayReport, audit_the_auditor, export_trail
from .gas import (
    AuditPrecompileModel,
    CostModel,
    GasSchedule,
    PAPER_AUDIT_GAS,
    PAPER_ETH_USD,
    PAPER_GAS_PRICE_GWEI,
    PAPER_VERIFY_MS,
    vanilla_evm_verification_gas,
)
from .transaction import Event, OutOfGasError, Receipt, RevertError, Transaction

__all__ = [
    "AuditContract",
    "AuditContractFactory",
    "AuditDeployment",
    "AuditPrecompileModel",
    "AuditRound",
    "Block",
    "Blockchain",
    "CallContext",
    "ChainExplorer",
    "Contract",
    "ContractTerms",
    "CostModel",
    "Event",
    "GasMeter",
    "GasSchedule",
    "LightClient",
    "ReplayReport",
    "OutOfGasError",
    "PAPER_AUDIT_GAS",
    "PAPER_ETH_USD",
    "PAPER_GAS_PRICE_GWEI",
    "PAPER_VERIFY_MS",
    "ProviderAgent",
    "Receipt",
    "ReputationRegistry",
    "ContractSummary",
    "RevertError",
    "State",
    "Transaction",
    "WEI_PER_ETH",
    "WEI_PER_GWEI",
    "audit_the_auditor",
    "deploy_audit_contract",
    "export_trail",
    "run_contract_to_completion",
    "run_contracts_to_completion",
    "report_round_outcomes",
    "vanilla_evm_verification_gas",
]
