"""Gas accounting: EVM schedule + the paper's audit-precompile cost model.

Two models coexist, matching the paper's methodology (Section VII-B):

1. :class:`GasSchedule` — honest per-operation EVM prices (Byzantium and
   Istanbul/EIP-1108 variants) used for ordinary transactions and for the
   *vanilla-EVM ablation*: pricing the audit verification as plain
   precompile calls shows why the authors built a custom opcode-optimised
   precompile (k = 300 ECMULs alone cost more than their whole audit).

2. :class:`AuditPrecompileModel` — the paper's own extrapolation (Fig. 5):
   "we assume the gas cost incurred by the computational overhead
   proportional to the computational time", anchored so that a 288-byte
   private proof verified in 7.2 ms costs the reported 589,000 gas.  The
   model decomposes as  ``intrinsic + calldata + audit-trail storage +
   slope * verify_ms``; the slope is *derived* from the anchor rather than
   hard-coded, and printed by the Fig. 5 bench.

USD conversion uses the paper's April-2020 figures (143 USD/ETH, 5 Gwei).
"""

from __future__ import annotations

from dataclasses import dataclass

# Paper anchor points (Section VII-B).
PAPER_AUDIT_GAS = 589_000
PAPER_VERIFY_MS = 7.2
PAPER_ETH_USD = 143.0
PAPER_GAS_PRICE_GWEI = 5.0

PRIVATE_PROOF_BYTES = 288
PLAIN_PROOF_BYTES = 96
CHALLENGE_BYTES = 48

#: Wire size of one epoch-checkpoint commitment (root + epoch + counts +
#: aggregated-proof digest; see ``repro.rollup.checkpoint``).  Kept as a
#: plain constant here so gas accounting does not import the rollup layer.
CHECKPOINT_COMMITMENT_BYTES = 85

#: Wire size of one cross-shard fabric super-commitment (version + epoch +
#: lane count + fabric root + counts + lanes digest; see
#: ``repro.rollup.fabric`` and docs/PROTOCOL.md section 10).
FABRIC_COMMITMENT_BYTES = 87


@dataclass(frozen=True)
class GasSchedule:
    """Per-operation gas prices for the ordinary EVM accounting."""

    tx_intrinsic: int = 21_000
    calldata_nonzero_byte: int = 16
    calldata_zero_byte: int = 4
    sstore_set: int = 20_000          # fresh 32-byte storage slot
    sload: int = 800
    sha256_base: int = 60
    sha256_per_word: int = 12
    log_base: int = 375
    log_per_byte: int = 8
    # BN254 precompile prices.
    ecadd: int = 150
    ecmul: int = 6_000
    pairing_base: int = 45_000
    pairing_per_pair: int = 34_000

    @staticmethod
    def istanbul() -> "GasSchedule":
        return GasSchedule()

    @staticmethod
    def byzantium() -> "GasSchedule":
        return GasSchedule(
            ecadd=500,
            ecmul=40_000,
            pairing_base=100_000,
            pairing_per_pair=80_000,
        )

    def calldata_gas(self, data: bytes) -> int:
        zeros = data.count(0)
        return (
            zeros * self.calldata_zero_byte
            + (len(data) - zeros) * self.calldata_nonzero_byte
        )

    def storage_gas(self, num_bytes: int) -> int:
        """Cost of persisting ``num_bytes`` into fresh storage slots."""
        slots = (num_bytes + 31) // 32
        return slots * self.sstore_set

    def pairing_gas(self, pairs: int) -> int:
        return self.pairing_base + pairs * self.pairing_per_pair

    def hash_gas(self, num_bytes: int) -> int:
        words = (num_bytes + 31) // 32
        return self.sha256_base + words * self.sha256_per_word


@dataclass(frozen=True)
class AuditPrecompileModel:
    """The paper's Fig. 5 time-extrapolated gas model for audit verification.

    ``gas = intrinsic + calldata(challenge || proof) + storage(trail)
            + slope * verify_ms``

    with ``slope`` calibrated so the private-proof anchor reproduces the
    paper's 589k figure exactly.
    """

    schedule: GasSchedule

    @property
    def compute_slope_gas_per_ms(self) -> float:
        anchor_fixed = self._fixed_gas(PRIVATE_PROOF_BYTES)
        return (PAPER_AUDIT_GAS - anchor_fixed) / PAPER_VERIFY_MS

    def _fixed_gas(self, proof_bytes: int) -> int:
        trail_bytes = proof_bytes + CHALLENGE_BYTES
        # Calldata estimated at the worst case (all non-zero bytes):
        # compressed group elements are incompressible-looking.
        calldata = trail_bytes * self.schedule.calldata_nonzero_byte
        storage = self.schedule.storage_gas(trail_bytes)
        return self.schedule.tx_intrinsic + calldata + storage

    def verification_gas(self, proof_bytes: int, verify_ms: float) -> int:
        """Total gas for one audit verification transaction (Fig. 5 y-axis)."""
        if verify_ms < 0:
            raise ValueError("verification time cannot be negative")
        return round(
            self._fixed_gas(proof_bytes)
            + self.compute_slope_gas_per_ms * verify_ms
        )

    def private_audit_gas(self, verify_ms: float = PAPER_VERIFY_MS) -> int:
        return self.verification_gas(PRIVATE_PROOF_BYTES, verify_ms)

    def plain_audit_gas(self, verify_ms: float) -> int:
        return self.verification_gas(PLAIN_PROOF_BYTES, verify_ms)


def vanilla_evm_verification_gas(
    schedule: GasSchedule, k: int, private: bool = True
) -> int:
    """Honest per-opcode cost of Eq. (1)/(2) on an unmodified EVM.

    Operation inventory for the contract verifier:
      * k hash-to-curve digests for chi (~2 SHA-256 calls each, x2 average
        try-and-increment attempts),
      * a k-term MSM for chi  (k ECMUL + k ECADD on chain),
      * 3-4 proof-side ECMULs (sigma^zeta, chi^zeta, psi^zeta, g1^y') and a
        G2 scalar mul priced as ~3 ECMULs (no G2 precompile exists),
      * one 3-pair pairing check,
      * GT operations for R folding (priced as one extra pairing-pair
        equivalent — conservative).

    This is the ablation showing the custom precompile is what makes the
    paper's numbers possible: at k = 300 the MSM alone costs ~1.8M gas.
    """
    hash_gas = k * 2 * 2 * schedule.hash_gas(64)
    msm_gas = k * (schedule.ecmul + schedule.ecadd)
    proof_scaling = 4 * schedule.ecmul + 3 * schedule.ecmul  # incl. G2 mul
    pairing = schedule.pairing_gas(3)
    gt_ops = schedule.pairing_per_pair if private else 0
    trail_bytes = (PRIVATE_PROOF_BYTES if private else PLAIN_PROOF_BYTES) + CHALLENGE_BYTES
    return (
        schedule.tx_intrinsic
        + trail_bytes * schedule.calldata_nonzero_byte
        + schedule.storage_gas(trail_bytes)
        + hash_gas
        + msm_gas
        + proof_scaling
        + pairing
        + gt_ops
    )


def checkpoint_commitment_gas(
    schedule: GasSchedule,
    commitment_bytes: int = CHECKPOINT_COMMITMENT_BYTES,
) -> int:
    """Gas for posting one epoch checkpoint (the rollup's whole epoch cost).

    One transaction regardless of fleet size: intrinsic + calldata +
    storage for the fixed-size commitment.  Worst-case (all-nonzero)
    calldata pricing, matching :class:`AuditPrecompileModel`.
    """
    return (
        schedule.tx_intrinsic
        + commitment_bytes * schedule.calldata_nonzero_byte
        + schedule.storage_gas(commitment_bytes)
    )


@dataclass(frozen=True)
class CheckpointAmortization:
    """Per-round vs. checkpointed cost of auditing ``fleet`` files one epoch.

    The Fig. 5/6 story at fleet scale: the per-round path pays a full
    verification transaction per file (gas) and a challenge + proof trail
    per file (bytes); the checkpointed path pays one commitment
    transaction and 85 trail bytes for the *whole epoch*, so both ratios
    grow linearly with the fleet.
    """

    fleet: int
    per_round_gas: int            # N verification txs (Fig. 5 model)
    checkpoint_gas: int           # 1 commitment tx
    per_round_trail_bytes: int    # N * (challenge + proof)
    checkpoint_trail_bytes: int   # 1 commitment

    @property
    def per_round_gas_per_file(self) -> float:
        return self.per_round_gas / self.fleet

    @property
    def checkpoint_gas_per_file(self) -> float:
        return self.checkpoint_gas / self.fleet

    @property
    def gas_reduction(self) -> float:
        return self.per_round_gas / self.checkpoint_gas

    @property
    def bytes_reduction(self) -> float:
        return self.per_round_trail_bytes / self.checkpoint_trail_bytes


def checkpoint_amortization(
    schedule: GasSchedule,
    fleet: int,
    verify_ms: float = PAPER_VERIFY_MS,
    commitment_bytes: int = CHECKPOINT_COMMITMENT_BYTES,
) -> CheckpointAmortization:
    """Compare one epoch of ``fleet`` audits, per-round vs. checkpointed."""
    if fleet < 1:
        raise ValueError("fleet must be >= 1")
    model = AuditPrecompileModel(schedule)
    return CheckpointAmortization(
        fleet=fleet,
        per_round_gas=fleet
        * model.verification_gas(PRIVATE_PROOF_BYTES, verify_ms),
        checkpoint_gas=checkpoint_commitment_gas(schedule, commitment_bytes),
        per_round_trail_bytes=fleet * (CHALLENGE_BYTES + PRIVATE_PROOF_BYTES),
        checkpoint_trail_bytes=commitment_bytes,
    )


@dataclass(frozen=True)
class CostModel:
    """Gas -> fiat conversion (paper: 143 USD/ETH, 5 Gwei, April 2020)."""

    eth_usd: float = PAPER_ETH_USD
    gas_price_gwei: float = PAPER_GAS_PRICE_GWEI

    def gas_to_eth(self, gas: int) -> float:
        return gas * self.gas_price_gwei * 1e-9

    def gas_to_usd(self, gas: int) -> float:
        return self.gas_to_eth(gas) * self.eth_usd
