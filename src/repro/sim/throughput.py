"""System-wide scalability models (paper Section VII-D, Fig. 10).

Assumptions straight from the paper, all overridable:

* dedicated auditing fork with ~18 KB average blocks (matching Ethereum's
  observed average) and 15 s block time -> ~2 transactions/second,
* one audit round writes a challenge tx + a proof tx (~336 bytes of trail
  plus envelopes),
* a 1,000-user network places ~30 users' data on each provider (their
  Storj/Sia measurement), scaling linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.gas import (
    CHALLENGE_BYTES,
    CHECKPOINT_COMMITMENT_BYTES,
    FABRIC_COMMITMENT_BYTES,
    PRIVATE_PROOF_BYTES,
)

TX_ENVELOPE_BYTES = 110   # signature, nonce, gas fields, rlp framing
RECEIPT_BYTES = 280       # receipt, event logs, state-trie growth per tx


@dataclass(frozen=True)
class ChainCapacityModel:
    """Block-space accounting for the dedicated auditing chain.

    The per-transaction footprint counts calldata *and* the receipt/log/
    state overhead a full node stores; with the defaults the average
    transaction lands at ~600 bytes, reproducing the paper's "average
    throughput would be 2 transactions per second" under 18 KB blocks.
    """

    avg_block_bytes: int = 18 * 1024
    block_interval_s: float = 15.0
    challenge_bytes: int = CHALLENGE_BYTES
    proof_bytes: int = PRIVATE_PROOF_BYTES

    @property
    def bytes_per_round(self) -> int:
        """Full footprint of one audit round (challenge + proof txs)."""
        return (
            self.challenge_bytes
            + self.proof_bytes
            + 2 * (TX_ENVELOPE_BYTES + RECEIPT_BYTES)
        )

    @property
    def avg_tx_bytes(self) -> float:
        return self.bytes_per_round / 2

    @property
    def tx_per_second(self) -> float:
        """The paper's headline "2 transactions per second"."""
        return self.avg_block_bytes / self.block_interval_s / self.avg_tx_bytes

    def max_concurrent_users(
        self, audits_per_day: float = 1.0, redundancy_providers: int = 10
    ) -> int:
        """Users the chain sustains (cf. "5,000 active users with ease")."""
        tx_per_user_per_day = 2 * audits_per_day * redundancy_providers
        tx_per_day = self.tx_per_second * 86_400
        return int(tx_per_day / tx_per_user_per_day)

    def annual_chain_growth_bytes(
        self, users: int, audits_per_day: float = 1.0
    ) -> int:
        """Fig. 10 (left): audit-trail bytes appended per year.

        Counts raw trail bytes per round (challenge + proof), matching the
        paper's accounting (~110 KB per user-year at daily audits).
        """
        per_user_year = (
            (self.challenge_bytes + self.proof_bytes) * audits_per_day * 365
        )
        return int(users * per_user_year)


@dataclass(frozen=True)
class CheckpointedChainCapacityModel(ChainCapacityModel):
    """Block-space accounting with the epoch rollup switched on.

    In checkpoint mode nothing is posted per round: challenges derive from
    the beacon, proofs stay with the aggregator behind the committed
    verdict tree, and the chain sees **one commitment transaction per
    provider per epoch** covering ``rounds_per_checkpoint`` audits.  The
    per-round footprint is therefore the commitment amortized over its
    batch, and ``max_concurrent_users`` scales *linearly* with the batch
    size — the lever that takes the paper's "5,000 active users" to
    fleet scale.
    """

    rounds_per_checkpoint: int = 256
    commitment_bytes: int = CHECKPOINT_COMMITMENT_BYTES

    def __post_init__(self) -> None:
        if self.rounds_per_checkpoint < 1:
            raise ValueError("rounds_per_checkpoint must be >= 1")

    @property
    def bytes_per_checkpoint_tx(self) -> int:
        """Full footprint of one commitment transaction."""
        return self.commitment_bytes + TX_ENVELOPE_BYTES + RECEIPT_BYTES

    @property
    def bytes_per_round(self) -> int:
        """Amortized footprint of one audit round (ceil over the batch)."""
        return -(-self.bytes_per_checkpoint_tx // self.rounds_per_checkpoint)

    @property
    def avg_tx_bytes(self) -> float:
        return float(self.bytes_per_checkpoint_tx)

    @property
    def tx_per_second(self) -> float:
        return self.avg_block_bytes / self.block_interval_s / self.avg_tx_bytes

    def max_concurrent_users(
        self, audits_per_day: float = 1.0, redundancy_providers: int = 10
    ) -> int:
        """Users the chain sustains when rounds settle through checkpoints."""
        tx_per_user_per_day = (
            audits_per_day * redundancy_providers / self.rounds_per_checkpoint
        )
        tx_per_day = self.tx_per_second * 86_400
        return int(tx_per_day / tx_per_user_per_day)

    def annual_chain_growth_bytes(
        self, users: int, audits_per_day: float = 1.0
    ) -> int:
        """Audit-trail bytes per year: commitments only, amortized."""
        per_user_year = (
            self.commitment_bytes
            / self.rounds_per_checkpoint
            * audits_per_day
            * 365
        )
        return int(users * per_user_year)


@dataclass(frozen=True)
class ShardedChainCapacityModel(CheckpointedChainCapacityModel):
    """Block-space accounting for the sharded chain fabric.

    ``lanes`` independent block producers run on a lockstep clock
    (:class:`~repro.chain.fabric.ShardedChainFabric`), each settling its
    deterministic slice of the fleet: per-lane block space is unchanged,
    so sustained transaction throughput and the user ceiling scale
    *linearly with the lane count* — the horizontal axis the single-chain
    models cannot offer.  ``rounds_per_checkpoint`` keeps its
    checkpointed meaning per lane (audits behind one lane commitment).

    Chain growth stays amortized per audit exactly as in the checkpointed
    model; sharding adds only the per-epoch fixed costs — one 85-byte
    commitment per *lane* instead of one total, plus the 87-byte
    cross-shard super-commitment binding them
    (:mod:`repro.rollup.fabric`).
    """

    lanes: int = 4
    fabric_commitment_bytes: int = FABRIC_COMMITMENT_BYTES

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")

    def _unsharded(self) -> CheckpointedChainCapacityModel:
        return CheckpointedChainCapacityModel(
            avg_block_bytes=self.avg_block_bytes,
            block_interval_s=self.block_interval_s,
            challenge_bytes=self.challenge_bytes,
            proof_bytes=self.proof_bytes,
            rounds_per_checkpoint=self.rounds_per_checkpoint,
            commitment_bytes=self.commitment_bytes,
        )

    @property
    def tx_per_second(self) -> float:
        """Fabric-wide sustained commitment throughput (sum over lanes)."""
        return self.lanes * self._unsharded().tx_per_second

    def max_concurrent_users(
        self, audits_per_day: float = 1.0, redundancy_providers: int = 10
    ) -> int:
        """Users the fabric sustains: lanes x the per-lane ceiling."""
        return self.lanes * self._unsharded().max_concurrent_users(
            audits_per_day, redundancy_providers
        )

    def annual_chain_growth_bytes(
        self, users: int, audits_per_day: float = 1.0
    ) -> int:
        """Amortized trail growth plus the fabric's fixed per-epoch bytes."""
        amortized = self._unsharded().annual_chain_growth_bytes(
            users, audits_per_day
        )
        epochs_per_year = audits_per_day * 365
        fabric_overhead = epochs_per_year * (
            (self.lanes - 1) * self.commitment_bytes + self.fabric_commitment_bytes
        )
        return int(amortized + fabric_overhead)


@dataclass(frozen=True)
class LifecycleCapacityModel(ShardedChainCapacityModel):
    """Lifetime projection: durability and chain growth over N years.

    Extends the sharded capacity model with the *lifecycle* quantities the
    long-horizon engine (:mod:`repro.lifecycle`) measures empirically:
    provider churn drives shard loss, audits detect it, erasure-coded
    repair restores redundancy, and every migrated shard pays a one-time
    re-registration on chain.  The closed-form side lets the reproduction
    sanity-check a simulated decade against the Markov durability model
    (:class:`repro.sim.durability.DurabilityModel`) and project cumulative
    on-chain cost without running it.
    """

    epochs_per_year: int = 12
    churn: float = 0.2                  # annual provider turnover
    erasure_n: int = 4
    erasure_k: int = 2
    detection: float = 1.0              # per-epoch audit detection probability
    #: One-time on-chain bytes when a repaired shard re-registers (fresh
    #: public key + instance metadata on its lane's checkpoint contract).
    repair_registration_bytes: int = 300

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.churn < 1.0:
            raise ValueError("churn must be in [0, 1)")
        if not 1 <= self.erasure_k <= self.erasure_n:
            raise ValueError("need 1 <= erasure_k <= erasure_n")
        if self.epochs_per_year < 1:
            raise ValueError("epochs_per_year must be >= 1")

    @property
    def shard_loss_rate_per_epoch(self) -> float:
        """Per-epoch P[one shard's provider departs] from the annual churn."""
        return 1.0 - (1.0 - self.churn) ** (1.0 / self.epochs_per_year)

    def projected_durability(self, years: float) -> float:
        """P[a file survives ``years``] under churn + audit-driven repair."""
        from .durability import DurabilityModel

        model = DurabilityModel(
            n=self.erasure_n,
            k=self.erasure_k,
            shard_loss_rate=self.shard_loss_rate_per_epoch,
            detection=self.detection,
        )
        return model.survival_probability(int(years * self.epochs_per_year))

    def expected_repairs_per_year(self, files: int) -> float:
        """Expected shard migrations per year across ``files`` archives."""
        return (
            files
            * self.erasure_n
            * self.shard_loss_rate_per_epoch
            * self.epochs_per_year
        )

    def settlement_bytes_per_year(self) -> int:
        """Fixed per-epoch commitment footprint: lanes + super-commitment."""
        per_epoch = (
            self.lanes * self.commitment_bytes + self.fabric_commitment_bytes
        )
        return per_epoch * self.epochs_per_year

    def repair_bytes_per_year(self, files: int) -> int:
        """Re-registration bytes caused by churn-driven shard migration."""
        return int(
            self.expected_repairs_per_year(files)
            * self.repair_registration_bytes
        )

    def cumulative_chain_bytes(self, years: float, files: int) -> int:
        """Total settlement + repair bytes over the deployment lifetime.

        Decomposes exactly as ``years * (settlement + repair)`` — asserted
        by the sim tests so the lifecycle CLI's projection stays honest.
        """
        per_year = self.settlement_bytes_per_year() + self.repair_bytes_per_year(
            files
        )
        return int(years * per_year)


@dataclass(frozen=True)
class CongestionPricingModel:
    """Closed-form EIP-1559 lane dynamics under sustained audit load.

    The chain-side counterpart of :mod:`repro.chain.mempool`: given an
    offered load (gas per block across the fleet) and a lane count, this
    answers the planning questions the empirical congestion bench
    measures — how fast the base fee escalates during an epoch-boundary
    storm, how long it takes to decay back to the floor afterwards, and
    how deep the backlog grows while demand exceeds capacity.  Spreading
    the same demand over more lanes divides the per-lane offered gas,
    which is exactly why the fabric's congestion premium falls with lane
    count (``ShardedChainFabric.lane_base_fees``).
    """

    block_gas_limit: int = 10_000_000
    block_interval_s: float = 15.0
    gas_target_fraction: float = 0.5
    max_change_denominator: int = 8
    base_fee_floor_gwei: float = 1.0
    lanes: int = 1

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")
        if not 0.0 < self.gas_target_fraction <= 1.0:
            raise ValueError("gas_target_fraction must be in (0, 1]")

    @classmethod
    def for_market(cls, fee_market, block_gas_limit: int, lanes: int = 1,
                   block_interval_s: float = 15.0) -> "CongestionPricingModel":
        """Mirror a live :class:`~repro.chain.mempool.FeeMarketConfig`."""
        return cls(
            block_gas_limit=block_gas_limit,
            block_interval_s=block_interval_s,
            gas_target_fraction=fee_market.gas_target_fraction,
            max_change_denominator=fee_market.max_change_denominator,
            base_fee_floor_gwei=fee_market.base_fee_floor_gwei,
            lanes=lanes,
        )

    @property
    def gas_target(self) -> int:
        """Per-lane gas target per block (the fee market's set point)."""
        return max(1, int(self.block_gas_limit * self.gas_target_fraction))

    def per_lane_offered(self, total_gas_per_block: float) -> float:
        return total_gas_per_block / self.lanes

    def utilization(self, total_gas_per_block: float) -> float:
        """Included gas over the target (demand beyond the limit is queued)."""
        included = min(self.per_lane_offered(total_gas_per_block), self.block_gas_limit)
        return included / self.gas_target

    def base_fee_growth_per_block(self, total_gas_per_block: float) -> float:
        """Multiplicative base-fee factor while the load is sustained.

        > 1 above the target (up to 1.125 at full blocks), < 1 below it —
        the controller's exponential envelope.
        """
        included = min(self.per_lane_offered(total_gas_per_block), self.block_gas_limit)
        return 1.0 + (included - self.gas_target) / self.gas_target / self.max_change_denominator

    def blocks_to_price_multiplier(
        self, total_gas_per_block: float, multiplier: float
    ) -> float:
        """Blocks of sustained load until the base fee multiplies by ``multiplier``."""
        import math

        growth = self.base_fee_growth_per_block(total_gas_per_block)
        if growth <= 1.0:
            return math.inf if multiplier > 1.0 else 0.0
        return math.log(multiplier) / math.log(growth)

    def decay_blocks_from_multiplier(self, multiplier: float) -> float:
        """Empty blocks needed for the base fee to fall back to the floor."""
        import math

        if multiplier <= 1.0:
            return 0.0
        per_block = 1.0 - 1.0 / self.max_change_denominator
        return math.log(1.0 / multiplier) / math.log(per_block)

    def backlog_gas_after(self, total_gas_per_block: float, blocks: int) -> float:
        """Queued gas per lane after ``blocks`` of sustained offered load."""
        overflow = max(0.0, self.per_lane_offered(total_gas_per_block) - self.block_gas_limit)
        return overflow * blocks

    def inclusion_delay_blocks(self, total_gas_per_block: float, duration_blocks: int) -> float:
        """Mean queueing delay (in blocks) for a storm of finite duration.

        While offered <= capacity the pool drains within the next block
        (delay 1).  Above capacity the backlog grows linearly, so the
        last transaction of an N-block storm waits ``N * (offered/limit - 1)``
        extra blocks and the storm-average is half that.
        """
        per_lane = self.per_lane_offered(total_gas_per_block)
        if per_lane <= self.block_gas_limit:
            return 1.0
        overload = per_lane / self.block_gas_limit - 1.0
        return 1.0 + overload * duration_blocks / 2.0

    def audits_per_second(self, gas_per_audit: int, total_gas_per_block: float) -> float:
        """Settled audit throughput across lanes under the offered load."""
        per_lane = min(self.per_lane_offered(total_gas_per_block), self.block_gas_limit)
        return self.lanes * per_lane / gas_per_audit / self.block_interval_s


@dataclass(frozen=True)
class ProviderLoadModel:
    """Fig. 10 (right): per-provider proving time as the user base grows."""

    per_proof_seconds: float = 0.065  # ~k=300 proof incl. privacy, native est.
    users_per_provider_at_1k: int = 30  # the paper's Storj/Sia measurement

    def users_per_provider(self, total_users: int) -> int:
        """Linear-regression model from the paper's collected data."""
        return max(1, round(self.users_per_provider_at_1k * total_users / 1000))

    def proving_time_for_all(self, users_on_provider: int) -> float:
        """Seconds to answer every stored user's daily challenge."""
        return users_on_provider * self.per_proof_seconds

    def tolerable(self, users_on_provider: int, block_confirmation_s: float = 15.0) -> bool:
        """The paper's yardstick: proving-all time ~ chain latency order.

        "it may cost the storage provider approximately 20 seconds ... Yet
        we argue this amount of time is tolerable, as the latency on the
        asynchronized blockchain costs a similar amount of time."
        """
        return self.proving_time_for_all(users_on_provider) <= 2 * block_confirmation_s


@dataclass(frozen=True)
class ParallelProviderModel(ProviderLoadModel):
    """Provider capacity with the parallel audit engine switched on.

    Extends the paper's per-provider load model with the two engine levers
    measured by ``benchmarks/bench_parallel_engine.py``:

    * ``cores`` — audit instances are independent, so proving fans out
      near-linearly across a process pool,
    * ``precompute_speedup`` — per-proof gain from the shared fixed-base
      tables (powers-of-alpha MSM windows, per-owner GT contexts), i.e.
      throughput with warm caches vs. the seed's per-proof rebuild.
    """

    cores: int = 8
    precompute_speedup: float = 1.5

    def proving_time_for_all(self, users_on_provider: int) -> float:
        """Seconds to answer every stored user's daily challenge."""
        serial = users_on_provider * self.per_proof_seconds / self.precompute_speedup
        return serial / max(1, self.cores)

    def max_users_within(self, budget_seconds: float) -> int:
        """Largest per-provider user count finishing inside the budget
        (e.g. the paper's 2x-block-latency tolerability yardstick)."""
        return int(budget_seconds / self.proving_time_for_all(1))
