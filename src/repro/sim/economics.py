"""Cost models behind the paper's Figs. 4, 5 and 6 and the $-claims.

All constants trace to the paper: 589k gas / private audit (Section VII-B),
143 USD/ETH and 5 Gwei (their April-2020 footnote), $0.01-$0.05 per
randomness draw, Dropbox Business $150/year as the cloud comparator.

Note on the abstract's "0.1$ per audit": at the paper's own footnote prices
589k gas costs $0.42; the $0.10 figure corresponds to a ~1.2 Gwei gas price
(well within 2020's observed range).  ``usd_per_audit`` takes the gas price
as a parameter so both readings are reproducible; EXPERIMENTS.md records
the discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.gas import (
    CHALLENGE_BYTES,
    PAPER_VERIFY_MS,
    PRIVATE_PROOF_BYTES,
    AuditPrecompileModel,
    CostModel,
    GasSchedule,
)
from ..core.keys import PublicKey

DROPBOX_BUSINESS_USD_PER_YEAR = 150.0
RANDOMNESS_COST_USD = {"hydrand": 0.01, "randao": 0.05}


def public_key_bytes(s: int, with_privacy: bool) -> int:
    """The Fig. 4 model, without building a key: 2 G2 + s G1 + name [+ GT]."""
    size = 2 * 64 + s * 32 + 32
    if with_privacy:
        size += 192
    return size


def one_time_storage_cost(
    s: int,
    with_privacy: bool = True,
    schedule: GasSchedule | None = None,
    cost_model: CostModel | None = None,
) -> dict:
    """Fig. 4 plus its dollar translation: one-time pk recording cost."""
    schedule = schedule or GasSchedule.istanbul()
    cost_model = cost_model or CostModel()
    size = public_key_bytes(s, with_privacy)
    gas = schedule.storage_gas(size) + schedule.calldata_gas(b"\x01" * size)
    return {
        "s": s,
        "with_privacy": with_privacy,
        "bytes": size,
        "kb": size / 1024,
        "gas": gas,
        "usd": cost_model.gas_to_usd(gas),
    }


def audit_gas(
    verify_ms: float = PAPER_VERIFY_MS,
    proof_bytes: int = PRIVATE_PROOF_BYTES,
    schedule: GasSchedule | None = None,
) -> int:
    """Per-audit gas under the Fig. 5 extrapolation model."""
    model = AuditPrecompileModel(schedule or GasSchedule.istanbul())
    return model.verification_gas(proof_bytes, verify_ms)


def usd_per_audit(
    verify_ms: float = PAPER_VERIFY_MS,
    proof_bytes: int = PRIVATE_PROOF_BYTES,
    gas_price_gwei: float = 5.0,
    eth_usd: float = 143.0,
    randomness: str = "hydrand",
) -> float:
    """Full per-round cost: verification gas + randomness service."""
    gas = audit_gas(verify_ms, proof_bytes)
    cost_model = CostModel(eth_usd=eth_usd, gas_price_gwei=gas_price_gwei)
    return cost_model.gas_to_usd(gas) + RANDOMNESS_COST_USD[randomness]


@dataclass(frozen=True)
class FeeSchedule:
    """One Fig. 6 data point: contract duration x auditing frequency."""

    duration_days: int
    audits_per_day: float
    usd_per_audit_value: float

    @property
    def num_audits(self) -> int:
        return int(self.duration_days * self.audits_per_day)

    @property
    def total_usd(self) -> float:
        return self.num_audits * self.usd_per_audit_value


def figure6_series(
    durations_days: tuple[int, ...] = (30, 90, 180, 360, 720, 1800),
    gas_price_gwei: float = 5.0,
) -> dict[str, list[FeeSchedule]]:
    """The two Fig. 6 curves: daily vs weekly auditing fees."""
    per_audit = usd_per_audit(gas_price_gwei=gas_price_gwei)
    return {
        "daily": [
            FeeSchedule(duration, 1.0, per_audit) for duration in durations_days
        ],
        "weekly": [
            FeeSchedule(duration, 1.0 / 7.0, per_audit)
            for duration in durations_days
        ],
    }


@dataclass
class AnnualCostReport:
    """Yearly cost of decentralized archive storage vs the cloud comparator."""

    audits_per_day: float = 1.0
    redundancy_providers: int = 1
    gas_price_gwei: float = 5.0
    batch_redundant_audits: bool = False
    pk_setup_usd: float = field(init=False, default=0.0)

    def compute(self, s: int = 50) -> dict:
        per_audit = usd_per_audit(gas_price_gwei=self.gas_price_gwei)
        providers_billed = (
            1 if self.batch_redundant_audits else self.redundancy_providers
        )
        yearly_audit = per_audit * self.audits_per_day * 365 * providers_billed
        setup = one_time_storage_cost(s)["usd"] * self.redundancy_providers
        return {
            "per_audit_usd": per_audit,
            "yearly_auditing_usd": yearly_audit,
            "one_time_setup_usd": setup,
            "total_first_year_usd": yearly_audit + setup,
            "dropbox_business_usd": DROPBOX_BUSINESS_USD_PER_YEAR,
            "competitive": yearly_audit + setup
            <= 3 * DROPBOX_BUSINESS_USD_PER_YEAR,
        }
