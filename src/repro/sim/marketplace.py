"""A measured marketplace simulation (the empirical side of Fig. 10).

Where :mod:`repro.sim.throughput` extrapolates analytically, this module
*runs* a miniature marketplace — N data owners, M providers, one shared
chain, real cryptography end to end — and reports the measured quantities
(chain growth per audit round, per-provider proving load, gas totals,
pass/fail ledger).  The benchmark feeds the measurements back into the
analytic models to validate the extrapolation the paper (and we) rely on.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..chain import Blockchain, ContractTerms, deploy_audit_contract
from ..chain.agents import AuditDeployment, run_contracts_to_completion
from ..core import DataOwner, ProtocolParams, StorageProvider
from ..randomness.beacon import RandomnessBeacon


@dataclass
class MarketplaceResult:
    """Everything measured during one simulation run."""

    users: int
    providers: int
    rounds_per_user: int
    wall_seconds: float
    chain_bytes: int
    trail_bytes: int
    total_gas: int
    passes: int
    fails: int
    blocks: int
    prove_seconds_by_provider: dict[str, float] = field(default_factory=dict)

    @property
    def bytes_per_round(self) -> float:
        total_rounds = self.passes + self.fails
        return self.trail_bytes / total_rounds if total_rounds else 0.0

    @property
    def gas_per_round(self) -> float:
        total_rounds = self.passes + self.fails
        return self.total_gas / total_rounds if total_rounds else 0.0

    def max_provider_load_seconds(self) -> float:
        if not self.prove_seconds_by_provider:
            return 0.0
        return max(self.prove_seconds_by_provider.values())


class MarketplaceSimulation:
    """N users storing files with M providers under real audit contracts."""

    def __init__(
        self,
        beacon: RandomnessBeacon,
        params: ProtocolParams | None = None,
        users: int = 8,
        providers: int = 3,
        rounds_per_user: int = 2,
        file_bytes: int = 600,
        seed: int = 0,
    ):
        self.beacon = beacon
        self.params = params or ProtocolParams(s=5, k=3)
        self.users = users
        self.providers = providers
        self.rounds_per_user = rounds_per_user
        self.file_bytes = file_bytes
        self.seed = seed

    def run(self) -> MarketplaceResult:
        rng = random.Random(self.seed)
        chain = Blockchain(block_time=15.0)
        terms = ContractTerms(
            num_audits=self.rounds_per_user,
            audit_interval=60.0,
            response_window=20.0,
        )
        provider_roles = [StorageProvider(rng=rng) for _ in range(self.providers)]
        deployments: list[tuple[int, AuditDeployment]] = []
        start = time.perf_counter()
        for user in range(self.users):
            owner = DataOwner(self.params, rng=rng)
            data = bytes(rng.randrange(256) for _ in range(self.file_bytes))
            package = owner.prepare(data)
            provider_index = user % self.providers
            deployment = deploy_audit_contract(
                chain,
                package,
                provider_roles[provider_index],
                terms,
                self.beacon,
                self.params,
            )
            deployments.append((provider_index, deployment))
        contracts = run_contracts_to_completion(
            chain, [d for _, d in deployments]
        )
        wall = time.perf_counter() - start

        prove_seconds: dict[str, float] = {}
        for (provider_index, deployment), contract in zip(deployments, contracts):
            key = f"provider-{provider_index}"
            spent = sum(
                report.total_seconds
                for report in deployment.provider_agent.prove_reports
            )
            prove_seconds[key] = prove_seconds.get(key, 0.0) + spent

        return MarketplaceResult(
            users=self.users,
            providers=self.providers,
            rounds_per_user=self.rounds_per_user,
            wall_seconds=wall,
            chain_bytes=chain.chain_bytes(),
            trail_bytes=sum(c.total_trail_bytes() for c in contracts),
            total_gas=sum(c.total_audit_gas() for c in contracts),
            passes=sum(c.passes for c in contracts),
            fails=sum(c.fails for c in contracts),
            blocks=len(chain.blocks),
            prove_seconds_by_provider=prove_seconds,
        )


def extrapolate_annual_growth(
    result: MarketplaceResult, users: int, audits_per_day: float = 1.0
) -> float:
    """Project the measured per-round trail bytes to a year at scale (GB)."""
    per_user_year = result.bytes_per_round * audits_per_day * 365
    return users * per_user_year / 2**30
