"""End-to-end durability: audits + erasure coding as one survival model.

The audit protocol detects loss; the erasure code survives it until repair.
Neither alone keeps a file alive — this module quantifies the combination,
answering the question a DSN depositor actually has: *what is the
probability my archive survives the year?*

Model (discrete periods = audit intervals), per shard:

* a healthy shard is silently lost during a period with probability
  ``shard_loss_rate``,
* a lost shard's next audit detects it with probability ``detection``
  (from :func:`repro.core.confidence.detection_probability` — corruption
  inside a surviving provider; a vanished provider is detected with
  certainty by the timeout path, so ``detection=1.0`` models whole-shard
  loss),
* detected losses are repaired at the end of the period (one-period
  repair latency) as long as at least ``k`` shards remain,
* the file **dies** when fewer than ``k`` shards are healthy at any time.

State = number of healthy shards; transitions are binomial losses followed
by full repair; computed exactly with a small Markov chain in numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DurabilityModel:
    n: int                      # total shards
    k: int                      # shards needed to reconstruct
    shard_loss_rate: float      # per-period silent-loss probability
    detection: float = 1.0      # per-audit detection probability

    def __post_init__(self) -> None:
        if not 1 <= self.k <= self.n:
            raise ValueError("need 1 <= k <= n")
        if not 0 <= self.shard_loss_rate <= 1:
            raise ValueError("shard_loss_rate must be a probability")
        if not 0 <= self.detection <= 1:
            raise ValueError("detection must be a probability")

    # -- transition machinery ------------------------------------------------

    def _transition_matrix(self) -> np.ndarray:
        """States 0..n healthy shards, plus an absorbing DEAD state.

        One period: binomial loss among healthy shards; if survivors >= k,
        each lost shard is independently detected (prob ``detection``) and
        repaired; undetected losses persist as unhealthy.
        """
        size = self.n + 2  # 0..n healthy, index n+1 = DEAD
        dead = size - 1
        matrix = np.zeros((size, size))
        matrix[dead, dead] = 1.0
        for healthy in range(0, self.n + 1):
            if healthy < self.k:
                matrix[healthy, dead] = 1.0
                continue
            for losses in range(0, healthy + 1):
                p_loss = (
                    math.comb(healthy, losses)
                    * self.shard_loss_rate**losses
                    * (1 - self.shard_loss_rate) ** (healthy - losses)
                )
                survivors = healthy - losses
                if survivors < self.k:
                    matrix[healthy, dead] += p_loss
                    continue
                # Previously-unhealthy shards plus fresh losses are all
                # repair candidates; each is detected independently.
                missing = self.n - survivors
                for detected in range(0, missing + 1):
                    p_detect = (
                        math.comb(missing, detected)
                        * self.detection**detected
                        * (1 - self.detection) ** (missing - detected)
                    )
                    matrix[healthy, survivors + detected] += p_loss * p_detect
        return matrix

    # -- survival queries -------------------------------------------------------

    def survival_probability(self, periods: int) -> float:
        """P[file still reconstructible after ``periods`` audit intervals]."""
        if periods < 0:
            raise ValueError("periods must be non-negative")
        matrix = self._transition_matrix()
        state = np.zeros(self.n + 2)
        state[self.n] = 1.0  # start fully healthy
        stepped = state @ np.linalg.matrix_power(matrix, periods)
        return float(1.0 - stepped[-1])

    def annual_durability(self, audits_per_day: float = 1.0) -> float:
        return self.survival_probability(int(round(365 * audits_per_day)))

    def nines(self, periods: int) -> float:
        """Durability expressed in nines: -log10(1 - survival)."""
        survival = self.survival_probability(periods)
        if survival >= 1.0:
            return math.inf
        return -math.log10(1.0 - survival)


def compare_redundancy_levels(
    shard_loss_rate: float,
    periods: int,
    levels: tuple[tuple[int, int], ...] = ((1, 1), (3, 2), (6, 3), (10, 3)),
    detection: float = 1.0,
) -> dict[str, float]:
    """Survival probabilities across RS configurations (report helper)."""
    return {
        f"RS({n},{k})": DurabilityModel(
            n=n, k=k, shard_loss_rate=shard_loss_rate, detection=detection
        ).survival_probability(periods)
        for n, k in levels
    }
