"""System-wide models: economics (Figs. 4-6), throughput (Fig. 10), workloads."""

from .economics import (
    AnnualCostReport,
    DROPBOX_BUSINESS_USD_PER_YEAR,
    FeeSchedule,
    RANDOMNESS_COST_USD,
    audit_gas,
    figure6_series,
    one_time_storage_cost,
    public_key_bytes,
    usd_per_audit,
)
from .durability import DurabilityModel, compare_redundancy_levels
from .marketplace import MarketplaceResult, MarketplaceSimulation, extrapolate_annual_growth
from .throughput import (
    ChainCapacityModel,
    CheckpointedChainCapacityModel,
    CongestionPricingModel,
    ParallelProviderModel,
    ProviderLoadModel,
    ShardedChainCapacityModel,
    TX_ENVELOPE_BYTES,
)
from .workloads import (
    WorkloadFile,
    archive_file,
    enterprise_backup,
    photo_collection,
    total_bytes,
)

__all__ = [
    "AnnualCostReport",
    "ChainCapacityModel",
    "CheckpointedChainCapacityModel",
    "CongestionPricingModel",
    "DROPBOX_BUSINESS_USD_PER_YEAR",
    "DurabilityModel",
    "FeeSchedule",
    "MarketplaceResult",
    "MarketplaceSimulation",
    "ParallelProviderModel",
    "ProviderLoadModel",
    "RANDOMNESS_COST_USD",
    "ShardedChainCapacityModel",
    "TX_ENVELOPE_BYTES",
    "WorkloadFile",
    "archive_file",
    "audit_gas",
    "compare_redundancy_levels",
    "enterprise_backup",
    "extrapolate_annual_growth",
    "figure6_series",
    "one_time_storage_cost",
    "photo_collection",
    "public_key_bytes",
    "total_bytes",
    "usd_per_audit",
]
