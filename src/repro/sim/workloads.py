"""Workload generators for benchmarks and examples.

The paper motivates the system with personal/enterprise *archive* storage:
"file collection archiving and image backups" (Section I, Remarks).  These
generators produce deterministic synthetic versions of those workloads so
every bench run sees identical inputs.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadFile:
    name: str
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)


def _deterministic_bytes(tag: str, size: int) -> bytes:
    """Pseudo-random but reproducible file contents (hash-chain stream)."""
    out = bytearray()
    seed = hashlib.sha256(tag.encode()).digest()
    counter = 0
    while len(out) < size:
        out += hashlib.sha256(seed + counter.to_bytes(8, "big")).digest()
        counter += 1
    return bytes(out[:size])


def archive_file(size: int, tag: str = "archive") -> WorkloadFile:
    """A single archive blob of exactly ``size`` bytes."""
    return WorkloadFile(name=f"{tag}-{size}", data=_deterministic_bytes(tag, size))


def photo_collection(
    count: int, seed: int = 7, mean_kb: float = 64.0, sigma: float = 0.6
) -> list[WorkloadFile]:
    """A photo backup: log-normally distributed image sizes.

    Real photo libraries are heavy-tailed; log-normal with sigma~0.6 is a
    standard stand-in.  Sizes are clamped to [4 KB, 4 MB].
    """
    rng = random.Random(seed)
    files = []
    for index in range(count):
        size = int(rng.lognormvariate(math.log(mean_kb * 1024), sigma))
        size = max(4 * 1024, min(size, 4 * 1024 * 1024))
        files.append(
            WorkloadFile(
                name=f"IMG_{index:05d}.jpg",
                data=_deterministic_bytes(f"photo-{seed}-{index}", size),
            )
        )
    return files


def adversarial_fleet_mix(
    honest: int = 4,
    cheaters_per_strategy: int = 1,
    strategies: tuple[str, ...] = (
        "forge",
        "replay",
        "selective",
        "bitrot",
        "offline",
    ),
) -> list[tuple[str, int]]:
    """A (strategy kind, count) mix for adversarial scenario runs.

    The default mirrors docs/SCENARIOS.md: a mostly-honest fleet with one
    provider per byzantine strategy.  The pairs are accepted directly by
    :class:`repro.adversary.ScenarioRunner`, which normalizes them into
    :class:`repro.adversary.StrategySpec` objects (with default ``rho``).
    """
    if honest < 0 or cheaters_per_strategy < 0:
        raise ValueError("counts must be non-negative")
    mix: list[tuple[str, int]] = [("honest", honest)] if honest else []
    mix.extend((kind, cheaters_per_strategy) for kind in strategies)
    return [(kind, count) for kind, count in mix if count > 0]


def enterprise_backup(
    num_documents: int, seed: int = 13, mean_kb: float = 256.0
) -> list[WorkloadFile]:
    """Nightly document dump: larger, more uniform files."""
    rng = random.Random(seed)
    files = []
    for index in range(num_documents):
        size = int(mean_kb * 1024 * (0.5 + rng.random()))
        files.append(
            WorkloadFile(
                name=f"doc-{index:04d}.bak",
                data=_deterministic_bytes(f"doc-{seed}-{index}", size),
            )
        )
    return files


def total_bytes(files: list[WorkloadFile]) -> int:
    return sum(f.size for f in files)
