"""Canonical round records: the leaves of the epoch verdict tree.

One :class:`RoundRecord` is the full outcome of one (file, epoch) audit —
which challenge was answered, with which proof bytes, and what the
verifier decided — serialized into a *canonical* byte string so that

* two honest aggregators observing the same epoch commit to the identical
  Merkle root (the tree is built over sorted, versioned encodings), and
* a fraud-proof arbiter can re-derive everything it needs to re-run the
  verdict from the leaf bytes alone (plus the on-chain instance registry
  and the beacon).

The encoding is deliberately self-delimiting and versioned::

    version   (1 byte, 0x01)
    name      (32 bytes, big-endian Zp file identifier)
    epoch     (8 bytes, big-endian)
    verdict   (1 byte: 0x01 accepted, 0x00 rejected)
    code_len  (1 byte) || reject code (utf-8; empty when accepted)
    chal_len  (2 bytes, big-endian) || challenge bytes (48 at lambda=128)
    proof_len (2 bytes, big-endian) || proof bytes (288, or empty when the
              response was withheld)

Nothing here is secret — records contain exactly what the per-round path
would have posted on chain, the rollup just keeps them off chain behind a
32-byte commitment.
"""

from __future__ import annotations

from dataclasses import dataclass

RECORD_VERSION = 0x01

#: Reject code recorded when a provider never answered (mirrors the
#: contract-level timeout code in the per-round path).
WITHHELD_CODE = "no-proof"


@dataclass(frozen=True)
class RoundRecord:
    """One (file, epoch) audit outcome in canonical wire form."""

    name: int
    epoch: int
    challenge_bytes: bytes
    proof_bytes: bytes          # b"" when the response was withheld
    verdict: bool
    reject_code: str = ""       # empty iff verdict is True

    def __post_init__(self) -> None:
        if self.verdict and self.reject_code:
            raise ValueError("accepted records carry no reject code")
        if not self.verdict and not self.reject_code:
            raise ValueError("rejected records must name a reject code")
        if len(self.challenge_bytes) > 0xFFFF or len(self.proof_bytes) > 0xFFFF:
            raise ValueError("challenge/proof too large for the encoding")

    def to_bytes(self) -> bytes:
        code = self.reject_code.encode("utf-8")
        if len(code) > 0xFF:
            raise ValueError("reject code too long")
        return b"".join(
            (
                bytes([RECORD_VERSION]),
                self.name.to_bytes(32, "big"),
                self.epoch.to_bytes(8, "big"),
                bytes([1 if self.verdict else 0]),
                bytes([len(code)]),
                code,
                len(self.challenge_bytes).to_bytes(2, "big"),
                self.challenge_bytes,
                len(self.proof_bytes).to_bytes(2, "big"),
                self.proof_bytes,
            )
        )

    @staticmethod
    def from_bytes(data: bytes) -> "RoundRecord":
        if len(data) < 45:
            raise ValueError("round record too short")
        if data[0] != RECORD_VERSION:
            raise ValueError(f"unknown round-record version {data[0]:#x}")
        offset = 1
        name = int.from_bytes(data[offset : offset + 32], "big")
        offset += 32
        epoch = int.from_bytes(data[offset : offset + 8], "big")
        offset += 8
        verdict_byte = data[offset]
        if verdict_byte not in (0, 1):
            raise ValueError(f"bad verdict byte {verdict_byte:#x}")
        verdict = bool(verdict_byte)
        offset += 1
        code_len = data[offset]
        offset += 1
        code = data[offset : offset + code_len]
        if len(code) != code_len:
            raise ValueError("truncated reject code")
        offset += code_len
        chal_len = int.from_bytes(data[offset : offset + 2], "big")
        offset += 2
        challenge = data[offset : offset + chal_len]
        if len(challenge) != chal_len:
            raise ValueError("truncated challenge bytes")
        offset += chal_len
        proof_len = int.from_bytes(data[offset : offset + 2], "big")
        offset += 2
        proof = data[offset : offset + proof_len]
        if len(proof) != proof_len:
            raise ValueError("truncated proof bytes")
        offset += proof_len
        if offset != len(data):
            raise ValueError("trailing bytes after round record")
        return RoundRecord(
            name=name,
            epoch=epoch,
            challenge_bytes=bytes(challenge),
            proof_bytes=bytes(proof),
            verdict=verdict,
            reject_code=code.decode("utf-8"),
        )

    @property
    def withheld(self) -> bool:
        return not self.proof_bytes

    def flipped(self) -> "RoundRecord":
        """The verdict-forgery an adversarial aggregator would commit.

        Test/demo helper: the same round bytes with the verdict inverted
        (and the reject code adjusted to stay structurally valid) — exactly
        what the fraud proof must catch.
        """
        if self.verdict:
            return RoundRecord(
                name=self.name,
                epoch=self.epoch,
                challenge_bytes=self.challenge_bytes,
                proof_bytes=self.proof_bytes,
                verdict=False,
                reject_code="pairing-mismatch",
            )
        return RoundRecord(
            name=self.name,
            epoch=self.epoch,
            challenge_bytes=self.challenge_bytes,
            proof_bytes=self.proof_bytes,
            verdict=True,
            reject_code="",
        )


def records_from_epoch(result, precompute=None) -> tuple[RoundRecord, ...]:
    """Derive the canonical record set from one engine epoch.

    ``result`` is an :class:`~repro.engine.scheduler.EpochResult` (taken
    duck-typed so this module stays import-free of the engine layer):
    answered files pull their verdicts from the grouped batch check —
    rejected names come from ``pinpoint()``'s per-item re-verification, so
    each carries its structured
    :class:`~repro.core.verifier.RejectionReason` code — and withheld
    files are recorded as ``no-proof`` rejections with empty proof bytes.

    Records are sorted by file name, making the Merkle root a pure
    function of the epoch's outcome set.
    """
    reject_codes: dict[int, str] = {}
    if not result.batch_ok:
        for rejection in result.batch_ok.pinpoint(precompute):
            reason = rejection.reason
            reject_codes[rejection.name] = (
                reason.code if reason is not None else "pairing-mismatch"
            )
    records = []
    for outcome in result.outcomes:
        code = reject_codes.get(outcome.name, "")
        records.append(
            RoundRecord(
                name=outcome.name,
                epoch=result.epoch,
                challenge_bytes=result.challenges[outcome.name].to_bytes(),
                proof_bytes=outcome.proof_bytes,
                verdict=not code,
                reject_code=code,
            )
        )
    for name in result.withheld:
        records.append(
            RoundRecord(
                name=name,
                epoch=result.epoch,
                challenge_bytes=result.challenges[name].to_bytes(),
                proof_bytes=b"",
                verdict=False,
                reject_code=WITHHELD_CODE,
            )
        )
    return tuple(sorted(records, key=lambda record: record.name))
