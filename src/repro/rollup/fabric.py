"""Cross-shard checkpoint aggregation: one super-commitment per fabric epoch.

Closes the rollup loop over the sharded chain fabric
(:class:`~repro.chain.fabric.ShardedChainFabric`).  Each lane settles its
epoch exactly as in the single-chain rollup — an 85-byte
:class:`~repro.rollup.checkpoint.Checkpoint` posted to that lane's bonded
:class:`~repro.chain.contracts.checkpoint_contract.CheckpointContract`,
fraud-proof window and all — and the :class:`CrossShardAggregator`
Merkle-rolls the per-lane commitments into one fixed-size
:class:`FabricCheckpoint`::

    fabric_root = MerkleRoot( lane commitment encodings, ascending lane id )
    lanes_digest = SHA256( commitment_0 || commitment_1 || ... )

A light client holding only the 87-byte fabric commitment verifies any
single round anywhere in the fleet through a two-stage inclusion proof —
leaf → lane root → fabric root (:class:`FabricInclusionProof`, checked by
:meth:`repro.chain.light_client.CheckpointLightClient.verify_fabric_inclusion`).
Fraud-proof soundness is inherited per lane: the fabric commitment binds
exactly the lane commitments that sit on chain under bonds, so a lying
lane is slashed by the ordinary :meth:`challenge_leaf` path and the
fabric commitment for that epoch is void with it (the byte layout and the
proof format are specified in ``docs/PROTOCOL.md`` section 10).
"""

from __future__ import annotations

import hashlib
import random
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from ..crypto.merkle import MerkleProof, MerkleTree, verify_merkle_proof
from .checkpoint import Checkpoint, CheckpointBundle
from .pipeline import CheckpointPipeline, EpochNotSettled, SettledEpoch

FABRIC_CHECKPOINT_VERSION = 0x01

#: Fixed wire size of one fabric super-commitment:
#: version(1) + epoch(8) + num_lanes(2) + fabric_root(32) + accepted(4) +
#: rejected(4) + num_leaves(4) + lanes_digest(32).
FABRIC_COMMITMENT_BYTES = 87


@dataclass(frozen=True)
class FabricCheckpoint:
    """The fixed-size commitment to one epoch across every lane."""

    epoch: int
    num_lanes: int
    fabric_root: bytes
    accepted: int
    rejected: int
    num_leaves: int
    lanes_digest: bytes

    def __post_init__(self) -> None:
        if len(self.fabric_root) != 32 or len(self.lanes_digest) != 32:
            raise ValueError("fabric root and lanes digest must be 32 bytes")
        if self.accepted + self.rejected != self.num_leaves:
            raise ValueError("accepted + rejected must equal num_leaves")
        if not 1 <= self.num_lanes <= 0xFFFF:
            raise ValueError("num_lanes out of range")

    def to_bytes(self) -> bytes:
        return b"".join(
            (
                bytes([FABRIC_CHECKPOINT_VERSION]),
                self.epoch.to_bytes(8, "big"),
                self.num_lanes.to_bytes(2, "big"),
                self.fabric_root,
                self.accepted.to_bytes(4, "big"),
                self.rejected.to_bytes(4, "big"),
                self.num_leaves.to_bytes(4, "big"),
                self.lanes_digest,
            )
        )

    @staticmethod
    def from_bytes(data: bytes) -> "FabricCheckpoint":
        if len(data) != FABRIC_COMMITMENT_BYTES:
            raise ValueError(
                f"fabric commitment must be {FABRIC_COMMITMENT_BYTES} bytes"
            )
        if data[0] != FABRIC_CHECKPOINT_VERSION:
            raise ValueError(f"unknown fabric checkpoint version {data[0]:#x}")
        return FabricCheckpoint(
            epoch=int.from_bytes(data[1:9], "big"),
            num_lanes=int.from_bytes(data[9:11], "big"),
            fabric_root=bytes(data[11:43]),
            accepted=int.from_bytes(data[43:47], "big"),
            rejected=int.from_bytes(data[47:51], "big"),
            num_leaves=int.from_bytes(data[51:55], "big"),
            lanes_digest=bytes(data[55:87]),
        )

    def byte_size(self) -> int:
        return FABRIC_COMMITMENT_BYTES


def lanes_digest(commitments: Sequence[Checkpoint]) -> bytes:
    """SHA256 binding the ordered lane commitment set."""
    hasher = hashlib.sha256(b"fabric-lanes-v1")
    for commitment in commitments:
        hasher.update(commitment.to_bytes())
    return hasher.digest()


@dataclass(frozen=True)
class FabricInclusionProof:
    """Two-stage opening of one round record against a fabric commitment.

    ``lane_proof`` opens the lane's 85-byte commitment encoding into the
    fabric root (leaf index = the lane's position in the participating
    lane list); ``leaf_proof`` opens the round record into that lane
    commitment's verdict-tree root.  ``lane_id`` is the fabric lane that
    settled the round — the lane whose on-chain bonded checkpoint a
    challenger would escalate to.
    """

    name: int
    lane_id: int
    lane_proof: MerkleProof
    leaf_proof: MerkleProof


@dataclass(frozen=True)
class FabricCheckpointBundle:
    """A fabric commitment plus every lane's full bundle (the DA half)."""

    checkpoint: FabricCheckpoint
    lanes: tuple[tuple[int, CheckpointBundle], ...]  # (lane_id, bundle), sorted
    tree: MerkleTree

    def lane_bundle(self, lane_id: int) -> CheckpointBundle:
        for candidate, bundle in self.lanes:
            if candidate == lane_id:
                return bundle
        raise KeyError(f"lane {lane_id} did not settle this epoch")

    def prove_lane(self, lane_id: int) -> MerkleProof:
        """Inclusion proof of one lane's commitment in the fabric root."""
        for position, (candidate, _) in enumerate(self.lanes):
            if candidate == lane_id:
                return self.tree.prove(position)
        raise KeyError(f"lane {lane_id} did not settle this epoch")

    def lane_for_name(self, name: int) -> int:
        for lane_id, bundle in self.lanes:
            try:
                bundle.leaf_index(name)
            except KeyError:
                continue
            return lane_id
        raise KeyError(f"file {name} not in fabric epoch {self.checkpoint.epoch}")

    def prove(self, name: int) -> FabricInclusionProof:
        """leaf → lane-root → fabric-root opening for one file's round."""
        lane_id = self.lane_for_name(name)
        bundle = self.lane_bundle(lane_id)
        return FabricInclusionProof(
            name=name,
            lane_id=lane_id,
            lane_proof=self.prove_lane(lane_id),
            leaf_proof=bundle.prove(name),
        )

    def verify_inclusion(self, proof: FabricInclusionProof) -> bool:
        """Structural check: both stages open against the committed roots."""
        if not verify_merkle_proof(self.checkpoint.fabric_root, proof.lane_proof):
            return False
        try:
            lane_commitment = Checkpoint.from_bytes(proof.lane_proof.leaf_data)
        except ValueError:
            return False
        return verify_merkle_proof(lane_commitment.root, proof.leaf_proof)

    def accepted_names(self) -> tuple[int, ...]:
        return tuple(
            name for _, bundle in self.lanes for name in bundle.accepted_names()
        )

    def rejected_names(self) -> tuple[int, ...]:
        return tuple(
            name for _, bundle in self.lanes for name in bundle.rejected_names()
        )


def build_fabric_checkpoint(
    epoch: int, lane_bundles: Sequence[tuple[int, CheckpointBundle]]
) -> FabricCheckpointBundle:
    """Merkle-roll per-lane checkpoints into one fabric commitment."""
    if not lane_bundles:
        raise ValueError("cannot build a fabric checkpoint with no lanes")
    ordered = tuple(sorted(lane_bundles, key=lambda pair: pair[0]))
    lane_ids = [lane_id for lane_id, _ in ordered]
    if len(lane_ids) != len(set(lane_ids)):
        raise ValueError("duplicate lane id in fabric checkpoint")
    commitments = [bundle.checkpoint for _, bundle in ordered]
    if any(commitment.epoch != epoch for commitment in commitments):
        raise ValueError("all lane checkpoints must belong to the fabric epoch")
    tree = MerkleTree([commitment.to_bytes() for commitment in commitments])
    checkpoint = FabricCheckpoint(
        epoch=epoch,
        num_lanes=len(commitments),
        fabric_root=tree.root,
        accepted=sum(c.accepted for c in commitments),
        rejected=sum(c.rejected for c in commitments),
        num_leaves=sum(c.num_leaves for c in commitments),
        lanes_digest=lanes_digest(commitments),
    )
    return FabricCheckpointBundle(checkpoint=checkpoint, lanes=ordered, tree=tree)


# --------------------------------------------------------------------------- #
# The aggregator role across lanes                                            #
# --------------------------------------------------------------------------- #


@dataclass
class FabricSettlement:
    """One epoch settled on every lane, plus the fabric super-commitment."""

    epoch: int
    lanes: dict[int, SettledEpoch]
    fabric: FabricCheckpointBundle

    def accepted_names(self) -> tuple[int, ...]:
        return self.fabric.accepted_names()

    def rejected_names(self) -> tuple[int, ...]:
        return self.fabric.rejected_names()

    def total_commitment_gas(self) -> int:
        return sum(settled.receipt.gas_used for settled in self.lanes.values())

    def da_commitments(self) -> dict[int, object]:
        """Per-lane DA commitments for this epoch (empty without DA)."""
        return {
            lane_id: settled.da.commitment
            for lane_id, settled in self.lanes.items()
            if settled.da is not None
        }


class CrossShardAggregator:
    """Settles engine epochs across every fabric lane and rolls them up.

    One :class:`~repro.engine.scheduler.EpochScheduler` +
    :class:`~repro.rollup.pipeline.CheckpointPipeline` pair per lane, all
    sharing a single :class:`~repro.engine.executor.AuditExecutor` — so
    proof generation for the whole fleet fans out through one process
    pool while settlement (commitment posting, bonds, fraud windows)
    stays per-lane.  Instance→lane placement uses the fabric's
    deterministic :meth:`~repro.chain.fabric.ShardedChainFabric.lane_index_for`,
    the same function every light client and challenger applies.
    """

    def __init__(
        self,
        fabric,
        executor,
        params,
        beacon,
        rng=None,
        deterministic: bool = False,
        salt: bytes = b"engine-epoch",
        fraud_window: float = 24 * 3600.0,
        aggregator_funds_eth: float = 10.0,
        contract_kwargs: dict | None = None,
        concurrent_lanes: bool = False,
        pooled_verify: bool = False,
        tracer=None,
        da_params=None,
    ):
        # Imported lazily to keep the rollup layer importable without the
        # chain package on every path (mirrors pipeline.py's convention).
        from ..chain.contracts.checkpoint_contract import CheckpointContract
        from ..engine.scheduler import EpochScheduler

        self.fabric = fabric
        self.executor = executor
        self.params = params
        self.beacon = beacon
        # Concurrent mode: one worker thread per lane drives the whole
        # prove → verify → post pipeline, meeting at an epoch barrier only
        # for the fabric checkpoint roll-up.  Lane settlement is entirely
        # lane-local (scheduler, pipeline, chain, contract), so the
        # per-lane op sequence — and the accept/reject sets — match the
        # sequential walk exactly (differential-tested).
        self.concurrent_lanes = bool(concurrent_lanes)
        # A Tracer is single-threaded by design, so span collection is only
        # honoured on the sequential walk; concurrent lane threads would
        # interleave their enter/exit stacks into one garbled tree.
        self.tracer = None if self.concurrent_lanes else tracer
        self._lane_workers: ThreadPoolExecutor | None = None
        self.da_params = da_params
        self.settled: list[FabricSettlement] = []
        self._settled_by_epoch: dict[int, int] = {}
        self.lane_names: dict[int, frozenset[int]] = {}
        self.pipelines: dict[int, CheckpointPipeline] = {}
        self.schedulers: dict[int, "EpochScheduler"] = {}
        self.accounts: dict[int, str] = {}
        self.contract_addresses: dict[int, str] = {}

        placement: dict[int, set[int]] = {}
        for name in executor.instances:
            placement.setdefault(fabric.lane_index_for(name), set()).add(name)
        if not placement:
            raise ValueError("no audit instances registered with the executor")
        for lane_id in sorted(placement):
            names = frozenset(placement[lane_id])
            lane = fabric.lane(lane_id)
            account = lane.create_account(
                aggregator_funds_eth, label=f"aggregator-{lane_id}"
            )
            contract = CheckpointContract(
                beacon, params, fraud_window=fraud_window,
                **(contract_kwargs or {}),
            )
            address = lane.deploy(contract, deployer=account)
            # Each lane's scheduler gets its own blinding rng, derived in
            # sorted lane order: a shared Random instance would race under
            # concurrent lane threads.  Verdicts are rho-independent, so
            # the derivation only fixes the transcript, not the outcome.
            lane_rng = (
                None if rng is None else random.Random(rng.getrandbits(64))
            )
            scheduler = EpochScheduler(
                executor,
                params,
                beacon,
                salt=salt,
                deterministic=deterministic,
                rng=lane_rng,
                checkpoint_mode=True,
                names=names,
                pooled_verify=pooled_verify,
                tracer=self.tracer,
            )
            pipeline = CheckpointPipeline(
                scheduler,
                lane,
                address,
                account,
                da_params=da_params,
                lane_id=lane_id,
            )
            pipeline.register_fleet()
            self.lane_names[lane_id] = names
            self.schedulers[lane_id] = scheduler
            self.pipelines[lane_id] = pipeline
            self.accounts[lane_id] = account
            self.contract_addresses[lane_id] = address

    def lane_of(self, name: int) -> int:
        """The lane that settles (and would arbitrate) one file's audits."""
        return self.fabric.lane_index_for(name)

    def set_override(self, name: int, override) -> None:
        """Route one file's proofs through an adversary-strategy callable."""
        self.schedulers[self.lane_of(name)].set_override(name, override)

    def _workers(self) -> ThreadPoolExecutor:
        if self._lane_workers is None:
            self._lane_workers = ThreadPoolExecutor(
                max_workers=len(self.pipelines), thread_name_prefix="settle"
            )
        return self._lane_workers

    def close(self) -> None:
        if self._lane_workers is not None:
            self._lane_workers.shutdown(wait=True)
            self._lane_workers = None

    def settle_epoch(self, epoch: int) -> FabricSettlement:
        """Run one epoch on every lane and roll the commitments up.

        In ``concurrent_lanes`` mode every lane settles on its own worker
        thread; collecting the futures IS the epoch barrier — the fabric
        checkpoint is built only after the slowest lane posts.
        """
        lane_ids = sorted(self.pipelines)
        lanes: dict[int, SettledEpoch] = {}
        if self.concurrent_lanes and len(lane_ids) > 1:
            futures = {
                lane_id: self._workers().submit(
                    self.pipelines[lane_id].settle_epoch, epoch
                )
                for lane_id in lane_ids
            }
            for lane_id in lane_ids:
                lanes[lane_id] = futures[lane_id].result()
        else:
            for lane_id in lane_ids:
                lanes[lane_id] = self.pipelines[lane_id].settle_epoch(epoch)
        fabric_bundle = build_fabric_checkpoint(
            epoch,
            [(lane_id, settled.bundle) for lane_id, settled in lanes.items()],
        )
        settlement = FabricSettlement(epoch=epoch, lanes=lanes, fabric=fabric_bundle)
        self._settled_by_epoch[epoch] = len(self.settled)
        self.settled.append(settlement)
        return settlement

    def run(self, epochs: int, start_epoch: int = 0) -> list[FabricSettlement]:
        return [self.settle_epoch(start_epoch + i) for i in range(epochs)]

    def settlement_for_epoch(self, epoch: int) -> FabricSettlement:
        """Serve the data-availability obligation for one fabric epoch."""
        index = self._settled_by_epoch.get(epoch)
        if index is None:
            raise EpochNotSettled(epoch, role="aggregator")
        return self.settled[index]

    def export_instance_registry(self) -> dict[int, tuple[bytes, int]]:
        """Union of every lane contract's on-chain instance registry."""
        registry: dict[int, tuple[bytes, int]] = {}
        for pipeline in self.pipelines.values():
            registry.update(pipeline.contract.export_instance_registry())
        return registry
