"""Epoch checkpoint rollup: O(1) on-chain postings per provider per epoch.

The paper's chain layer records one on-chain round per (file, epoch); this
package amortizes that to a single committed verdict tree per epoch —
records (:mod:`~repro.rollup.records`), commitments and inclusion proofs
(:mod:`~repro.rollup.checkpoint`), and chain settlement
(:mod:`~repro.rollup.pipeline`).  Over a sharded chain fabric, per-lane
commitments are additionally Merkle-rolled into one cross-shard
super-commitment (:mod:`~repro.rollup.fabric`).  The fraud-proof
arbitration lives in :mod:`repro.chain.contracts.checkpoint_contract`; the
independent re-verification surface in :mod:`repro.chain.light_client`.
"""

from .checkpoint import (
    CHECKPOINT_COMMITMENT_BYTES,
    Checkpoint,
    CheckpointBundle,
    aggregated_proof_digest,
    build_checkpoint,
    build_epoch_checkpoint,
)
from .fabric import (
    FABRIC_COMMITMENT_BYTES,
    CrossShardAggregator,
    FabricCheckpoint,
    FabricCheckpointBundle,
    FabricInclusionProof,
    FabricSettlement,
    build_fabric_checkpoint,
    lanes_digest,
)
from .pipeline import CheckpointPipeline, SettledEpoch
from .records import WITHHELD_CODE, RoundRecord, records_from_epoch
from .verdict import LeafVerdict, leaf_ground_truth, recompute_round_verdict

__all__ = [
    "CHECKPOINT_COMMITMENT_BYTES",
    "Checkpoint",
    "CheckpointBundle",
    "CheckpointPipeline",
    "CrossShardAggregator",
    "FABRIC_COMMITMENT_BYTES",
    "FabricCheckpoint",
    "FabricCheckpointBundle",
    "FabricInclusionProof",
    "FabricSettlement",
    "LeafVerdict",
    "RoundRecord",
    "SettledEpoch",
    "WITHHELD_CODE",
    "aggregated_proof_digest",
    "build_checkpoint",
    "build_epoch_checkpoint",
    "build_fabric_checkpoint",
    "lanes_digest",
    "leaf_ground_truth",
    "recompute_round_verdict",
    "records_from_epoch",
]
