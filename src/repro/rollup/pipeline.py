"""Checkpoint pipeline: engine epochs settled as one transaction each.

Glue between the three layers the rollup spans:

* the **engine** (:class:`~repro.engine.scheduler.EpochScheduler` in
  checkpoint mode) produces an epoch's proofs and the grouped batch
  verdict off chain,
* the **rollup** (:mod:`~repro.rollup.checkpoint`) canonicalizes the
  outcome into a verdict tree and an 85-byte commitment,
* the **chain** (:class:`~repro.chain.contracts.checkpoint_contract.CheckpointContract`)
  records the commitment under a bonded fraud-proof window.

The pipeline plays the *aggregator* role: it posts commitments from its
own funded account, retains every epoch's
:class:`~.checkpoint.CheckpointBundle` (the data-availability obligation —
leaves must be servable to challengers and light clients), and exposes the
per-epoch on-chain receipts so callers can compare measured bytes/gas
against the per-round path.

With ``da_params`` set, the pipeline additionally erasure-codes each
settled epoch's leaf set into a :class:`~repro.da.commit.DaBundle`
(namespace = lane‖epoch) and posts the 119-byte DA commitment alongside
the checkpoint, turning the availability obligation into something light
clients can *sample* instead of trusting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.blockchain import Blockchain
from ..chain.transaction import Receipt, Transaction
from .checkpoint import CheckpointBundle


class EpochNotSettled(KeyError):
    """Lookup of an epoch this pipeline/aggregator never settled.

    Subclasses :class:`KeyError` so long-standing ``except KeyError``
    callers keep working, but carries the epoch as structured data and —
    unlike a bare KeyError, whose ``str()`` wraps the message in quotes —
    renders its message verbatim for RPC/CLI surfaces.
    """

    code = "epoch-not-settled"

    def __init__(self, epoch: int, role: str = "pipeline"):
        super().__init__(f"epoch {epoch} not settled by this {role}")
        self.epoch = epoch
        self.role = role

    def __str__(self) -> str:
        return self.args[0]


@dataclass
class SettledEpoch:
    """One epoch's engine result, bundle, and settlement receipt."""

    epoch: int
    result: object                 # engine EpochResult (duck-typed)
    bundle: CheckpointBundle
    checkpoint_id: int
    receipt: Receipt
    da: object | None = field(default=None)   # DaBundle when DA is enabled
    da_receipt: Receipt | None = field(default=None)


class CheckpointPipeline:
    """Runs engine epochs and settles each as one checkpoint transaction."""

    def __init__(
        self,
        scheduler,
        chain: Blockchain,
        contract_address: str,
        aggregator_account: str,
        da_params=None,
        lane_id: int = 0,
    ):
        if not getattr(scheduler, "checkpoint_mode", False):
            raise ValueError(
                "scheduler must be constructed with checkpoint_mode=True"
            )
        self.scheduler = scheduler
        self.chain = chain
        self.contract_address = contract_address
        self.aggregator = aggregator_account
        self.da_params = da_params
        self.lane_id = lane_id
        self.settled: list[SettledEpoch] = []
        # Settled epochs indexed by number: lookups used to linear-scan
        # `settled` and leak bare KeyErrors; the index keeps serving O(1)
        # as histories grow and the structured error names the miss.
        self._by_epoch: dict[int, int] = {}

    @property
    def contract(self):
        # Imported here, not at module level: checkpoint_contract imports
        # rollup.checkpoint, so a top-level import would be circular.
        from ..chain.contracts.checkpoint_contract import CheckpointContract

        contract = self.chain.contract_at(self.contract_address)
        assert isinstance(contract, CheckpointContract)
        return contract

    def register_fleet(self) -> None:
        """Push every scheduled instance's metadata into the on-chain registry.

        Honors the scheduler's instance subset (``names``), so a per-lane
        pipeline registers only the files its lane settles.
        """
        names = getattr(self.scheduler, "names", None)
        for instance in self.scheduler.executor.instances.values():
            if names is not None and instance.name not in names:
                continue
            if instance.name in self.contract.instances:
                continue
            pk_bytes = instance.public.to_bytes()
            receipt = self.chain.transact(
                Transaction(
                    sender=self.aggregator,
                    to=self.contract_address,
                    method="register_instance",
                    args=(instance.name, pk_bytes, instance.num_chunks),
                ),
                payload_bytes=len(pk_bytes) + 36,
            )
            if not receipt.success:
                raise RuntimeError(
                    f"instance registration failed: {receipt.error}"
                )

    def settle_epoch(self, epoch: int) -> SettledEpoch:
        """Run one engine epoch and post its commitment on chain."""
        result = self.scheduler.run_epoch(epoch)
        bundle = result.checkpoint
        assert bundle is not None, "checkpoint_mode scheduler returns a bundle"
        commitment_bytes = bundle.checkpoint.to_bytes()
        receipt = self.chain.transact(
            Transaction(
                sender=self.aggregator,
                to=self.contract_address,
                method="post_checkpoint",
                args=(commitment_bytes,),
                value=self.contract.posting_bond_wei,
            ),
            payload_bytes=len(commitment_bytes),
        )
        if not receipt.success:
            raise RuntimeError(f"checkpoint posting failed: {receipt.error}")
        checkpoint_id = receipt.return_value
        da_bundle = None
        da_receipt = None
        if self.da_params is not None:
            from ..da.commit import build_da_bundle

            da_bundle = build_da_bundle(
                self.lane_id, epoch, bundle, self.da_params
            )
            da_bytes = da_bundle.commitment.to_bytes()
            da_receipt = self.chain.transact(
                Transaction(
                    sender=self.aggregator,
                    to=self.contract_address,
                    method="post_da_root",
                    args=(checkpoint_id, da_bytes),
                ),
                payload_bytes=len(da_bytes),
            )
            if not da_receipt.success:
                raise RuntimeError(
                    f"DA commitment posting failed: {da_receipt.error}"
                )
        settled = SettledEpoch(
            epoch=epoch,
            result=result,
            bundle=bundle,
            checkpoint_id=checkpoint_id,
            receipt=receipt,
            da=da_bundle,
            da_receipt=da_receipt,
        )
        self._by_epoch[epoch] = len(self.settled)
        self.settled.append(settled)
        return settled

    def run(self, epochs: int, start_epoch: int = 0) -> list[SettledEpoch]:
        return [self.settle_epoch(start_epoch + i) for i in range(epochs)]

    def settled_for_epoch(self, epoch: int) -> SettledEpoch:
        """One settled epoch by number, or a structured miss."""
        index = self._by_epoch.get(epoch)
        if index is None:
            raise EpochNotSettled(epoch)
        return self.settled[index]

    def bundle_for_epoch(self, epoch: int) -> CheckpointBundle:
        """Serve the data-availability bundle for one settled epoch."""
        return self.settled_for_epoch(epoch).bundle

    def da_bundle_for_epoch(self, epoch: int):
        """Serve the erasure-coded DA bundle for one settled epoch.

        Raises :class:`EpochNotSettled` for unknown epochs and
        :class:`ValueError` when the pipeline runs without DA enabled.
        """
        settled = self.settled_for_epoch(epoch)
        if settled.da is None:
            raise ValueError(
                "pipeline settled this epoch without DA (da_params unset)"
            )
        return settled.da
