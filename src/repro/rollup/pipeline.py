"""Checkpoint pipeline: engine epochs settled as one transaction each.

Glue between the three layers the rollup spans:

* the **engine** (:class:`~repro.engine.scheduler.EpochScheduler` in
  checkpoint mode) produces an epoch's proofs and the grouped batch
  verdict off chain,
* the **rollup** (:mod:`~repro.rollup.checkpoint`) canonicalizes the
  outcome into a verdict tree and an 85-byte commitment,
* the **chain** (:class:`~repro.chain.contracts.checkpoint_contract.CheckpointContract`)
  records the commitment under a bonded fraud-proof window.

The pipeline plays the *aggregator* role: it posts commitments from its
own funded account, retains every epoch's
:class:`~.checkpoint.CheckpointBundle` (the data-availability obligation —
leaves must be servable to challengers and light clients), and exposes the
per-epoch on-chain receipts so callers can compare measured bytes/gas
against the per-round path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.blockchain import Blockchain
from ..chain.transaction import Receipt, Transaction
from .checkpoint import CheckpointBundle


@dataclass
class SettledEpoch:
    """One epoch's engine result, bundle, and settlement receipt."""

    epoch: int
    result: object                 # engine EpochResult (duck-typed)
    bundle: CheckpointBundle
    checkpoint_id: int
    receipt: Receipt


class CheckpointPipeline:
    """Runs engine epochs and settles each as one checkpoint transaction."""

    def __init__(
        self,
        scheduler,
        chain: Blockchain,
        contract_address: str,
        aggregator_account: str,
    ):
        if not getattr(scheduler, "checkpoint_mode", False):
            raise ValueError(
                "scheduler must be constructed with checkpoint_mode=True"
            )
        self.scheduler = scheduler
        self.chain = chain
        self.contract_address = contract_address
        self.aggregator = aggregator_account
        self.settled: list[SettledEpoch] = []

    @property
    def contract(self):
        # Imported here, not at module level: checkpoint_contract imports
        # rollup.checkpoint, so a top-level import would be circular.
        from ..chain.contracts.checkpoint_contract import CheckpointContract

        contract = self.chain.contract_at(self.contract_address)
        assert isinstance(contract, CheckpointContract)
        return contract

    def register_fleet(self) -> None:
        """Push every scheduled instance's metadata into the on-chain registry.

        Honors the scheduler's instance subset (``names``), so a per-lane
        pipeline registers only the files its lane settles.
        """
        names = getattr(self.scheduler, "names", None)
        for instance in self.scheduler.executor.instances.values():
            if names is not None and instance.name not in names:
                continue
            if instance.name in self.contract.instances:
                continue
            pk_bytes = instance.public.to_bytes()
            receipt = self.chain.transact(
                Transaction(
                    sender=self.aggregator,
                    to=self.contract_address,
                    method="register_instance",
                    args=(instance.name, pk_bytes, instance.num_chunks),
                ),
                payload_bytes=len(pk_bytes) + 36,
            )
            if not receipt.success:
                raise RuntimeError(
                    f"instance registration failed: {receipt.error}"
                )

    def settle_epoch(self, epoch: int) -> SettledEpoch:
        """Run one engine epoch and post its commitment on chain."""
        result = self.scheduler.run_epoch(epoch)
        bundle = result.checkpoint
        assert bundle is not None, "checkpoint_mode scheduler returns a bundle"
        commitment_bytes = bundle.checkpoint.to_bytes()
        receipt = self.chain.transact(
            Transaction(
                sender=self.aggregator,
                to=self.contract_address,
                method="post_checkpoint",
                args=(commitment_bytes,),
                value=self.contract.posting_bond_wei,
            ),
            payload_bytes=len(commitment_bytes),
        )
        if not receipt.success:
            raise RuntimeError(f"checkpoint posting failed: {receipt.error}")
        settled = SettledEpoch(
            epoch=epoch,
            result=result,
            bundle=bundle,
            checkpoint_id=receipt.return_value,
            receipt=receipt,
        )
        self.settled.append(settled)
        return settled

    def run(self, epochs: int, start_epoch: int = 0) -> list[SettledEpoch]:
        return [self.settle_epoch(start_epoch + i) for i in range(epochs)]

    def bundle_for_epoch(self, epoch: int) -> CheckpointBundle:
        """Serve the data-availability bundle for one settled epoch."""
        for settled in self.settled:
            if settled.epoch == epoch:
                return settled.bundle
        raise KeyError(f"epoch {epoch} not settled by this pipeline")
