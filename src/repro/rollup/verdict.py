"""Leaf ground truth: the single source of the rollup's verdict rules.

Both arbiters of a committed round record — the on-chain fraud proof
(:meth:`~repro.chain.contracts.checkpoint_contract.CheckpointContract.challenge_leaf`)
and the off-chain light client
(:class:`~repro.chain.light_client.CheckpointLightClient`) — must apply
*identical* rules, or the light client would flag leaves the contract
upholds (and vice versa), which is precisely the disagreement the system
exists to eliminate.  This module is that shared rule set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.challenge import Challenge, epoch_challenge
from ..core.params import ProtocolParams
from ..core.proof import PrivateProof
from .records import RoundRecord

#: Resolves a file name to a ready verifier, or ``None`` when the file is
#: not in the on-chain instance registry.
VerifierLookup = Callable[[int], "object | None"]


@dataclass(frozen=True)
class LeafVerdict:
    """Outcome of adjudicating one committed leaf.

    ``fraud_code`` is ``None`` for a truthful leaf; otherwise one of the
    PROTOCOL.md section 9.3 fraud grounds (``epoch-mismatch``,
    ``unregistered-file``, ``challenge-mismatch``, ``verdict-flipped``).
    ``actual`` is the re-derived verdict when one could be computed.
    """

    actual: bool | None
    fraud_code: str | None
    detail: str = ""

    @property
    def fraudulent(self) -> bool:
        return self.fraud_code is not None

    def describe(self) -> str | None:
        if self.fraud_code is None:
            return None
        return f"{self.fraud_code}: {self.detail}" if self.detail else self.fraud_code


def recompute_round_verdict(
    record: RoundRecord, params: ProtocolParams, verifier
) -> bool:
    """The round's true verdict from the leaf's own bytes.

    Withheld (empty) and undecodable proofs are rejections, exactly as the
    per-round contract rules them; anything else is the Eq.-2 pairing
    check.
    """
    if not record.proof_bytes:
        return False
    try:
        proof = PrivateProof.from_bytes(record.proof_bytes)
    except ValueError:
        return False
    challenge = Challenge.from_bytes(
        record.challenge_bytes, k=params.k, seed_bytes=params.seed_bytes
    )
    return bool(verifier.verify_private(challenge, proof))


def leaf_ground_truth(
    record: RoundRecord,
    commitment_epoch: int,
    params: ProtocolParams,
    beacon,
    verifier_for: VerifierLookup,
) -> LeafVerdict:
    """Adjudicate one committed leaf against on-chain-derivable state.

    A fraud code is returned whenever the leaf is a lie a correct
    aggregator could never have committed: a foreign epoch, an
    unregistered file, a challenge that is not the beacon's derivation for
    (epoch, name), or a verdict that does not survive re-verification.
    """
    if record.epoch != commitment_epoch:
        return LeafVerdict(
            actual=None,
            fraud_code="epoch-mismatch",
            detail=f"leaf says {record.epoch}, checkpoint is {commitment_epoch}",
        )
    verifier = verifier_for(record.name)
    if verifier is None:
        return LeafVerdict(
            actual=None,
            fraud_code="unregistered-file",
            detail=f"{record.name:#x}",
        )
    expected = epoch_challenge(
        beacon.output(record.epoch), params, record.name
    )
    if record.challenge_bytes != expected.to_bytes():
        return LeafVerdict(
            actual=None,
            fraud_code="challenge-mismatch",
            detail="leaf challenge != beacon derivation",
        )
    actual = recompute_round_verdict(record, params, verifier)
    if actual != record.verdict:
        return LeafVerdict(
            actual=actual,
            fraud_code="verdict-flipped",
            detail=(
                f"committed {'pass' if record.verdict else 'fail'}, "
                f"re-verification says {'pass' if actual else 'fail'}"
            ),
        )
    return LeafVerdict(actual=actual, fraud_code=None)
