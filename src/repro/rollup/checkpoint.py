"""Epoch checkpoints: a Merkle verdict tree behind one on-chain commitment.

The rollup's core object.  An epoch's :class:`~.records.RoundRecord` set is
committed as::

    root   = MerkleRoot( sorted canonical record encodings )
    digest = SHA256( proof_0 || proof_1 || ... )     (aggregated-proof digest)

and only the fixed-size :class:`Checkpoint` commitment touches the chain —
85 bytes regardless of whether the epoch audited 64 files or a million.
The full leaf set stays with the aggregator (data availability), which is
what lets *anyone* later

* verify a per-file inclusion proof against the committed root
  (:meth:`CheckpointBundle.prove`, checked by the light client), and
* open any single leaf on chain and have the
  :class:`~repro.chain.contracts.checkpoint_contract.CheckpointContract`
  re-run that round's verdict — the bonded fraud proof that keeps a
  one-transaction epoch as sound as N per-round transactions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property

from ..crypto.merkle import MerkleProof, MerkleTree, verify_merkle_proof
from .records import RoundRecord, records_from_epoch

CHECKPOINT_VERSION = 0x01

#: Fixed wire size of one checkpoint commitment (the on-chain footprint):
#: version(1) + epoch(8) + root(32) + accepted(4) + rejected(4) +
#: num_leaves(4) + aggregated-proof digest(32).
CHECKPOINT_COMMITMENT_BYTES = 85


@dataclass(frozen=True)
class Checkpoint:
    """The on-chain commitment to one epoch's verdict tree."""

    epoch: int
    root: bytes
    accepted: int
    rejected: int
    num_leaves: int
    proof_digest: bytes  # SHA256 over the concatenated proof bytes

    def __post_init__(self) -> None:
        if len(self.root) != 32 or len(self.proof_digest) != 32:
            raise ValueError("root and proof digest must be 32 bytes")
        if self.accepted + self.rejected != self.num_leaves:
            raise ValueError("accepted + rejected must equal num_leaves")

    def to_bytes(self) -> bytes:
        return b"".join(
            (
                bytes([CHECKPOINT_VERSION]),
                self.epoch.to_bytes(8, "big"),
                self.root,
                self.accepted.to_bytes(4, "big"),
                self.rejected.to_bytes(4, "big"),
                self.num_leaves.to_bytes(4, "big"),
                self.proof_digest,
            )
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Checkpoint":
        if len(data) != CHECKPOINT_COMMITMENT_BYTES:
            raise ValueError(
                f"checkpoint commitment must be {CHECKPOINT_COMMITMENT_BYTES} bytes"
            )
        if data[0] != CHECKPOINT_VERSION:
            raise ValueError(f"unknown checkpoint version {data[0]:#x}")
        return Checkpoint(
            epoch=int.from_bytes(data[1:9], "big"),
            root=bytes(data[9:41]),
            accepted=int.from_bytes(data[41:45], "big"),
            rejected=int.from_bytes(data[45:49], "big"),
            num_leaves=int.from_bytes(data[49:53], "big"),
            proof_digest=bytes(data[53:85]),
        )

    def byte_size(self) -> int:
        return CHECKPOINT_COMMITMENT_BYTES


def aggregated_proof_digest(records: tuple[RoundRecord, ...]) -> bytes:
    """SHA256 binding every proof in the epoch into one 32-byte digest.

    Committed alongside the root so the aggregator cannot later serve a
    different proof set for the same verdict tree without detection.
    """
    hasher = hashlib.sha256(b"checkpoint-proofs-v1")
    for record in records:
        hasher.update(len(record.proof_bytes).to_bytes(4, "big"))
        hasher.update(record.proof_bytes)
    return hasher.digest()


@dataclass(frozen=True)
class CheckpointBundle:
    """A checkpoint plus its full leaf set (the data-availability half).

    The commitment goes on chain; the bundle stays with the aggregator and
    is served to any light client or fraud-proof challenger on request.
    """

    checkpoint: Checkpoint
    records: tuple[RoundRecord, ...]
    tree: MerkleTree

    @cached_property
    def _index_by_name(self) -> dict[int, int]:
        return {record.name: index for index, record in enumerate(self.records)}

    def leaf_index(self, name: int) -> int:
        index = self._index_by_name.get(name)
        if index is None:
            raise KeyError(
                f"file {name} not in checkpoint {self.checkpoint.epoch}"
            )
        return index

    def record_for(self, name: int) -> RoundRecord:
        return self.records[self.leaf_index(name)]

    def prove(self, name: int) -> MerkleProof:
        """Inclusion proof for one file's round record."""
        return self.tree.prove(self.leaf_index(name))

    def verify_inclusion(self, proof: MerkleProof) -> bool:
        return verify_merkle_proof(self.checkpoint.root, proof)

    def rejected_names(self) -> tuple[int, ...]:
        return tuple(r.name for r in self.records if not r.verdict)

    def accepted_names(self) -> tuple[int, ...]:
        return tuple(r.name for r in self.records if r.verdict)


def build_checkpoint(
    epoch: int, records: tuple[RoundRecord, ...]
) -> CheckpointBundle:
    """Commit a record set: sort, hash, count, digest."""
    if not records:
        raise ValueError("cannot checkpoint an empty epoch")
    ordered = tuple(sorted(records, key=lambda record: record.name))
    names = [record.name for record in ordered]
    if len(names) != len(set(names)):
        raise ValueError("duplicate file name in checkpoint records")
    if any(record.epoch != epoch for record in ordered):
        raise ValueError("all records must belong to the checkpointed epoch")
    tree = MerkleTree([record.to_bytes() for record in ordered])
    accepted = sum(1 for record in ordered if record.verdict)
    checkpoint = Checkpoint(
        epoch=epoch,
        root=tree.root,
        accepted=accepted,
        rejected=len(ordered) - accepted,
        num_leaves=len(ordered),
        proof_digest=aggregated_proof_digest(ordered),
    )
    return CheckpointBundle(checkpoint=checkpoint, records=ordered, tree=tree)


def build_epoch_checkpoint(result, precompute=None) -> CheckpointBundle:
    """One-call path from an engine :class:`EpochResult` to a bundle."""
    return build_checkpoint(
        result.epoch, records_from_epoch(result, precompute=precompute)
    )
