"""Randomness beacon interfaces (paper Section V-E).

The audit contract must draw "reliable, unpredictable, unbiased" randomness
each round.  The paper surveys three practical designs, all implemented in
this package:

* commit-reveal games (Randao-style) — :mod:`repro.randomness.commit_reveal`,
  including the last-revealer bias attack that breaks them,
* verifiable delay functions fixing that loophole —
  :mod:`repro.randomness.vdf`,
* an external trusted beacon (NIST-style) —
  :mod:`repro.randomness.trusted`.

This module defines the common interface plus the deterministic hash-chain
beacon used by tests and simulations.
"""

from __future__ import annotations

import hashlib
from typing import Protocol


class RandomnessBeacon(Protocol):
    """Anything that can serve per-round randomness to the audit contract."""

    def output(self, round_id: int) -> bytes:
        """32 bytes of randomness for the given round."""
        ...

    @property
    def cost_usd(self) -> float:
        """Estimated per-round cost of obtaining this randomness on chain.

        The paper estimates $0.01 (HydRand-style) to $0.05 (Randao-style)
        per draw (Section VII-B).
        """
        ...


class HashChainBeacon:
    """Deterministic beacon: output_i = H(seed || i).

    Unbiased and unpredictable *only* under the assumption nobody knows the
    seed — the honest-but-simulated stand-in for tests and benchmarks.
    """

    def __init__(self, seed: bytes, cost_usd: float = 0.0):
        self._seed = seed
        self._cost = cost_usd

    def output(self, round_id: int) -> bytes:
        return hashlib.sha256(
            b"REPRO-BEACON" + self._seed + round_id.to_bytes(8, "big")
        ).digest()

    @property
    def cost_usd(self) -> float:
        return self._cost


class MaliciousBeacon:
    """Adversary-scripted beacon for eclipse-attack experiments.

    Models the Section V-C scenario: an eclipse attacker monopolises the
    victim's view of the chain and feeds "well-calculated challenge
    randomness" of their choosing.
    """

    def __init__(self, outputs: dict[int, bytes], fallback: RandomnessBeacon):
        self._outputs = dict(outputs)
        self._fallback = fallback

    def script(self, round_id: int, value: bytes) -> None:
        self._outputs[round_id] = value

    def output(self, round_id: int) -> bytes:
        if round_id in self._outputs:
            return self._outputs[round_id]
        return self._fallback.output(round_id)

    @property
    def cost_usd(self) -> float:
        return self._fallback.cost_usd
