"""Randomness beacons for audit challenges (paper Section V-E)."""

from .beacon import HashChainBeacon, MaliciousBeacon, RandomnessBeacon
from .commit_reveal import (
    AttackStats,
    CommitRevealBeacon,
    CommitRevealRound,
    LastRevealerAttacker,
    combine_reveals,
)
from .trusted import BeaconConsumer, SignedOutput, TrustedBeacon
from .vdf import BlindLastRevealer, VdfBeacon, VdfProof, WesolowskiVdf, hash_to_prime

__all__ = [
    "AttackStats",
    "BeaconConsumer",
    "BlindLastRevealer",
    "CommitRevealBeacon",
    "CommitRevealRound",
    "HashChainBeacon",
    "LastRevealerAttacker",
    "MaliciousBeacon",
    "RandomnessBeacon",
    "SignedOutput",
    "TrustedBeacon",
    "VdfBeacon",
    "VdfProof",
    "WesolowskiVdf",
    "combine_reveals",
    "hash_to_prime",
]
