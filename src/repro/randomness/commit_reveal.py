"""Commit-reveal randomness (Randao-style) and the last-revealer attack.

Protocol per round: every participant i commits ``H(v_i || salt_i)``, then
reveals; the beacon output is ``H(v_1 || ... || v_n)``.  Deposits punish
non-revealing — but a rational last revealer computes both candidate
outputs (reveal vs withhold) *before* deciding, and sacrifices the deposit
whenever withholding pays more.  The paper (citing [36]) flags exactly this
maneuver; :class:`LastRevealerAttacker` implements it, and the test-suite
shows its bias (~75% success at fixing one output bit vs 50% honest).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum


def _commitment(value: bytes, salt: bytes) -> bytes:
    return hashlib.sha256(b"COMMIT" + value + salt).digest()


def combine_reveals(values: list[bytes]) -> bytes:
    h = hashlib.sha256(b"RANDAO")
    for value in values:
        h.update(value)
    return h.digest()


class Phase(Enum):
    COMMIT = "commit"
    REVEAL = "reveal"
    DONE = "done"


@dataclass
class CommitRevealRound:
    """One round of the game, tracking deposits like the on-chain original."""

    deposit: int = 100
    phase: Phase = Phase.COMMIT
    commitments: dict[str, bytes] = field(default_factory=dict)
    reveals: dict[str, bytes] = field(default_factory=dict)
    forfeited: dict[str, int] = field(default_factory=dict)

    def commit(self, participant: str, commitment: bytes) -> None:
        if self.phase is not Phase.COMMIT:
            raise RuntimeError("commit phase is over")
        if participant in self.commitments:
            raise RuntimeError(f"{participant} already committed")
        self.commitments[participant] = commitment

    def start_reveal(self) -> None:
        if self.phase is not Phase.COMMIT:
            raise RuntimeError("not in commit phase")
        self.phase = Phase.REVEAL

    def reveal(self, participant: str, value: bytes, salt: bytes) -> None:
        if self.phase is not Phase.REVEAL:
            raise RuntimeError("not in reveal phase")
        expected = self.commitments.get(participant)
        if expected is None:
            raise RuntimeError(f"{participant} never committed")
        if _commitment(value, salt) != expected:
            raise ValueError("reveal does not match commitment")
        self.reveals[participant] = value

    def finalize(self) -> bytes:
        """Close the round: withholders forfeit deposits, output is combined.

        Withheld values are simply excluded — which is precisely the bias
        lever the attacker pulls.
        """
        if self.phase is not Phase.REVEAL:
            raise RuntimeError("not in reveal phase")
        for participant in self.commitments:
            if participant not in self.reveals:
                self.forfeited[participant] = self.deposit
        self.phase = Phase.DONE
        ordered = [self.reveals[p] for p in sorted(self.reveals)]
        return combine_reveals(ordered)


class CommitRevealBeacon:
    """Multi-round beacon run by a fixed committee of honest participants."""

    def __init__(self, participants: list[str], seed: bytes, deposit: int = 100):
        if not participants:
            raise ValueError("need at least one participant")
        self.participants = list(participants)
        self._seed = seed
        self.deposit = deposit

    def _value(self, participant: str, round_id: int) -> tuple[bytes, bytes]:
        material = hashlib.sha256(
            self._seed + participant.encode() + round_id.to_bytes(8, "big")
        ).digest()
        return material[:16], material[16:]

    def run_round(self, round_id: int) -> CommitRevealRound:
        rnd = CommitRevealRound(deposit=self.deposit)
        for participant in self.participants:
            value, salt = self._value(participant, round_id)
            rnd.commit(participant, _commitment(value, salt))
        rnd.start_reveal()
        for participant in self.participants:
            value, salt = self._value(participant, round_id)
            rnd.reveal(participant, value, salt)
        return rnd

    def output(self, round_id: int) -> bytes:
        rnd = self.run_round(round_id)
        return rnd.finalize()

    @property
    def cost_usd(self) -> float:
        # Paper Section VII-B: Randao-style services cost ~$0.05 per draw.
        return 0.05


@dataclass
class AttackStats:
    attempts: int = 0
    successes: int = 0
    deposits_lost: int = 0

    @property
    def success_rate(self) -> float:
        return self.successes / self.attempts if self.attempts else 0.0


class LastRevealerAttacker:
    """A rational last revealer biasing the output toward ``predicate``.

    Strategy: compute the output with and without its own reveal; reveal
    only when that makes the predicate true (or when neither/both options
    work, reveal to save the deposit).
    """

    def __init__(self, name: str = "attacker", deposit: int = 100):
        self.name = name
        self.deposit = deposit
        self.stats = AttackStats()

    def play(
        self,
        honest_values: list[bytes],
        own_value: bytes,
        predicate,
    ) -> bytes:
        """Return the final beacon output after the attacker's choice."""
        self.stats.attempts += 1
        with_reveal = combine_reveals(honest_values + [own_value])
        without_reveal = combine_reveals(honest_values)
        if predicate(with_reveal):
            self.stats.successes += 1
            return with_reveal
        if predicate(without_reveal):
            # Withhold: sacrifice the deposit to force the favourable output.
            self.stats.deposits_lost += self.deposit
            self.stats.successes += 1
            return without_reveal
        return with_reveal  # neither works; keep the deposit
