"""Wesolowski verifiable delay function and the VDF-hardened beacon.

Paper Section V-E: "recent work [37] uses the concept of verifiable delay
function to fix this loophole" — the last revealer cannot bias what it
cannot compute before the reveal deadline.

The VDF is Wesolowski's construction over an RSA group:

    eval:    y = x^(2^T) mod N            (T *sequential* squarings)
    prove:   l = HashToPrime(x, y);  pi = x^(2^T div l)
    verify:  pi^l * x^(2^T mod l) == y    (two exponentiations, fast)

The delay parameter T is wall-clock calibrated in production; tests use a
small T (the sequentiality argument is orthogonal to correctness).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .commit_reveal import combine_reveals


def is_probable_prime(n: int, rounds: int = 24) -> bool:
    """Deterministic-enough Miller-Rabin (fixed bases + pseudorandom)."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for index in range(rounds):
        seed = hashlib.sha256(n.to_bytes((n.bit_length() + 7) // 8, "big") + bytes([index])).digest()
        a = int.from_bytes(seed, "big") % (n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def hash_to_prime(data: bytes, bits: int = 128) -> int:
    """Fiat-Shamir challenge prime for Wesolowski's proof."""
    counter = 0
    while True:
        digest = hashlib.sha256(b"H2PRIME" + counter.to_bytes(4, "big") + data).digest()
        candidate = int.from_bytes(digest[: bits // 8], "big") | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate
        counter += 1


@dataclass(frozen=True)
class VdfProof:
    output: int  # y
    proof: int   # pi


class WesolowskiVdf:
    """VDF instance over Z_N^* for an RSA modulus N of unknown factorisation.

    In deployment N comes from an MPC ceremony or an RSA challenge number;
    here the constructor derives a fixed modulus from a seed (the evaluator
    must not know the factors — our derivation throws them away).
    """

    def __init__(self, modulus: int, delay: int):
        if modulus < 4 or delay < 1:
            raise ValueError("modulus and delay must be positive")
        self.modulus = modulus
        self.delay = delay

    @staticmethod
    def from_seed(seed: bytes, bits: int = 512, delay: int = 1 << 10) -> "WesolowskiVdf":
        """Derive a modulus as a product of two seed-derived primes.

        The factors are local variables dropped immediately — a stand-in
        for the trusted-setup RSA modulus.
        """

        def derive_prime(tag: bytes) -> int:
            counter = 0
            while True:
                digest = hashlib.sha256(seed + tag + counter.to_bytes(4, "big")).digest()
                digest += hashlib.sha256(digest).digest()
                candidate = int.from_bytes(digest[: bits // 16], "big")
                candidate |= (1 << (bits // 2 - 1)) | 1
                if is_probable_prime(candidate):
                    return candidate
                counter += 1

        return WesolowskiVdf(derive_prime(b"p") * derive_prime(b"q"), delay)

    def _input_element(self, data: bytes) -> int:
        wide = hashlib.sha256(b"VDF-IN" + data).digest() * 4
        return int.from_bytes(wide, "big") % self.modulus

    def evaluate(self, data: bytes) -> VdfProof:
        """The slow part: T sequential squarings plus the Wesolowski proof."""
        x = self._input_element(data)
        y = x
        for _ in range(self.delay):
            y = y * y % self.modulus
        challenge = hash_to_prime(self._transcript(x, y))
        quotient = (1 << self.delay) // challenge
        pi = pow(x, quotient, self.modulus)
        return VdfProof(output=y, proof=pi)

    def verify(self, data: bytes, vdf_proof: VdfProof) -> bool:
        """The fast part: two modular exponentiations."""
        x = self._input_element(data)
        y = vdf_proof.output % self.modulus
        challenge = hash_to_prime(self._transcript(x, y))
        remainder = pow(2, self.delay, challenge)
        lhs = (
            pow(vdf_proof.proof, challenge, self.modulus)
            * pow(x, remainder, self.modulus)
            % self.modulus
        )
        return lhs == y

    def _transcript(self, x: int, y: int) -> bytes:
        size = (self.modulus.bit_length() + 7) // 8
        return x.to_bytes(size, "big") + y.to_bytes(size, "big")

    def output_bytes(self, vdf_proof: VdfProof) -> bytes:
        size = (self.modulus.bit_length() + 7) // 8
        return hashlib.sha256(b"VDF-OUT" + vdf_proof.output.to_bytes(size, "big")).digest()


class VdfBeacon:
    """Commit-reveal beacon hardened with a VDF finaliser.

    The round output is ``VDF(combine(reveals))``.  A withholding attacker
    must evaluate the VDF (T sequential squarings) *within the reveal
    window* to compare its two options; with T calibrated above the window
    this is impossible, so the choice is blind and the bias collapses to
    chance — asserted by the test suite.
    """

    def __init__(self, vdf: WesolowskiVdf, participants: list[str], seed: bytes):
        from .commit_reveal import CommitRevealBeacon

        self.vdf = vdf
        self._inner = CommitRevealBeacon(participants, seed)

    def output(self, round_id: int) -> bytes:
        rnd = self._inner.run_round(round_id)
        combined = rnd.finalize()
        return self.vdf.output_bytes(self.vdf.evaluate(combined))

    @property
    def cost_usd(self) -> float:
        # Paper Section VII-B: HydRand/VDF-style randomness ~ $0.01 per draw.
        return 0.01


class BlindLastRevealer:
    """The last-revealer strategy against a VDF beacon.

    Without time to run the VDF, the attacker cannot evaluate the predicate
    on either candidate output; the best available strategy is a coin flip
    over reveal/withhold.  Kept as a class for symmetry with the
    commit-reveal attacker so the experiment code is identical.
    """

    def __init__(self, vdf: WesolowskiVdf, deposit: int = 100):
        self.vdf = vdf
        self.deposit = deposit
        from .commit_reveal import AttackStats

        self.stats = AttackStats()

    def play(self, honest_values: list[bytes], own_value: bytes, predicate) -> bytes:
        self.stats.attempts += 1
        # Blind choice: the attacker derives its decision from its own value
        # (no better signal is available before the VDF completes).
        withhold = own_value[0] & 1 == 1
        if withhold:
            self.stats.deposits_lost += self.deposit
            combined = combine_reveals(honest_values)
        else:
            combined = combine_reveals(honest_values + [own_value])
        output = self.vdf.output_bytes(self.vdf.evaluate(combined))
        if predicate(output):
            self.stats.successes += 1
        return output
