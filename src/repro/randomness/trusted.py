"""Trusted external beacon (paper Section V-E, the NIST-style option).

"Alternatively, we can also introduce the extra assumption of a trusted
party, e.g., temporal blockchain from NIST quantum randomness beacon, and
directly absorbing randomness from these trusted sources."

Outputs are authenticated with a MAC standing in for the beacon operator's
signature; consumers verify before use.  The trust assumption is explicit:
whoever holds the signing key could bias everything.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass


@dataclass(frozen=True)
class SignedOutput:
    round_id: int
    value: bytes
    signature: bytes


class TrustedBeacon:
    """Operator side: emits signed 32-byte outputs per round."""

    def __init__(self, signing_key: bytes, seed: bytes):
        self._key = signing_key
        self._seed = seed

    def emit(self, round_id: int) -> SignedOutput:
        value = hashlib.sha256(
            b"NIST-SIM" + self._seed + round_id.to_bytes(8, "big")
        ).digest()
        signature = hmac.new(
            self._key, round_id.to_bytes(8, "big") + value, hashlib.sha256
        ).digest()
        return SignedOutput(round_id=round_id, value=value, signature=signature)

    def output(self, round_id: int) -> bytes:
        return self.emit(round_id).value

    @property
    def cost_usd(self) -> float:
        return 0.0  # free to read; the cost is the trust assumption


class BeaconConsumer:
    """Verifier side: holds the beacon's verification key."""

    def __init__(self, verification_key: bytes):
        self._key = verification_key

    def verify(self, signed: SignedOutput) -> bool:
        expected = hmac.new(
            self._key,
            signed.round_id.to_bytes(8, "big") + signed.value,
            hashlib.sha256,
        ).digest()
        return hmac.compare_digest(expected, signed.signature)
