"""Command-line interface: the library's functionality as a tool.

    python -m repro keygen   --s 50 --out keys.bin
    python -m repro prepare  --file archive.bin --s 10 --k 8
    python -m repro audit    --size 20000 --rounds 3
    python -m repro engine   --owners 4 --files 4 --epochs 2
    python -m repro engine --lanes 2                          # per-lane epochs
    python -m repro checkpoint --owners 4 --files 4 --epochs 2  # epoch rollup
    python -m repro checkpoint --fraud                        # + fraud proof
    python -m repro checkpoint --lanes 2                      # sharded rollup
    python -m repro shard --lanes 4 --fleet 16 --epochs 2     # chain fabric
    python -m repro shard --lanes 2 --persist ./chainstate    # + WAL stores
    python -m repro attack   --s 6 --k 4                      # privacy attack
    python -m repro attack --strategy selective --rho 0.25    # byzantine provider
    python -m repro attack --strategy replay --onchain        # dispute + slashing
    python -m repro lifecycle --years 2 --churn 0.2 --lanes 2 # years of churn
    python -m repro lifecycle --persist ./lifecycle --resume  # crash + reopen
    python -m repro congest --storm --lanes 4 --blocks 12     # fee-market storm
    python -m repro congest --storm --griefer --lanes 2       # + fee griefing
    python -m repro serve --lanes 2 --port 8645               # JSON-RPC service
    python -m repro serve --concurrent --probe                # CI smoke probe
    python -m repro da-sample --lanes 2 --withhold 0.25       # DA sampling demo
    python -m repro da-sample --fraud                         # + counts slash
    python -m repro models   --users 5000

Everything runs locally against the simulated substrates; the tool exists
so a downstream user can poke at the system without writing code.
"""

from __future__ import annotations

import argparse
import random
import sys

from .chain import (
    Blockchain,
    ContractTerms,
    CostModel,
    deploy_audit_contract,
    run_contract_to_completion,
)
from .core import DataOwner, ProtocolParams, StorageProvider, generate_keypair
from .randomness import HashChainBeacon
from .sim.economics import one_time_storage_cost, usd_per_audit
from .sim.throughput import ChainCapacityModel, ProviderLoadModel


def _cmd_keygen(args: argparse.Namespace) -> int:
    keypair = generate_keypair(args.s, private_auditing=not args.no_privacy)
    blob = keypair.public.to_bytes()
    if args.out:
        with open(args.out, "wb") as handle:
            handle.write(blob)
        print(f"public key ({len(blob):,} B) written to {args.out}")
    print(f"s = {args.s}, on-chain pk footprint = {keypair.public.byte_size():,} B")
    print(f"one-time recording cost ~ ${one_time_storage_cost(args.s)['usd']:.2f}")
    return 0


def _cmd_prepare(args: argparse.Namespace) -> int:
    with open(args.file, "rb") as handle:
        data = handle.read()
    params = ProtocolParams(s=args.s, k=args.k)
    owner = DataOwner(params)
    package = owner.prepare(data)
    overhead = 32 * package.num_chunks
    print(f"file: {len(data):,} B -> {package.num_chunks} chunks (s={args.s})")
    print(f"authenticators: {overhead:,} B ({overhead/len(data):.1%} of data)")
    print(f"public key: {package.public.byte_size():,} B on chain")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    params = ProtocolParams(s=args.s, k=args.k)
    owner = DataOwner(params, rng=rng)
    package = owner.prepare(bytes(rng.randrange(256) for _ in range(args.size)))
    provider = StorageProvider(rng=rng)
    if not provider.accept(package):
        print("provider rejected the package", file=sys.stderr)
        return 1
    chain = Blockchain()
    terms = ContractTerms(
        num_audits=args.rounds, audit_interval=60.0, response_window=20.0
    )
    deployment = deploy_audit_contract(
        chain, package, provider, terms, HashChainBeacon(b"cli"), params
    )
    if args.drop_after is not None:
        deployment.provider_agent.misbehave_after_round = args.drop_after
    contract = run_contract_to_completion(chain, deployment)
    cost = CostModel()
    print(f"contract closed: {contract.passes} passes, {contract.fails} fails")
    for record in contract.rounds:
        reason = f" [{record.reject_reason}]" if record.reject_reason else ""
        print(
            f"  round {record.round_id}: {'PASS' if record.passed else 'FAIL'}"
            f"{reason} gas={record.gas_used:,} "
            f"(${cost.gas_to_usd(record.gas_used):.2f})"
        )
    return 0 if contract.fails == (0 if args.drop_after is None else contract.fails) else 1


def _cmd_engine(args: argparse.Namespace) -> int:
    """Run the parallel audit engine over an owners x files fleet."""
    import time

    from .engine import AuditExecutor, AuditInstance, EpochScheduler
    from .sim.workloads import archive_file

    rng = random.Random(args.seed)
    params = ProtocolParams(s=args.s, k=args.k)
    print(
        f"fleet: {args.owners} owners x {args.files} files "
        f"({args.owners * args.files} audit instances), s={args.s}, k={args.k}"
    )
    t0 = time.perf_counter()
    instances = []
    for owner_index in range(args.owners):
        owner = DataOwner(params, rng=rng)
        for file_index in range(args.files):
            package = owner.prepare(
                archive_file(args.size, tag=f"o{owner_index}f{file_index}").data,
                fresh_keypair=file_index == 0,
            )
            instances.append(
                AuditInstance.from_package(package, owner_id=f"owner-{owner_index}")
            )
    print(f"fleet prepared in {time.perf_counter() - t0:.1f} s")
    with AuditExecutor(
        instances, workers=args.workers, cache_dir=args.crypto_cache
    ) as executor:
        beacon = HashChainBeacon(b"cli-engine")
        if args.lanes > 1:
            # One scheduler per fabric lane over the shared process pool:
            # each drives its deterministic slice of the fleet.
            from .chain.fabric import lane_index_for_key

            slices: dict[int, set[int]] = {}
            for instance in instances:
                lane = lane_index_for_key(instance.name, args.lanes)
                slices.setdefault(lane, set()).add(instance.name)
            schedulers = {
                lane: EpochScheduler(
                    executor, params, beacon, rng=rng, names=names
                )
                for lane, names in sorted(slices.items())
            }
            print(f"workers: {executor.workers}, lanes: {args.lanes} "
                  f"({', '.join(str(len(s)) for s in slices.values())} audits)")
            ok = True
            for epoch in range(args.epochs):
                for lane, scheduler in schedulers.items():
                    result = scheduler.run_epoch(epoch)
                    ok = ok and bool(result.batch_ok)
                    print(
                        f"epoch {epoch} lane {lane}: {result.num_audits} audits, "
                        f"prove {result.prove_seconds:.2f} s + "
                        f"batch-verify {result.verify_seconds:.2f} s, "
                        f"batch {'OK' if result.batch_ok else 'FAILED'}"
                    )
            return 0 if ok else 1
        scheduler = EpochScheduler(executor, params, beacon, rng=rng)
        print(f"workers: {executor.workers}")
        for result in scheduler.run(args.epochs):
            print(
                f"epoch {result.epoch}: {result.num_audits} audits, "
                f"prove {result.prove_seconds:.2f} s + "
                f"batch-verify {result.verify_seconds:.2f} s "
                f"-> {result.audits_per_second:.1f} audits/s, "
                f"batch {'OK' if result.batch_ok else 'FAILED'}"
            )
    return 0 if all(r.batch_ok for r in scheduler.history) else 1


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    """Epoch rollup: settle a fleet's audits as one commitment per epoch."""
    from .chain import (
        ChainExplorer,
        CheckpointContract,
        CheckpointLightClient,
        audit_the_auditor_checkpoints,
        checkpoint_amortization,
    )
    from .engine import AuditExecutor, AuditInstance, EpochScheduler
    from .rollup import CheckpointPipeline
    from .sim.workloads import archive_file

    if args.epochs < 1 or args.owners < 1 or args.files < 1:
        print("checkpoint: --epochs, --owners and --files must be >= 1",
              file=sys.stderr)
        return 2
    rng = random.Random(args.seed)
    params = ProtocolParams(s=args.s, k=args.k)
    instances = []
    for owner_index in range(args.owners):
        owner = DataOwner(params, rng=rng)
        for file_index in range(args.files):
            package = owner.prepare(
                archive_file(args.size, tag=f"o{owner_index}f{file_index}").data,
                fresh_keypair=file_index == 0,
            )
            instances.append(
                AuditInstance.from_package(package, owner_id=f"owner-{owner_index}")
            )
    fleet = len(instances)
    if args.lanes > 1:
        # Sharded rollup: settle the same fleet across fabric lanes with
        # per-lane commitments plus the cross-shard super-commitment.
        return _run_sharded_settlement(
            instances,
            params,
            lanes=args.lanes,
            epochs=args.epochs,
            workers=args.workers,
            rng=rng,
            persist=None,
            fraud=args.fraud,
        )
    print(f"fleet: {args.owners} owners x {args.files} files "
          f"({fleet} audit instances), s={args.s}, k={args.k}")

    beacon = HashChainBeacon(b"cli-checkpoint")
    chain = Blockchain(block_time=15.0)
    aggregator = chain.create_account(10.0, label="aggregator")
    contract = CheckpointContract(beacon, params, fraud_window=1000.0)
    address = chain.deploy(contract, deployer=aggregator)

    with AuditExecutor(instances, workers=args.workers) as executor:
        scheduler = EpochScheduler(
            executor, params, beacon, rng=rng, checkpoint_mode=True
        )
        pipeline = CheckpointPipeline(scheduler, chain, address, aggregator)
        pipeline.register_fleet()
        for settled in pipeline.run(args.epochs):
            commitment = settled.bundle.checkpoint
            print(
                f"epoch {settled.epoch}: {commitment.num_leaves} audits -> "
                f"1 checkpoint tx ({commitment.byte_size()} B on chain, "
                f"{commitment.accepted} accepted / {commitment.rejected} "
                f"rejected, gas {settled.receipt.gas_used:,})"
            )

        # Any third party can verify per-file inclusion from raw bytes.
        client = CheckpointLightClient(
            contract.export_instance_registry(), params, beacon
        )
        sample = instances[0].name
        bundle = pipeline.settled[0].bundle
        outcome = client.verify_inclusion(bundle.checkpoint, bundle.prove(sample))
        print(f"light client: inclusion of file {sample:#x} in epoch 0 -> "
              f"{'OK' if outcome.ok else outcome.reason}")
        replay = audit_the_auditor_checkpoints(contract, pipeline)
        print(f"light client: replayed {replay.checkpoints_checked} checkpoints "
              f"({replay.rounds_checked} rounds) -> "
              f"{'consistent' if replay.consistent else 'INCONSISTENT'}")

        amortized = checkpoint_amortization(chain.schedule, fleet)
        print(
            f"per-round path: {amortized.per_round_trail_bytes:,} trail B, "
            f"{amortized.per_round_gas:,} gas per epoch; checkpointed: "
            f"{amortized.checkpoint_trail_bytes} B, "
            f"{amortized.checkpoint_gas:,} gas "
            f"({amortized.bytes_reduction:,.0f}x bytes, "
            f"{amortized.gas_reduction:,.0f}x gas)"
        )

        fraud_caught = True
        if args.fraud:
            # A lying aggregator flips one verdict; anyone holding the
            # leaves opens that leaf on chain and takes the bond.
            fraud_caught, slashed = _slash_forged_checkpoint(
                chain, address, aggregator, scheduler, args.epochs
            )
            print(f"fraud proof: forged checkpoint (flipped verdict) "
                  f"{'slashed' if fraud_caught else 'NOT slashed'}"
                  + (f", bounty {slashed[0].payload['slashed_wei']:,} wei"
                     if slashed else ""))

    explorer = ChainExplorer(chain)
    print("checkpoint log:")
    for event in explorer.checkpoint_log():
        print(f"  {event['name']}: {event['payload']}")
    ok = replay.consistent and fraud_caught and all(
        s.receipt.success for s in pipeline.settled
    )
    return 0 if ok else 1


def _slash_forged_checkpoint(chain, contract_address, poster, scheduler, epoch):
    """Fraud-proof demo shared by ``checkpoint --fraud`` and ``shard --fraud``.

    Runs one extra engine epoch, flips a verdict in its record set, posts
    the forged commitment under bond, and opens the flipped leaf on chain
    as a challenger.  Returns ``(slashed_ok, slashed_events)``.
    """
    from .chain import Transaction
    from .rollup import build_checkpoint

    contract = chain.contract_at(contract_address)
    result = scheduler.run_epoch(epoch)
    records = list(result.checkpoint.records)
    records[0] = records[0].flipped()
    forged = build_checkpoint(epoch, tuple(records))
    receipt = chain.transact(
        Transaction(
            sender=poster,
            to=contract_address,
            method="post_checkpoint",
            args=(forged.checkpoint.to_bytes(),),
            value=contract.posting_bond_wei,
        ),
        payload_bytes=forged.checkpoint.byte_size(),
    )
    challenger = chain.create_account(1.0, label="challenger")
    opening = forged.prove(records[0].name)
    challenge_receipt = chain.transact(
        Transaction(
            sender=challenger,
            to=contract_address,
            method="challenge_leaf",
            args=(
                receipt.return_value,
                opening.leaf_data,
                opening.leaf_index,
                opening.siblings,
                opening.directions,
            ),
            value=contract.challenge_bond_wei,
        ),
        payload_bytes=len(opening.leaf_data) + 32 * len(opening.siblings),
    )
    slashed = [
        e for e in challenge_receipt.events if e.name == "checkpoint_slashed"
    ]
    return bool(challenge_receipt.success and slashed), slashed


def _run_sharded_settlement(
    instances,
    params,
    lanes: int,
    epochs: int,
    workers: int,
    rng,
    persist: str | None,
    fraud: bool = False,
) -> int:
    """Settle a fleet's epochs across a sharded chain fabric.

    Shared core of ``repro shard`` and ``repro checkpoint --lanes N``:
    builds the fabric (WAL-persisted under ``persist`` when given), runs a
    :class:`~repro.rollup.CrossShardAggregator` over one shared executor,
    verifies a leaf → lane-root → fabric-root inclusion proof plus a full
    fabric replay with the light client, and reports per-lane gas.
    """
    from .chain import (
        ChainExplorer,
        CheckpointLightClient,
        ShardedChainFabric,
        audit_the_auditor_fabric,
    )
    from .engine import AuditExecutor
    from .randomness import HashChainBeacon
    from .rollup import CrossShardAggregator

    beacon = HashChainBeacon(b"cli-shard")
    fabric = ShardedChainFabric(num_lanes=lanes, persist_dir=persist)
    print(f"fabric: {lanes} lanes, fleet {len(instances)}"
          + (f", persisted under {persist}" if persist else " (in-memory)"))
    with AuditExecutor(instances, workers=workers) as executor:
        aggregator = CrossShardAggregator(fabric, executor, params, beacon, rng=rng)
        for settlement in aggregator.run(epochs):
            fabric_ckpt = settlement.fabric.checkpoint
            lane_parts = ", ".join(
                f"lane {lane_id}: {settled.bundle.checkpoint.num_leaves} audits"
                f"/{settled.receipt.gas_used:,} gas"
                for lane_id, settled in sorted(settlement.lanes.items())
            )
            print(f"epoch {settlement.epoch}: {fabric_ckpt.num_leaves} audits -> "
                  f"{len(settlement.lanes)} lane commitments ({lane_parts})")
            print(f"  fabric super-commitment: {fabric_ckpt.byte_size()} B, "
                  f"root {fabric_ckpt.fabric_root.hex()[:16]}…, "
                  f"{fabric_ckpt.accepted} accepted / {fabric_ckpt.rejected} rejected")

        # Any third party verifies one round from the 87-byte commitment.
        client = CheckpointLightClient(
            aggregator.export_instance_registry(), params, beacon
        )
        sample = instances[0].name
        first = aggregator.settled[0]
        outcome = client.verify_fabric_inclusion(
            first.fabric.checkpoint, first.fabric.prove(sample)
        )
        print(f"light client: leaf->lane->fabric inclusion of file "
              f"{sample:#x} -> {'OK' if outcome.ok else outcome.reason}")
        replay = audit_the_auditor_fabric(aggregator)
        print(f"light client: replayed {replay.checkpoints_checked} lane "
              f"checkpoints ({replay.rounds_checked} rounds) -> "
              f"{'consistent' if replay.consistent else 'INCONSISTENT'}")

        fraud_caught = True
        if fraud:
            # A lying lane aggregator flips one verdict; the fraud proof on
            # that lane's bonded contract slashes it (soundness per lane).
            lane_id = min(aggregator.pipelines)
            pipeline = aggregator.pipelines[lane_id]
            fraud_caught, _ = _slash_forged_checkpoint(
                fabric.lane(lane_id),
                pipeline.contract_address,
                pipeline.aggregator,
                aggregator.schedulers[lane_id],
                epochs,
            )
            print(f"fraud proof (lane {lane_id}): forged lane checkpoint "
                  f"{'slashed' if fraud_caught else 'NOT slashed'}")

    explorer = ChainExplorer(fabric)
    print("per-lane gas totals:")
    for summary in explorer.lane_summaries():
        print(f"  lane {summary.lane}: {summary.gas_used:,} gas over "
              f"{summary.transactions} txs, {summary.chain_bytes:,} chain B, "
              f"congestion {summary.congestion_seconds:.0f} s")
    print(f"fabric settlement chain-time (slowest lane): "
          f"{fabric.settlement_chain_seconds():.0f} s")

    persisted_ok = True
    if persist:
        expected = fabric.state_hash()
        fabric.snapshot()
        fabric.close()
        reopened = ShardedChainFabric(num_lanes=lanes, persist_dir=persist)
        persisted_ok = reopened.state_hash() == expected
        reopened.close()
        print(f"state store: snapshot + reopen state_hash "
              f"{'MATCHES' if persisted_ok else 'DIVERGED'} "
              f"({expected[:16]}…)")

    ok = (
        replay.consistent
        and fraud_caught
        and persisted_ok
        and all(
            settled.receipt.success
            for settlement in aggregator.settled
            for settled in settlement.lanes.values()
        )
    )
    return 0 if ok else 1


def _cmd_shard(args: argparse.Namespace) -> int:
    """Sharded chain fabric: lane-partitioned settlement + super-commitment."""
    from .engine import AuditInstance
    from .sim.workloads import archive_file

    if args.lanes < 1 or args.fleet < 1 or args.epochs < 1:
        print("shard: --lanes, --fleet and --epochs must be >= 1",
              file=sys.stderr)
        return 2
    rng = random.Random(args.seed)
    params = ProtocolParams(s=args.s, k=args.k)
    owner = DataOwner(params, rng=rng)
    instances = []
    for index in range(args.fleet):
        package = owner.prepare(
            archive_file(args.size, tag=f"shard-{index}").data,
            fresh_keypair=index == 0,
        )
        instances.append(AuditInstance.from_package(package, owner_id="fleet"))
    return _run_sharded_settlement(
        instances,
        params,
        lanes=args.lanes,
        epochs=args.epochs,
        workers=args.workers,
        rng=rng,
        persist=args.persist or None,
        fraud=args.fraud,
    )


def _cmd_attack(args: argparse.Namespace) -> int:
    """Adversary entry point: privacy attack or byzantine-provider scenarios."""
    if args.strategy != "privacy":
        return _cmd_attack_byzantine(args)
    from .core import (
        EclipseChallengeFactory,
        InterpolationAttacker,
        transcript_from_plain,
        transcripts_needed,
    )

    rng = random.Random(args.seed)
    params = ProtocolParams(s=args.s, k=args.k)
    owner = DataOwner(params, rng=rng)
    package = owner.prepare(bytes(rng.randrange(256) for _ in range(args.s * 31 * 12)))
    provider = StorageProvider(rng=rng)
    provider.accept(package)
    prover = provider.prover_for(package.name)
    factory = EclipseChallengeFactory(params, rng=rng)
    attacker = InterpolationAttacker(params, package.num_chunks)
    pinned_c1, _ = factory.fresh_set_seeds()
    target = None
    for _ in range(params.k):
        _, c2 = factory.fresh_set_seeds()
        for _ in range(params.s):
            challenge = factory.challenge(pinned_c1, c2)
            proof = prover.respond_plain(challenge)
            attacker.observe(transcript_from_plain(challenge, proof))
            if target is None:
                target = challenge.expand(package.num_chunks).indices
    recovered = attacker.recover_blocks(target)
    hits = 0
    if recovered:
        hits = sum(
            list(package.chunked.chunks[i]) == recovered[i] for i in target
        )
    print(
        f"observed {attacker.transcripts_seen} transcripts "
        f"(s*u = {transcripts_needed(params, params.k)}); "
        f"recovered {hits}/{len(target)} chunks from NON-PRIVATE proofs"
    )
    print("(re-run your deployment with private proofs: recovery drops to 0)")
    return 0


def _cmd_attack_byzantine(args: argparse.Namespace) -> int:
    """Run the adversarial strategy library (docs/SCENARIOS.md)."""
    from .adversary import (
        STRATEGY_KINDS,
        ScenarioRunner,
        StrategySpec,
        measured_detection_rate,
        run_onchain_dispute,
    )
    from .core import ProtocolParams

    params = ProtocolParams(s=args.s, k=args.k)

    if args.onchain:
        if args.strategy == "all":
            print(
                "--onchain drives one strategy per contract; running "
                "'replay' (pass --strategy <kind> for another)\n"
            )
        result = run_onchain_dispute(
            strategy=args.strategy if args.strategy != "all" else "replay",
            rho=args.rho,
            rounds=args.rounds,
            params=params,
            seed=args.seed,
        )
        print("\n".join(result.summary_lines()))
        print("\nchain explorer export:")
        print(result.explorer.export_json())
        slashed = (
            result.collateral_slashed_wei
            or result.stake_before_wei - result.stake_after_wei
        )
        return 0 if result.fails > 0 and slashed > 0 else 1

    kinds = (
        [k for k in STRATEGY_KINDS if k != "honest"]
        if args.strategy == "all"
        else [args.strategy]
    )
    specs = [StrategySpec("honest", count=2)]
    specs += [StrategySpec(kind, rho=args.rho) for kind in kinds]
    runner = ScenarioRunner(specs, params=params, seed=args.seed)
    report = runner.run(epochs=args.epochs)
    print("\n".join(report.summary_lines()))
    if args.strategy in ("selective", "all"):
        chunks = runner.instances[0].num_chunks
        measured, predicted = measured_detection_rate(
            max(chunks, 40), args.rho, params, trials=args.trials, seed=args.seed
        )
        print(
            f"\nselective-storage sampling over {args.trials} trials: "
            f"measured {measured:.3f} vs 1-(1-rho)^c = {predicted:.3f} "
            f"(|delta| = {abs(measured - predicted):.3f})"
        )
    ok = report.zero_false_accepts and report.zero_false_rejects
    print(f"\nzero false accepts: {report.zero_false_accepts}; "
          f"zero false rejects: {report.zero_false_rejects}")
    return 0 if ok else 1


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    """Long-horizon lifecycle simulation: years of churn, repair, eviction."""
    from .lifecycle import LifecycleConfig, LifecycleEngine
    from .sim.throughput import LifecycleCapacityModel

    if args.years <= 0 or args.epochs_per_year < 1:
        print("lifecycle: --years and --epochs-per-year must be positive",
              file=sys.stderr)
        return 2
    persist = args.persist or None
    if args.resume:
        if not persist:
            print("lifecycle: --resume requires --persist DIR", file=sys.stderr)
            return 2
        overrides = {"workers": args.workers}
        if args.crypto_cache:
            overrides["crypto_cache_dir"] = args.crypto_cache
        engine = LifecycleEngine.open(persist, **overrides)
        print(f"resumed from {persist} at epoch {engine.next_epoch}/"
              f"{engine.config.total_epochs}")
    else:
        try:
            config = LifecycleConfig(
                years=args.years,
                epochs_per_year=args.epochs_per_year,
                files=args.files,
                file_bytes=args.size,
                erasure_n=args.shards,
                erasure_k=args.needed,
                providers=args.providers,
                churn=args.churn,
                flake_rate=args.flake,
                hazard=args.hazard,
                lanes=args.lanes,
                seed=args.seed,
                s=args.s,
                k=args.k,
                workers=args.workers,
                persist_dir=persist,
                crypto_cache_dir=args.crypto_cache or None,
            )
            engine = LifecycleEngine(config)
        except ValueError as exc:
            print(f"lifecycle: {exc}", file=sys.stderr)
            return 2
        print(f"lifecycle: {config.files} files x RS({config.erasure_n},"
              f"{config.erasure_k}) over {config.providers} providers, "
              f"{config.total_epochs} epochs (~{config.years:g} years at "
              f"{config.epochs_per_year}/yr), churn {config.churn:.0%}/yr, "
              f"{config.lanes} lanes"
              + (f", persisted under {persist}" if persist else ""))
    while engine.next_epoch <= engine.config.total_epochs:
        summary = engine.run_epoch()
        line = (f"epoch {summary.epoch:3d}: {summary.audits} audits "
                f"({summary.accepted} ok/{summary.rejected} fail), "
                f"+{summary.joined}/-{summary.departed} providers, "
                f"{summary.repaired} repaired, {summary.evicted} evicted, "
                f"gas {summary.commitment_gas:,}")
        if summary.deferred:
            line += f", {summary.deferred} deferred"
        print(line)
    outcome = engine.outcome()
    print(f"\n{outcome.epochs_run} epochs in {outcome.wall_seconds:.1f} s "
          f"({outcome.epochs_per_second:.2f} epochs/s)")
    print(f"event trail: {len(outcome.trail)} events, "
          f"digest {outcome.trail_digest[:16]}…")
    print(f"fabric state_hash: {outcome.state_hash[:16]}…")
    print(f"repairs {outcome.total_repairs}, evictions "
          f"{outcome.total_evictions}, settlement gas "
          f"{outcome.total_commitment_gas:,}")
    slashes = len(outcome.trail.of_kind('slashed'))
    print(f"on-chain slashing records: {slashes} "
          f"(every eviction carries one: "
          f"{slashes >= outcome.total_evictions})")
    floor = min((s.min_healthy_shards for s in outcome.summaries),
                default=engine.config.erasure_n)
    print(f"durability: weakest file never below {floor} healthy shards "
          f"(k = {engine.config.erasure_k}); all files retrievable: "
          f"{outcome.files_intact}")
    model = LifecycleCapacityModel(
        lanes=engine.config.lanes,
        epochs_per_year=engine.config.epochs_per_year,
        churn=engine.config.churn,
        erasure_n=engine.config.erasure_n,
        erasure_k=engine.config.erasure_k,
    )
    projected = model.projected_durability(engine.config.years)
    print(f"model projection over {engine.config.years:g} years: "
          f"P[survive] = {projected:.6f}, chain growth "
          f"{model.cumulative_chain_bytes(engine.config.years, engine.config.files):,} B")
    engine.close()
    return 0 if outcome.files_intact else 1


def _cmd_congest(args: argparse.Namespace) -> int:
    """Fee-market congestion run: storm pooled lanes, report the market."""
    from .adversary import FeeGriefer, detect_fee_griefers
    from .chain.fabric import ShardedChainFabric
    from .chain.mempool import (
        GasSinkContract,
        MempoolConfig,
        MempoolRejection,
        StormTraffic,
    )
    from .sim import CongestionPricingModel

    if args.lanes < 1 or args.blocks < 1 or args.senders < 1:
        print("congest: --lanes, --blocks and --senders must be positive",
              file=sys.stderr)
        return 2
    load = args.load
    if args.storm:
        load = max(load, 2.0)  # the acceptance regime: >= 2x gas target
    config = MempoolConfig()
    market = config.fee_market
    fabric = ShardedChainFabric(num_lanes=args.lanes, mempool=config)
    sinks, storms = [], []
    for lane_id, lane in enumerate(fabric.lanes):
        deployer = lane.create_account(10.0, label=f"congest-deploy-{lane_id}")
        sink = lane.deploy(GasSinkContract(), deployer=deployer)
        senders = [
            lane.create_account(100.0, label=f"congest-sender-{lane_id}-{i}")
            for i in range(args.senders)
        ]
        sinks.append(sink)
        storms.append(
            StormTraffic(sink, senders, seed=args.seed * 1000 + lane_id)
        )
    griefer = None
    if args.griefer:
        lane = fabric.lanes[0]
        account = lane.create_account(50_000.0, label="congest-griefer")
        griefer = FeeGriefer(
            lane, account, sinks[0], gas_share=0.5, aggression=4.0
        )
    gas_target = market.gas_target(fabric.lanes[0].block_gas_limit)
    offered = int(load * gas_target)
    print(f"congestion: {args.lanes} lane(s), offered load {load:g}x gas "
          f"target ({offered:,} gas/block/lane), {args.blocks} storm blocks"
          + (", fee griefer on lane 0" if griefer else ""))

    peaks = [0] * args.lanes
    pool_peak = 0
    pending_integral = 0
    for _ in range(args.blocks):
        if griefer is not None:
            griefer.on_block()
        for lane, storm in zip(fabric.lanes, storms):
            max_fee_gwei, tip_gwei = lane.pool.suggest_fees(args.tip)
            for tx in storm.txs_for_block(
                offered,
                max_fee_gwei=max_fee_gwei,
                priority_fee_gwei=tip_gwei,
                jitter_gwei=args.tip / 2,
            ):
                try:
                    lane.submit(tx)
                except MempoolRejection:
                    pass  # counted in the pool's rejection telemetry
        pool_peak = max(pool_peak, max(len(l.pool) for l in fabric.lanes))
        pending_integral += fabric.pending_total()
        fabric.mine_block()
        peaks = [
            max(peak, lane.base_fee_wei)
            for peak, lane in zip(peaks, fabric.lanes)
        ]

    drain_blocks = fabric.mine_until_pools_drain()
    floor = market.base_fee_floor_wei
    decay_blocks = drain_blocks
    while (
        any(lane.base_fee_wei > floor for lane in fabric.lanes)
        and decay_blocks < 1000
    ):
        fabric.mine_block()
        decay_blocks += 1

    gwei = 10**9
    total_drained = 0
    for lane_id, lane in enumerate(fabric.lanes):
        pool = lane.pool
        total_drained += pool.stats["drained"]
        print(f"lane {lane_id}: peak base fee {peaks[lane_id] / gwei:.3f} "
              f"gwei, burned {lane.burned:,} wei, drained "
              f"{pool.stats['drained']}, evicted {pool.stats['evicted']}, "
              f"rejections {pool.rejection_total()} "
              f"{dict(sorted(pool.rejections.items()))}")
    inversions = sum(lane.pool.priority_inversions for lane in fabric.lanes)
    held = pool_peak <= config.high_watermark
    print(f"priority inversions: {inversions}")
    print(f"pool peak {pool_peak} (high watermark {config.high_watermark}); "
          f"watermark held: {held}")
    print(f"base fee decayed to floor after {decay_blocks} post-storm "
          f"blocks: {all(l.base_fee_wei <= floor for l in fabric.lanes)}")
    if total_drained:
        # Little's law over the storm window: mean pending / drain rate.
        latency = pending_integral / total_drained + 1.0
        print(f"inclusion latency (Little's law estimate): "
              f"{latency:.2f} blocks")
    if args.lanes > 1:
        fees = ", ".join(f"{fee / gwei:.3f}" for fee in fabric.lane_base_fees())
        print(f"lane base fees (gwei): [{fees}]; congestion premium "
              f"{fabric.congestion_premium():.3f}x (hottest/coolest lane)")

    model = CongestionPricingModel.for_market(
        market, fabric.lanes[0].block_gas_limit, lanes=args.lanes,
    )
    growth = model.base_fee_growth_per_block(offered * args.lanes)
    print(f"model: base-fee growth {growth:.4f}x/block at this load, "
          f"decay from peak in "
          f"{model.decay_blocks_from_multiplier(max(peaks) / floor):.1f} "
          f"empty blocks")

    ok = held and inversions == 0
    if griefer is not None:
        reports = detect_fee_griefers(fabric.lanes[0])
        flagged = [r for r in reports if r.flagged]
        caught = any(r.sender == griefer.account for r in flagged)
        for report in flagged:
            print(f"fee-griefer detection: {report.sender[:10]} flagged "
                  f"(gas share {report.gas_share:.0%}, mean tip "
                  f"{report.mean_tip_wei / gwei:.2f} gwei)")
        print(f"griefer caught: {caught} "
              f"({len(flagged)} sender(s) flagged, griefer submitted "
              f"{griefer.submitted}, rejected {griefer.rejected})")
        ok = ok and caught
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Host the long-lived JSON-RPC audit service over a sharded fabric."""
    import time

    from .chain.fabric import ShardedChainFabric
    from .chain.mempool import MempoolConfig
    from .engine import AuditExecutor, AuditInstance
    from .obs import (
        MetricsHttpServer,
        Tracer,
        get_registry,
        register_core_instruments,
    )
    from .randomness import HashChainBeacon
    from .rollup import CrossShardAggregator
    from .rpc import RpcClient, RpcDispatcher, RpcTcpServer, ServiceNode
    from .sim.workloads import archive_file

    if args.lanes < 1 or args.fleet < 1 or args.epochs < 0:
        print("serve: --lanes and --fleet must be >= 1, --epochs >= 0",
              file=sys.stderr)
        return 2
    rng = random.Random(args.seed)
    params = ProtocolParams(s=args.s, k=args.k)
    # Observability: the service hosts the process-wide registry (every
    # layer below — mempool, fabric, engine — records into it by default)
    # plus an epoch-pipeline tracer for trace_get.  Spans are only
    # collected on the sequential settlement walk; see CrossShardAggregator.
    registry = get_registry()
    register_core_instruments(registry)
    tracer = Tracer()
    fabric = ShardedChainFabric(
        num_lanes=args.lanes,
        mempool=MempoolConfig(),
        concurrent=args.concurrent,
    )
    fabric.attach_gauges(registry)
    owner = DataOwner(params, rng=rng)
    instances = []
    for index in range(args.fleet):
        package = owner.prepare(
            archive_file(args.size, tag=f"serve-{index}").data,
            fresh_keypair=index == 0,
        )
        instances.append(AuditInstance.from_package(package, owner_id="serve"))
    executor = AuditExecutor(
        instances, workers=args.workers, cache_dir=args.crypto_cache
    )
    aggregator = CrossShardAggregator(
        fabric, executor, params, HashChainBeacon(b"cli-serve"), rng=rng,
        concurrent_lanes=args.concurrent, pooled_verify=args.workers != 1,
        tracer=tracer,
    )
    node = ServiceNode(fabric, aggregator=aggregator)
    dispatcher = RpcDispatcher(registry=registry, tracer=aggregator.tracer)
    node.register_on(dispatcher)
    server = RpcTcpServer(dispatcher, host=args.host, port=args.port)
    metrics_server = None
    if args.metrics_port >= 0:
        metrics_server = MetricsHttpServer(
            registry, host=args.host, port=args.metrics_port
        )
        metrics_server.start()
    try:
        settlements = aggregator.run(args.epochs)
        host, port = server.serve_in_thread()
        print(f"audit service on {host}:{port} — {args.lanes} lanes"
              f"{' (concurrent)' if args.concurrent else ''}, "
              f"{len(instances)} audit instances, "
              f"{len(settlements)} epochs pre-settled, "
              f"{len(dispatcher.methods())} methods")
        if metrics_server is not None:
            print(f"prometheus metrics on http://{metrics_server.host}:"
                  f"{metrics_server.port}/metrics")
        if args.mine_interval > 0:
            node.start_auto_mine(args.mine_interval)
        if args.probe:
            # CI smoke: exercise the service through a real socket
            # client (and the Prometheus endpoint when enabled), then
            # shut down cleanly.
            with RpcClient(host, port) as client:
                status = client.call("node_status")
                print(f"probe node_status: lanes={status['num_lanes']} "
                      f"height={status['height']}")
                suggestion = client.call("fee_suggest", {"tip_gwei": 1.0})
                print(f"probe fee_suggest: max_fee="
                      f"{suggestion['max_fee_gwei']:g} gwei")
                checkpoint = client.call("checkpoint_get")
                print(f"probe checkpoint_get: epoch {checkpoint['epoch']}, "
                      f"root {checkpoint['fabric_root'][:16]}…")
                snapshot = client.call("metrics_get")
                layers = {name.split("_")[0] for name in snapshot}
                print(f"probe metrics_get: {len(snapshot)} instruments, "
                      f"layers {sorted(layers)}")
                ok = (
                    status["num_lanes"] == args.lanes
                    and suggestion["max_fee_gwei"] > 0
                    and checkpoint["num_lanes"] == args.lanes
                    and {"rpc", "mempool", "fabric", "engine",
                         "lifecycle"} <= layers
                )
            if metrics_server is not None:
                from urllib.request import urlopen

                url = (f"http://{metrics_server.host}:"
                       f"{metrics_server.port}/metrics")
                with urlopen(url) as response:
                    text = response.read().decode("utf-8")
                exposed = ok and "engine_epochs_total" in text
                print(f"probe /metrics: {len(text.splitlines())} lines")
                ok = exposed
            print(f"probe: {'OK' if ok else 'FAILED'}; shutting down")
            return 0 if ok else 1
        deadline = time.time() + args.duration if args.duration > 0 else None
        try:
            while deadline is None or time.time() < deadline:
                time.sleep(0.2)
        except KeyboardInterrupt:
            print("interrupted; shutting down")
        return 0
    finally:
        node.stop_auto_mine()
        server.close()
        if metrics_server is not None:
            metrics_server.stop()
        aggregator.close()
        executor.close()
        fabric.close()


def _metric_total(snapshot: dict, name: str) -> float:
    """Sum a counter/gauge family's series from a metrics_get snapshot."""
    family = snapshot.get(name) or {}
    return sum(point.get("value", 0) for point in family.get("series", ()))


def _metric_histogram(snapshot: dict, name: str) -> dict:
    """First (unlabelled) histogram series of a family, or an empty one."""
    family = snapshot.get(name) or {}
    for point in family.get("series", ()):
        return point
    return {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


def _render_top(status: dict, snapshot: dict, lanes: list) -> str:
    """One ``repro top`` frame from node_status + metrics_get + lanes."""
    uptime = max(status.get("uptime_seconds", 0.0), 1e-9)
    epochs = _metric_total(snapshot, "engine_epochs_total")
    audits = _metric_total(snapshot, "engine_audits_total")
    depth = _metric_total(snapshot, "mempool_depth")
    verify = _metric_histogram(snapshot, "engine_verify_seconds")
    fees = {
        point["labels"].get("lane", "?"): point["value"]
        for point in (snapshot.get("fabric_lane_base_fee_wei") or {}).get(
            "series", ()
        )
    }
    total_txs = sum(summary.get("transactions", 0) for summary in lanes)
    lane_bits = []
    for summary in lanes:
        lane_id = summary.get("lane", "?")
        txs = summary.get("transactions", 0)
        share = 100.0 * txs / total_txs if total_txs else 0.0
        fee_gwei = fees.get(str(lane_id), 0) / 1e9
        lane_bits.append(
            f"lane{lane_id} {share:3.0f}% ({txs} txs, {fee_gwei:g} gwei)"
        )
    lines = [
        f"up {uptime:8.1f}s   height {status.get('height', 0):>6}   "
        f"lanes {status.get('num_lanes', 0)}"
        f"{' (concurrent)' if status.get('concurrent') else ''}   "
        f"auto-mine {'on' if status.get('auto_mine') else 'off'}",
        f"epochs  {epochs:10.0f} total  {epochs / uptime:8.2f}/s   "
        f"audits {audits:10.0f} total  {audits / uptime:8.2f}/s",
        f"mempool depth {depth:6.0f}   blocks mined "
        f"{_metric_total(snapshot, 'fabric_blocks_mined_total'):6.0f}   "
        f"txs settled "
        f"{_metric_total(snapshot, 'fabric_txs_settled_total'):6.0f}",
        "lanes   " + "   ".join(lane_bits),
        f"verify  p50 {verify['p50'] * 1e3:8.2f} ms   "
        f"p99 {verify['p99'] * 1e3:8.2f} ms   "
        f"over {verify['count']} epochs",
    ]
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live service telemetry snapshots over the metrics_get RPC."""
    import time

    from .rpc import RpcClient

    if args.iterations < 1 or args.interval < 0:
        print("top: --iterations must be >= 1, --interval >= 0",
              file=sys.stderr)
        return 2

    def frames(host: str, port: int) -> int:
        with RpcClient(host, port) as client:
            for frame in range(args.iterations):
                if frame:
                    time.sleep(args.interval)
                status = client.call("node_status")
                snapshot = client.call("metrics_get")
                lanes = client.call("explorer_lanes")
                print(f"-- repro top @ {host}:{port} "
                      f"[{frame + 1}/{args.iterations}] --")
                print(_render_top(status, snapshot, lanes))
        return 0

    if not args.demo:
        return frames(args.host, args.port)

    # Self-hosted demo: stand up a tiny two-lane service in-process (the
    # same wiring as ``repro serve``), settle one epoch, then read it back
    # through the real socket — used by the CLI smoke tests.
    from .chain.fabric import ShardedChainFabric
    from .chain.mempool import MempoolConfig
    from .engine import AuditExecutor, AuditInstance
    from .obs import Tracer, get_registry, register_core_instruments
    from .randomness import HashChainBeacon
    from .rollup import CrossShardAggregator
    from .rpc import RpcDispatcher, RpcTcpServer, ServiceNode
    from .sim.workloads import archive_file

    registry = get_registry()
    register_core_instruments(registry)
    rng = random.Random(0)
    params = ProtocolParams(s=3, k=2)
    fabric = ShardedChainFabric(num_lanes=2, mempool=MempoolConfig())
    fabric.attach_gauges(registry)
    owner = DataOwner(params, rng=rng)
    instances = [
        AuditInstance.from_package(
            owner.prepare(
                archive_file(400, tag=f"top-{index}").data,
                fresh_keypair=index == 0,
            ),
            owner_id="top",
        )
        for index in range(2)
    ]
    executor = AuditExecutor(instances, workers=1)
    aggregator = CrossShardAggregator(
        fabric, executor, params, HashChainBeacon(b"cli-top"), rng=rng,
        tracer=Tracer(),
    )
    node = ServiceNode(fabric, aggregator=aggregator)
    dispatcher = RpcDispatcher(registry=registry, tracer=aggregator.tracer)
    node.register_on(dispatcher)
    server = RpcTcpServer(dispatcher, host="127.0.0.1", port=0)
    try:
        aggregator.run(1)
        host, port = server.serve_in_thread()
        return frames(host, port)
    finally:
        server.close()
        aggregator.close()
        executor.close()
        fabric.close()


def _cmd_da_sample(args: argparse.Namespace) -> int:
    """Data-availability sampling demo over a live RPC service.

    Stands up the same sharded service as ``repro serve`` with DA enabled,
    settles epochs, then plays a sampling light client over the real
    socket: happy-path sampling (O(samples) download), a withholding
    aggregator caught by the same schedule, and k-of-n reconstruction
    driving an on-chain ``challenge_counts`` slash with ``--fraud``.
    """
    from .chain import CheckpointLightClient, Transaction
    from .chain.fabric import ShardedChainFabric
    from .chain.mempool import MempoolConfig
    from .da import (
        DaParams,
        DaSampler,
        DaWithholdingDetected,
        NmtProof,
        build_da_bundle,
        bundle_fetch,
        detection_probability,
    )
    from .engine import AuditExecutor, AuditInstance
    from .obs import get_registry, register_core_instruments
    from .rollup import Checkpoint, CrossShardAggregator
    from .rpc import RpcClient, RpcDispatcher, RpcTcpServer, ServiceNode
    from .sim.workloads import archive_file

    if not 1 <= args.data_chunks < args.chunks <= 255:
        print("da-sample: need 1 <= --data-chunks < --chunks <= 255",
              file=sys.stderr)
        return 2
    if not 0.0 <= args.withhold <= 1.0:
        print("da-sample: --withhold must be in [0, 1]", file=sys.stderr)
        return 2

    rng = random.Random(args.seed)
    params = ProtocolParams(s=args.s, k=args.k)
    da_params = DaParams(n=args.chunks, k=args.data_chunks)
    registry = get_registry()
    register_core_instruments(registry)
    fabric = ShardedChainFabric(num_lanes=args.lanes, mempool=MempoolConfig())
    owner = DataOwner(params, rng=rng)
    instances = [
        AuditInstance.from_package(
            owner.prepare(
                archive_file(args.size, tag=f"da-{index}").data,
                fresh_keypair=index == 0,
            ),
            owner_id="da",
        )
        for index in range(args.fleet)
    ]
    executor = AuditExecutor(instances, workers=1)
    beacon = HashChainBeacon(b"cli-da-sample")
    aggregator = CrossShardAggregator(
        fabric, executor, params, beacon, rng=rng, da_params=da_params
    )
    node = ServiceNode(fabric, aggregator=aggregator)
    dispatcher = RpcDispatcher(registry=registry)
    node.register_on(dispatcher)
    server = RpcTcpServer(dispatcher, host="127.0.0.1", port=0)
    ok = True
    try:
        aggregator.run(args.epochs)
        host, port = server.serve_in_thread()
        with RpcClient(host, port) as client:

            def rpc_fetch(lane_id, epoch, indices):
                reply = client.call(
                    "da_sample_get",
                    {"epoch": epoch, "lane": lane_id, "indices": list(indices)},
                )
                responses = {}
                for row in reply["chunks"]:
                    responses[row["index"]] = (
                        (bytes.fromhex(row["data"]),
                         NmtProof.from_object(row["proof"]))
                        if row["available"]
                        else None
                    )
                return responses

            sampler = DaSampler(rpc_fetch, registry=registry)
            epoch = args.epochs - 1
            listing = client.call("da_commitment_get", {"epoch": epoch})
            print(f"DA commitments for epoch {epoch}: "
                  f"{len(listing['lanes'])} lanes, (n, k) = "
                  f"({da_params.n}, {da_params.k})")

            from .da import DaCommitment

            seed = args.seed.to_bytes(8, "big", signed=True)
            commitments = {
                row["lane"]: DaCommitment.from_bytes(
                    bytes.fromhex(row["commitment"])
                )
                for row in listing["lanes"]
            }
            for lane_id, commitment in sorted(commitments.items()):
                report = sampler.sample(commitment, seed, budget=args.samples)
                settled = aggregator.settlement_for_epoch(epoch).lanes[lane_id]
                full = settled.da.chunk_payload_bytes()
                print(f"  lane {lane_id}: sampled {len(report.outcomes)} of "
                      f"{commitment.n} chunks -> "
                      f"{'available' if report.available else 'WITHHELD'}; "
                      f"downloaded {report.downloaded_bytes:,} B "
                      f"(full chunk set {full:,} B)")
                ok = ok and report.available

            if args.withhold > 0:
                lane_id = min(commitments)
                commitment = commitments[lane_id]
                hidden = max(1, round(args.withhold * commitment.n))
                settled = aggregator.settlement_for_epoch(epoch).lanes[lane_id]
                settled.da.withhold(range(hidden))
                analytic = detection_probability(
                    hidden / commitment.n, args.samples
                )
                report = sampler.sample(commitment, seed, budget=args.samples)
                try:
                    report.raise_if_withheld()
                    caught = False
                except DaWithholdingDetected as exc:
                    caught = True
                    print(f"withholding: lane {lane_id} hiding {hidden}/"
                          f"{commitment.n} chunks -> DETECTED "
                          f"({len(exc.failures)} failed samples; analytic "
                          f"P = {analytic:.4f})")
                if not caught:
                    print(f"withholding: lane {lane_id} hiding {hidden}/"
                          f"{commitment.n} chunks -> missed this run "
                          f"(analytic P = {analytic:.4f})")
                # Escalation: the surviving chunks still reconstruct the
                # epoch (withheld fraction is below the code's n-k slack),
                # proving the leaf set without trusting the aggregator.
                reconstruction = sampler.reconstruct(commitment, seed)
                contract = aggregator.pipelines[lane_id].contract
                light = CheckpointLightClient(
                    contract.export_instance_registry(), params, beacon
                )
                replay = light.replay_reconstructed(
                    settled.bundle.checkpoint, reconstruction
                )
                print(f"reconstruction: {len(reconstruction.records)} records "
                      f"from {reconstruction.chunks_used} chunks; light-client "
                      f"replay -> "
                      f"{'consistent' if replay.consistent else 'INCONSISTENT'}")
                ok = ok and replay.consistent

            if args.fraud:
                # A lying aggregator posts an honest root with swapped
                # accepted/rejected counts, plus the DA commitment its
                # obligation demands.  A light client reconstructs the
                # leaf set from sampled chunks alone and slashes the
                # counts forgery on chain.
                lane_id = min(aggregator.pipelines)
                pipeline = aggregator.pipelines[lane_id]
                lane = fabric.lane(lane_id)
                contract = pipeline.contract
                extra = args.epochs
                result = pipeline.scheduler.run_epoch(extra)
                honest = result.checkpoint
                forged = Checkpoint(
                    epoch=extra,
                    root=honest.checkpoint.root,
                    accepted=honest.checkpoint.rejected,
                    rejected=honest.checkpoint.accepted,
                    num_leaves=honest.checkpoint.num_leaves,
                    proof_digest=honest.checkpoint.proof_digest,
                )
                receipt = lane.transact(
                    Transaction(
                        sender=pipeline.aggregator,
                        to=pipeline.contract_address,
                        method="post_checkpoint",
                        args=(forged.to_bytes(),),
                        value=contract.posting_bond_wei,
                    ),
                    payload_bytes=forged.byte_size(),
                )
                da_bundle = build_da_bundle(lane_id, extra, honest, da_params)
                lane.transact(
                    Transaction(
                        sender=pipeline.aggregator,
                        to=pipeline.contract_address,
                        method="post_da_root",
                        args=(receipt.return_value,
                              da_bundle.commitment.to_bytes()),
                    ),
                    payload_bytes=da_bundle.commitment.byte_size(),
                )
                local = DaSampler(
                    bundle_fetch({(lane_id, extra): da_bundle}),
                    registry=registry,
                )
                reconstruction = local.reconstruct(da_bundle.commitment, seed)
                challenger = lane.create_account(1.0, label="da-challenger")
                leaves = reconstruction.counts_challenge_leaves()
                challenge = lane.transact(
                    Transaction(
                        sender=challenger,
                        to=pipeline.contract_address,
                        method="challenge_counts",
                        args=(receipt.return_value, leaves),
                        value=contract.challenge_bond_wei,
                    ),
                    payload_bytes=sum(len(leaf) for leaf in leaves),
                )
                slashed = [
                    e for e in challenge.events
                    if e.name == "checkpoint_slashed"
                ]
                caught = bool(challenge.success and slashed)
                print(f"fraud proof: counts-forged checkpoint challenged from "
                      f"{reconstruction.chunks_used} reconstructed chunks -> "
                      f"{'slashed' if caught else 'NOT slashed'}"
                      + (f" ({slashed[0].payload['reason']})" if slashed
                         else ""))
                ok = ok and caught
    finally:
        server.close()
        aggregator.close()
        executor.close()
        fabric.close()
    return 0 if ok else 1


def _cmd_models(args: argparse.Namespace) -> int:
    capacity = ChainCapacityModel()
    load = ProviderLoadModel()
    print(f"per audit: ${usd_per_audit():.3f} (5 Gwei) / "
          f"${usd_per_audit(gas_price_gwei=1.2):.3f} (1.2 Gwei)")
    print(f"chain throughput: {capacity.tx_per_second:.2f} tx/s; "
          f"max users: {capacity.max_concurrent_users():,}")
    growth = capacity.annual_chain_growth_bytes(args.users) / 2**30
    per_provider = load.users_per_provider(args.users)
    print(f"{args.users:,} users: +{growth:.2f} GB/yr on chain, "
          f"{per_provider} users/provider, "
          f"{load.proving_time_for_all(per_provider):.1f} s to prove all")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-assured on-chain auditing of decentralized storage",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    keygen = sub.add_parser("keygen", help="generate an audit keypair")
    keygen.add_argument("--s", type=int, default=50)
    keygen.add_argument("--no-privacy", action="store_true")
    keygen.add_argument("--out", type=str, default="")
    keygen.set_defaults(func=_cmd_keygen)

    prepare = sub.add_parser("prepare", help="preprocess a local file")
    prepare.add_argument("--file", required=True)
    prepare.add_argument("--s", type=int, default=10)
    prepare.add_argument("--k", type=int, default=8)
    prepare.set_defaults(func=_cmd_prepare)

    audit = sub.add_parser("audit", help="simulate a full audit contract")
    audit.add_argument("--size", type=int, default=10_000)
    audit.add_argument("--rounds", type=int, default=3)
    audit.add_argument("--s", type=int, default=8)
    audit.add_argument("--k", type=int, default=5)
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--drop-after", type=int, default=None,
                       help="provider drops data after this round")
    audit.set_defaults(func=_cmd_audit)

    engine = sub.add_parser(
        "engine", help="run parallel audit epochs over an owners x files fleet"
    )
    engine.add_argument("--owners", type=int, default=4)
    engine.add_argument("--files", type=int, default=4,
                        help="files per owner (same owner key, distinct names)")
    engine.add_argument("--epochs", type=int, default=2)
    engine.add_argument("--workers", type=int, default=0,
                        help="process-pool size (0 = one per CPU core)")
    engine.add_argument("--size", type=int, default=4_000)
    engine.add_argument("--s", type=int, default=10)
    engine.add_argument("--k", type=int, default=8)
    engine.add_argument("--seed", type=int, default=0)
    engine.add_argument("--crypto-cache", metavar="DIR", default=None,
                        help="""persist BN254 precompute tables (wNAF/fixed-base/GT windows, prepared Miller lines) under DIR so restarts begin at warm-cache speed""")
    engine.add_argument("--lanes", type=int, default=1,
                        help="run one scheduler per fabric lane over the "
                        "shared process pool (1 = unsharded)")
    engine.set_defaults(func=_cmd_engine)

    checkpoint = sub.add_parser(
        "checkpoint",
        help="epoch checkpoint rollup: one on-chain commitment per epoch, "
        "light-client inclusion proofs, optional fraud-proof demo",
    )
    checkpoint.add_argument("--owners", type=int, default=2)
    checkpoint.add_argument("--files", type=int, default=4,
                            help="files per owner (same key, distinct names)")
    checkpoint.add_argument("--epochs", type=int, default=2)
    checkpoint.add_argument("--workers", type=int, default=1,
                            help="process-pool size (0 = one per CPU core)")
    checkpoint.add_argument("--size", type=int, default=1_500)
    checkpoint.add_argument("--s", type=int, default=6)
    checkpoint.add_argument("--k", type=int, default=4)
    checkpoint.add_argument("--seed", type=int, default=0)
    checkpoint.add_argument("--fraud", action="store_true",
                            help="also post a forged (verdict-flipped) "
                            "checkpoint and slash it via the fraud proof")
    checkpoint.add_argument("--lanes", type=int, default=1,
                            help="settle across a sharded chain fabric with "
                            "per-lane commitments and one cross-shard "
                            "super-commitment (1 = single chain)")
    checkpoint.set_defaults(func=_cmd_checkpoint)

    shard = sub.add_parser(
        "shard",
        help="sharded chain fabric: lane-partitioned audit settlement, "
        "cross-shard super-commitment, optional WAL-persisted lane state",
    )
    shard.add_argument("--lanes", type=int, default=4)
    shard.add_argument("--fleet", type=int, default=16,
                       help="total audit instances, placed on lanes by "
                       "deterministic file-name hashing")
    shard.add_argument("--persist", type=str, default="",
                       help="directory for per-lane WAL + snapshot state "
                       "stores (reopened runs recover bit-identically)")
    shard.add_argument("--epochs", type=int, default=2)
    shard.add_argument("--workers", type=int, default=1,
                       help="process-pool size (0 = one per CPU core)")
    shard.add_argument("--size", type=int, default=1_500)
    shard.add_argument("--s", type=int, default=6)
    shard.add_argument("--k", type=int, default=4)
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--fraud", action="store_true",
                       help="post a forged lane checkpoint and slash it via "
                       "that lane's fraud proof")
    shard.set_defaults(func=_cmd_shard)

    attack = sub.add_parser(
        "attack",
        help="adversary suite: the Section V-C privacy attack or a "
        "byzantine provider strategy (docs/SCENARIOS.md)",
    )
    attack.add_argument(
        "--strategy",
        choices=("privacy", "forge", "replay", "selective", "bitrot",
                 "offline", "all"),
        default="privacy",
        help="'privacy' = interpolation attack on plain proofs; anything "
        "else runs the byzantine provider library",
    )
    attack.add_argument("--s", type=int, default=6)
    attack.add_argument("--k", type=int, default=4)
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--rho", type=float, default=0.25,
                        help="strategy intensity: discard fraction / "
                        "corruption probability / offline probability")
    attack.add_argument("--epochs", type=int, default=3,
                        help="audit epochs for the engine-driven scenario")
    attack.add_argument("--trials", type=int, default=2000,
                        help="challenge-sampling trials for the detection-"
                        "rate measurement")
    attack.add_argument("--rounds", type=int, default=3,
                        help="contract rounds for --onchain")
    attack.add_argument("--onchain", action="store_true",
                        help="drive the strategy through the audit contract "
                        "and dispute the failures (slashes collateral and "
                        "reputation stake)")
    attack.set_defaults(func=_cmd_attack)

    lifecycle = sub.add_parser(
        "lifecycle",
        help="simulate years of DSN operation: churn, erasure repair, "
        "reputation-weighted re-placement, audit-driven eviction, per-epoch "
        "checkpoint settlement on a sharded fabric",
    )
    lifecycle.add_argument("--years", type=float, default=2.0)
    lifecycle.add_argument("--churn", type=float, default=0.2,
                           help="annual provider turnover probability")
    lifecycle.add_argument("--lanes", type=int, default=2,
                           help="chain fabric lanes for settlement")
    lifecycle.add_argument("--epochs-per-year", type=int, default=12,
                           help="time compression: audit epochs per "
                           "simulated year")
    lifecycle.add_argument("--files", type=int, default=2)
    lifecycle.add_argument("--size", type=int, default=900,
                           help="bytes per stored file")
    lifecycle.add_argument("--shards", type=int, default=4,
                           help="erasure shards per file (RS n)")
    lifecycle.add_argument("--needed", type=int, default=2,
                           help="shards needed to reconstruct (RS k)")
    lifecycle.add_argument("--providers", type=int, default=8,
                           help="initial storage providers")
    lifecycle.add_argument("--flake", type=float, default=0.1,
                           help="annual P[a provider turns silently flaky]")
    lifecycle.add_argument("--hazard", choices=("exponential", "weibull"),
                           default="exponential",
                           help="departure hazard shape")
    lifecycle.add_argument("--persist", type=str, default="",
                           help="directory for WAL-persisted lanes + the "
                           "per-epoch engine snapshot (crash/reopen "
                           "continues bit-identically)")
    lifecycle.add_argument("--resume", action="store_true",
                           help="reopen the run persisted under --persist "
                           "at its last epoch boundary")
    lifecycle.add_argument("--seed", type=int, default=0)
    lifecycle.add_argument("--s", type=int, default=4)
    lifecycle.add_argument("--k", type=int, default=3)
    lifecycle.add_argument("--workers", type=int, default=1,
                           help="process-pool size (0 = one per CPU core)")
    lifecycle.add_argument("--crypto-cache", metavar="DIR", default=None,
                           help="""persist BN254 precompute tables (wNAF/fixed-base/GT windows, prepared Miller lines) under DIR so restarts begin at warm-cache speed""")
    lifecycle.set_defaults(func=_cmd_lifecycle)

    congest = sub.add_parser(
        "congest",
        help="fee-market congestion run: storm pooled lanes with audit-"
        "shaped traffic, report base-fee dynamics, watermarks, priority "
        "inversions and (optionally) fee-griefer detection",
    )
    congest.add_argument("--lanes", type=int, default=1,
                         help="fabric lanes, each with its own pool and "
                         "fee market")
    congest.add_argument("--blocks", type=int, default=12,
                         help="storm duration in blocks")
    congest.add_argument("--load", type=float, default=1.5,
                         help="offered gas per block per lane, in multiples "
                         "of the fee market's gas target")
    congest.add_argument("--storm", action="store_true",
                         help="epoch-boundary audit storm: force the "
                         "offered load to at least 2x the gas target")
    congest.add_argument("--griefer", action="store_true",
                         help="add a fee-griefing adversary on lane 0 and "
                         "report the telemetry-based detection verdict")
    congest.add_argument("--senders", type=int, default=8,
                         help="honest audit submitters per lane")
    congest.add_argument("--tip", type=float, default=1.0,
                         help="honest priority fee in gwei")
    congest.add_argument("--seed", type=int, default=0)
    congest.set_defaults(func=_cmd_congest)

    serve = sub.add_parser(
        "serve",
        help="host the long-lived JSON-RPC audit service: per-lane "
        "mempool ingress, audit/checkpoint/proof queries, explorer "
        "endpoints, newline-framed JSON-RPC 2.0 over TCP",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 = ephemeral, printed at start)")
    serve.add_argument("--lanes", type=int, default=2,
                       help="chain fabric lanes behind the service")
    serve.add_argument("--concurrent", action="store_true",
                       help="execute lanes on a worker-per-lane thread pool")
    serve.add_argument("--fleet", type=int, default=2,
                       help="audit instances preloaded into the aggregator")
    serve.add_argument("--epochs", type=int, default=1,
                       help="audit epochs settled before serving (gives "
                       "checkpoint_get/fabric_proof_get real data)")
    serve.add_argument("--size", type=int, default=500,
                       help="bytes per preloaded file")
    serve.add_argument("--mine-interval", type=float, default=0.5,
                       help="auto-mine period in seconds (0 = only "
                       "explicit 'mine' calls)")
    serve.add_argument("--duration", type=float, default=0.0,
                       help="serve for this many seconds then exit "
                       "(0 = until interrupted)")
    serve.add_argument("--metrics-port", type=int, default=-1,
                       help="expose Prometheus text metrics over HTTP on "
                       "this port (0 = ephemeral, -1 = disabled)")
    serve.add_argument("--probe", action="store_true",
                       help="CI smoke: start, call the service through "
                       "a socket client (and /metrics when enabled), "
                       "shut down cleanly")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--s", type=int, default=4)
    serve.add_argument("--k", type=int, default=3)
    serve.add_argument("--workers", type=int, default=1,
                       help="audit executor process-pool size "
                       "(0 = one per CPU core)")
    serve.add_argument("--crypto-cache", metavar="DIR", default=None,
                       help="""persist BN254 precompute tables (wNAF/fixed-base/GT windows, prepared Miller lines) under DIR so restarts begin at warm-cache speed""")
    serve.set_defaults(func=_cmd_serve)

    top = sub.add_parser(
        "top",
        help="render live service telemetry snapshots (epochs/s, audits/s, "
        "lane utilization, mempool depth, base fees, verify latency) "
        "over the metrics_get RPC",
    )
    top.add_argument("--host", type=str, default="127.0.0.1")
    top.add_argument("--port", type=int, default=0,
                     help="port of a running 'repro serve' service")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between snapshot frames")
    top.add_argument("--iterations", type=int, default=1,
                     help="frames to render before exiting")
    top.add_argument("--demo", action="store_true",
                     help="self-host a tiny two-lane service in-process "
                     "and read it back (no running serve needed)")
    top.set_defaults(func=_cmd_top)

    da_sample = sub.add_parser(
        "da-sample",
        help="data-availability sampling: a light client verifies chunk "
        "availability over RPC, catches withholding, and reconstructs "
        "the leaf set from k-of-n chunks",
    )
    da_sample.add_argument("--lanes", type=int, default=2)
    da_sample.add_argument("--fleet", type=int, default=4,
                           help="audit instances across the fabric")
    da_sample.add_argument("--epochs", type=int, default=1)
    da_sample.add_argument("--samples", type=int, default=18,
                           help="light-client sample budget per epoch")
    da_sample.add_argument("--chunks", type=int, default=32,
                           help="extended chunks per epoch (RS n)")
    da_sample.add_argument("--data-chunks", type=int, default=8,
                           help="chunks needed to reconstruct (RS k)")
    da_sample.add_argument("--withhold", type=float, default=0.25,
                           help="fraction of one lane's chunks to withhold "
                           "for the detection demo (0 disables)")
    da_sample.add_argument("--fraud", action="store_true",
                           help="also post a counts-forged checkpoint and "
                           "slash it from DA-reconstructed leaves")
    da_sample.add_argument("--size", type=int, default=1_500)
    da_sample.add_argument("--s", type=int, default=6)
    da_sample.add_argument("--k", type=int, default=4)
    da_sample.add_argument("--seed", type=int, default=0)
    da_sample.set_defaults(func=_cmd_da_sample)

    models = sub.add_parser("models", help="print the Section VII-D models")
    models.add_argument("--users", type=int, default=5_000)
    models.set_defaults(func=_cmd_models)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
