"""Cryptographic substrate: the BN254 pairing group plus every symmetric
primitive the auditing protocol and the storage layer need.

Submodules:

* :mod:`repro.crypto.bn254` — the pairing curve (fields, groups, pairing,
  MSM, hashing, serialization),
* :mod:`repro.crypto.field` — scalar-field helpers and block packing,
* :mod:`repro.crypto.prf` — challenge-expansion PRF/PRP (paper Def. 2),
* :mod:`repro.crypto.chacha20` — owner-side block encryption,
* :mod:`repro.crypto.merkle` — SHA-256 Merkle trees (strawman + baselines),
* :mod:`repro.crypto.mimc` — SNARK-friendly hash for the Groth16 circuit.
"""

from . import bn254, chacha20, field, merkle, mimc, prf, schnorr

__all__ = ["bn254", "chacha20", "field", "merkle", "mimc", "prf", "schnorr"]
