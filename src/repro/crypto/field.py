"""Scalar-field (Zp in the paper's notation) arithmetic helpers.

The protocol does all of its data-side arithmetic in the prime field of
order ``r`` (the BN254 group order): data blocks are field elements,
chunks are polynomials over the field, and challenges/coefficients are
sampled from it.  Elements are plain ints; this module adds the couple of
non-trivial algorithms the rest of the library leans on.
"""

from __future__ import annotations

import hashlib
import secrets
from typing import Iterable, Sequence

from .bn254.constants import CURVE_ORDER as R

#: The scalar-field modulus (the paper's p for data blocks).
MODULUS = R

#: Safe per-block payload: 31 bytes always fits below the 254-bit modulus.
BLOCK_BYTES = 31


def random_scalar(rng: secrets.SystemRandom | None = None) -> int:
    """Uniform element of Zr (cryptographically strong by default)."""
    if rng is None:
        return secrets.randbelow(R - 1) + 1
    return rng.randrange(1, R)


def inverse(a: int) -> int:
    """Inverse in Zr; raises ZeroDivisionError on zero."""
    if a % R == 0:
        raise ZeroDivisionError("zero has no inverse in Zr")
    return pow(a, -1, R)


def batch_inverse(values: Sequence[int]) -> list[int]:
    """Montgomery's trick: n inversions for the price of one.

    Raises ZeroDivisionError if any input is zero, like :func:`inverse`.
    """
    if not values:
        return []
    prefix = [1] * (len(values) + 1)
    for index, value in enumerate(values):
        prefix[index + 1] = prefix[index] * value % R
    running = inverse(prefix[-1])
    result = [0] * len(values)
    for index in range(len(values) - 1, -1, -1):
        result[index] = prefix[index] * running % R
        running = running * values[index] % R
    return result


def bytes_to_blocks(data: bytes) -> list[int]:
    """Split raw bytes into 31-byte field-element blocks (last one padded).

    The padding is length-extending-safe because callers track the byte
    length separately (see :mod:`repro.core.chunking`).
    """
    blocks = []
    for offset in range(0, len(data), BLOCK_BYTES):
        blocks.append(int.from_bytes(data[offset : offset + BLOCK_BYTES], "big"))
    return blocks


def blocks_to_bytes(blocks: Iterable[int], byte_length: int) -> bytes:
    """Inverse of :func:`bytes_to_blocks` given the original byte length."""
    block_list = list(blocks)
    tail = byte_length % BLOCK_BYTES
    expected = (byte_length + BLOCK_BYTES - 1) // BLOCK_BYTES
    if len(block_list) < expected:
        raise ValueError(
            f"need {expected} blocks to reconstruct {byte_length} bytes, "
            f"got {len(block_list)}"
        )
    out = bytearray()
    for index in range(expected):
        width = tail if (tail and index == expected - 1) else BLOCK_BYTES
        out += block_list[index].to_bytes(width, "big")
    return bytes(out)


def hash_to_scalar(*parts: bytes) -> int:
    """Domain-separated SHA-256 hash into Zr (used for Fiat-Shamir etc.)."""
    h = hashlib.sha256()
    h.update(b"REPRO-FIELD-H2S")
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    wide = h.digest() + hashlib.sha256(h.digest()).digest()
    return int.from_bytes(wide, "big") % R
