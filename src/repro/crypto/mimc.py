"""MiMC: a SNARK-friendly hash over the BN254 scalar field.

The paper's strawman encodes a Merkle-path check inside a ZK-SNARK circuit.
Their prototype (Bellman) uses a SHA-256-class hash, which costs ~27k R1CS
constraints per invocation and pushes the 1 KB-file circuit to ~3x10^5
constraints.  We substitute MiMC (x^7 permutation, 91 rounds — the
parameterisation popularised by circomlib for this curve), which costs 4
constraints per round and keeps the circuit provable in pure Python.  The
strawman benchmark reports both the measured MiMC constraint count and the
SHA-256-equivalent model so Table II can be compared on equal terms.

Exponent 7 is the smallest integer coprime to r-1 for BN254's r (3 and 5
both divide r-1), which makes ``x -> x^7`` a permutation of the field.
"""

from __future__ import annotations

import hashlib
import math

from .bn254.constants import CURVE_ORDER as R

N_ROUNDS = 91
EXPONENT = 7

assert math.gcd(EXPONENT, R - 1) == 1, "x^7 must be a permutation of Fr"


def _derive_constants(count: int) -> list[int]:
    """Nothing-up-my-sleeve round constants from a SHA-256 chain."""
    constants = [0]  # first round constant is conventionally zero
    seed = hashlib.sha256(b"REPRO-MIMC-BN254").digest()
    while len(constants) < count:
        seed = hashlib.sha256(seed).digest()
        wide = seed + hashlib.sha256(seed + b"w").digest()
        constants.append(int.from_bytes(wide, "big") % R)
    return constants[:count]


ROUND_CONSTANTS = _derive_constants(N_ROUNDS)


def mimc_permutation(x: int, key: int) -> int:
    """The keyed MiMC-n/n permutation: 91 rounds of x -> (x + k + c_i)^7."""
    x %= R
    key %= R
    for constant in ROUND_CONSTANTS:
        x = pow((x + key + constant) % R, EXPONENT, R)
    return (x + key) % R


def mimc_hash2(left: int, right: int) -> int:
    """Two-to-one compression in Miyaguchi-Preneel mode.

    ``h = E_right(left) + left + right`` — the feed-forward prevents key
    recovery / inversion, making the function usable as a Merkle node hash.
    """
    return (mimc_permutation(left, right) + left + right) % R


def mimc_hash(values: list[int]) -> int:
    """Sponge-style chaining for arbitrary-length field-element inputs."""
    state = 0
    for value in values:
        state = mimc_hash2(state, value % R)
    return state
