"""Binary Merkle tree over SHA-256.

Used by two baselines from the paper:

* the **strawman** (Section IV): the data owner publishes the root ``rt`` and
  the SNARK circuit proves knowledge of a leaf + authentication path,
* the **Sia-style** auditing baseline (Section II): the provider posts the
  challenged leaf and its path on chain in the clear.

Leaves are hashed with a domain-separation prefix distinct from interior
nodes so a leaf can never be confused with an internal node (second-preimage
hardening).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


@dataclass(frozen=True)
class MerkleProof:
    """Authentication path for one leaf.

    ``siblings[i]`` is the sibling hash at depth i (leaf-side first);
    ``directions[i]`` is True when the running hash is the *right* child.
    """

    leaf_index: int
    leaf_data: bytes
    siblings: tuple[bytes, ...]
    directions: tuple[bool, ...]

    def byte_size(self) -> int:
        """On-chain size of this proof (what Sia-style auditing posts)."""
        return len(self.leaf_data) + 32 * len(self.siblings) + 8


class MerkleTree:
    """Merkle tree over a fixed list of byte-string leaves.

    Odd nodes at any level are promoted (Bitcoin-style duplication is
    deliberately avoided: duplication enables the well-known CVE-2012-2459
    ambiguity).
    """

    def __init__(self, leaves: list[bytes]):
        if not leaves:
            raise ValueError("cannot build a Merkle tree with no leaves")
        self.leaves = list(leaves)
        self.levels: list[list[bytes]] = [[_hash_leaf(leaf) for leaf in leaves]]
        while len(self.levels[-1]) > 1:
            current = self.levels[-1]
            parent = []
            for index in range(0, len(current) - 1, 2):
                parent.append(_hash_node(current[index], current[index + 1]))
            if len(current) % 2:
                parent.append(current[-1])
            self.levels.append(parent)

    @property
    def root(self) -> bytes:
        return self.levels[-1][0]

    @property
    def depth(self) -> int:
        return len(self.levels) - 1

    def prove(self, leaf_index: int) -> MerkleProof:
        if not 0 <= leaf_index < len(self.leaves):
            raise IndexError(f"leaf {leaf_index} out of range")
        siblings = []
        directions = []
        index = leaf_index
        for level in self.levels[:-1]:
            sibling_index = index ^ 1
            if sibling_index < len(level):
                siblings.append(level[sibling_index])
                directions.append(bool(index & 1))
            index >>= 1
        return MerkleProof(
            leaf_index=leaf_index,
            leaf_data=self.leaves[leaf_index],
            siblings=tuple(siblings),
            directions=tuple(directions),
        )


def verify_merkle_proof(root: bytes, proof: MerkleProof) -> bool:
    """Stateless verification (what the Sia-style contract runs on chain)."""
    current = _hash_leaf(proof.leaf_data)
    for sibling, is_right in zip(proof.siblings, proof.directions):
        if is_right:
            current = _hash_node(sibling, current)
        else:
            current = _hash_node(current, sibling)
    return current == root
