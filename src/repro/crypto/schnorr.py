"""Schnorr signatures over BN254 G1 (the paper's reference [28]).

The Sigma-protocol masking at the heart of the paper *is* Schnorr's
identification protocol transplanted onto the pairing structure; this
module implements the classic signature scheme itself, which the chain
substrate uses to authenticate transactions (a real deployment's senders
are signatures, not honesty).

Scheme (Fiat-Shamir over G1):

    keygen:  sk = x,  pk = g1^x
    sign:    k <-$ Zr,  R = g1^k,  e = H(R || pk || m),  s = k + e*x
    verify:  g1^s == R * pk^e
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .bn254 import CURVE_ORDER, G1Point, g1_from_bytes, g1_to_bytes
from .bn254.msm import FixedBaseMul
from .field import random_scalar

_G1_TABLE: FixedBaseMul | None = None


def _generator_table() -> FixedBaseMul:
    global _G1_TABLE
    if _G1_TABLE is None:
        _G1_TABLE = FixedBaseMul(G1Point.generator())
    return _G1_TABLE


def _challenge(nonce_point: G1Point, public: G1Point, message: bytes) -> int:
    digest = hashlib.sha256(
        b"SCHNORR-BN254"
        + g1_to_bytes(nonce_point)
        + g1_to_bytes(public)
        + message
    ).digest()
    wide = digest + hashlib.sha256(digest).digest()
    return int.from_bytes(wide, "big") % CURVE_ORDER


@dataclass(frozen=True)
class Signature:
    nonce_point: G1Point  # R
    s: int

    def to_bytes(self) -> bytes:
        return g1_to_bytes(self.nonce_point) + self.s.to_bytes(32, "big")

    @staticmethod
    def from_bytes(data: bytes) -> "Signature":
        if len(data) != 64:
            raise ValueError("Schnorr signature must be 64 bytes")
        s = int.from_bytes(data[32:], "big")
        if s >= CURVE_ORDER:
            raise ValueError("signature scalar not canonical")
        return Signature(nonce_point=g1_from_bytes(data[:32]), s=s)


@dataclass(frozen=True)
class SigningKey:
    secret: int

    @staticmethod
    def generate(rng=None) -> "SigningKey":
        return SigningKey(secret=random_scalar(rng))

    @property
    def public(self) -> "VerifyingKey":
        return VerifyingKey(point=_generator_table().mul(self.secret))

    def sign(self, message: bytes, rng=None) -> Signature:
        nonce = random_scalar(rng)
        nonce_point = _generator_table().mul(nonce)
        e = _challenge(nonce_point, self.public.point, message)
        s = (nonce + e * self.secret) % CURVE_ORDER
        return Signature(nonce_point=nonce_point, s=s)


@dataclass(frozen=True)
class VerifyingKey:
    point: G1Point

    def verify(self, message: bytes, signature: Signature) -> bool:
        e = _challenge(signature.nonce_point, self.point, message)
        lhs = _generator_table().mul(signature.s)
        rhs = signature.nonce_point + self.point * e
        return lhs == rhs

    def to_bytes(self) -> bytes:
        return g1_to_bytes(self.point)

    @staticmethod
    def from_bytes(data: bytes) -> "VerifyingKey":
        return VerifyingKey(point=g1_from_bytes(data))

    def address(self) -> str:
        """Ethereum-style address: hash of the public key."""
        return "0x" + hashlib.sha256(b"ADDR" + self.to_bytes()).hexdigest()[:40]


def verify_batch(
    items: list[tuple[VerifyingKey, bytes, Signature]], rng=None
) -> bool:
    """Verify many (key, message, signature) triples with one MSM.

    Small-exponent batching (the same trick as the protocol's batch audit
    verification): for random 128-bit rho_i,

        g1^{sum rho_i s_i} == sum rho_i R_i + sum rho_i e_i pk_i

    holds iff every signature verifies, except with probability ~2^-128.
    One n-term MSM replaces n independent verifications — this is how a
    block full of signed transactions is validated efficiently.
    """
    import secrets

    from .bn254.msm import multi_scalar_mul

    if not items:
        return True
    weights = [1] + [
        (secrets.randbits(128) if rng is None else rng.getrandbits(128)) | 1
        for _ in range(len(items) - 1)
    ]
    combined_s = 0
    points: list[G1Point] = []
    scalars: list[int] = []
    for weight, (key, message, signature) in zip(weights, items):
        e = _challenge(signature.nonce_point, key.point, message)
        combined_s = (combined_s + weight * signature.s) % CURVE_ORDER
        points.append(signature.nonce_point)
        scalars.append(weight)
        points.append(key.point)
        scalars.append(weight * e % CURVE_ORDER)
    lhs = _generator_table().mul(combined_s)
    rhs = multi_scalar_mul(points, scalars)
    return lhs == rhs
