"""Pseudo-random function and permutation (paper Definition 2).

The smart contract publishes only 48 bytes of randomness per challenge
(``C1``, ``C2``, ``r``); the storage provider and verifier expand it
deterministically:

* ``pi : {0,1}^lambda x {0,1}^log n -> {0,1}^k`` — a small-domain PRP keyed
  by ``C1`` selecting ``k`` *distinct* chunk indices.  Implemented as a
  4-round Feistel network with cycle-walking, so it is a true permutation of
  ``[0, domain)`` for any domain size.
* ``f : {0,1}^lambda -> Zp^k`` — an HMAC-SHA256 PRF keyed by ``C2`` deriving
  the challenge coefficients ``c_i``.
"""

from __future__ import annotations

import hashlib
import hmac

from .bn254.constants import CURVE_ORDER as R


class Prf:
    """HMAC-SHA256 based PRF into Zr."""

    def __init__(self, key: bytes):
        self.key = key

    def scalar(self, index: int) -> int:
        """c_index in Zr (wide reduction keeps bias below 2^-250)."""
        raw = hmac.new(self.key, index.to_bytes(8, "big") + b"\x00", hashlib.sha256)
        wide = raw.digest() + hmac.new(
            self.key, index.to_bytes(8, "big") + b"\x01", hashlib.sha256
        ).digest()
        return int.from_bytes(wide, "big") % R

    def scalars(self, count: int) -> list[int]:
        return [self.scalar(index) for index in range(count)]


class FeistelPrp:
    """Keyed permutation of ``[0, domain)`` via Feistel + cycle-walking.

    The Feistel network permutes ``[0, 2^(2*half_bits))``; indices that land
    outside ``[0, domain)`` are re-encrypted until they fall inside
    (cycle-walking), which preserves the permutation property exactly.
    """

    ROUNDS = 4

    def __init__(self, key: bytes, domain: int):
        if domain < 1:
            raise ValueError("domain must be positive")
        self.key = key
        self.domain = domain
        self.half_bits = max(1, (domain - 1).bit_length() + 1) // 2 + 1
        self.half_mask = (1 << self.half_bits) - 1
        self.width = 1 << (2 * self.half_bits)

    def _round(self, round_index: int, value: int) -> int:
        message = round_index.to_bytes(1, "big") + value.to_bytes(8, "big")
        digest = hmac.new(self.key, message, hashlib.sha256).digest()
        return int.from_bytes(digest[:8], "big") & self.half_mask

    def _feistel(self, value: int) -> int:
        left = value >> self.half_bits
        right = value & self.half_mask
        for round_index in range(self.ROUNDS):
            left, right = right, left ^ self._round(round_index, right)
        return (left << self.half_bits) | right

    def permute(self, index: int) -> int:
        """Image of ``index`` under the permutation of [0, domain)."""
        if not 0 <= index < self.domain:
            raise ValueError(f"index {index} outside domain [0, {self.domain})")
        value = index
        while True:
            value = self._feistel(value)
            if value < self.domain:
                return value

    def sample_indices(self, count: int) -> list[int]:
        """The first ``count`` images: k distinct indices in [0, domain)."""
        count = min(count, self.domain)
        return [self.permute(i) for i in range(count)]
