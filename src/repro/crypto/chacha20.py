"""ChaCha20 stream cipher (RFC 7539) in pure Python.

The DSN storage substrate encrypts every data block at the owner side before
outsourcing (paper Section III-A: "encryption is a mandatory action taken on
the side of the data owner").  ChaCha20 is the cipher of choice here because
it is practical to implement honestly in pure Python, unlike AES.

A deterministic (convergent) mode derives the key from the plaintext digest,
modelling the deduplication-friendly "deterministic encryption" that the
paper's privacy analysis (Section I, challenges) warns makes on-chain leakage
brute-forceable — the attack demo in ``examples/onchain_privacy_attack.py``
exploits exactly that.
"""

from __future__ import annotations

import hashlib
import struct

_MASK = 0xFFFFFFFF


def _rotl(value: int, count: int) -> int:
    return ((value << count) | (value >> (32 - count))) & _MASK


def _quarter(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte keystream block (RFC 7539 section 2.3)."""
    if len(key) != 32:
        raise ValueError("key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("nonce must be 12 bytes")
    constants = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
    state = list(constants)
    state += list(struct.unpack("<8L", key))
    state.append(counter & _MASK)
    state += list(struct.unpack("<3L", nonce))
    working = state.copy()
    for _ in range(10):
        _quarter(working, 0, 4, 8, 12)
        _quarter(working, 1, 5, 9, 13)
        _quarter(working, 2, 6, 10, 14)
        _quarter(working, 3, 7, 11, 15)
        _quarter(working, 0, 5, 10, 15)
        _quarter(working, 1, 6, 11, 12)
        _quarter(working, 2, 7, 8, 13)
        _quarter(working, 3, 4, 9, 14)
    out = [(working[i] + state[i]) & _MASK for i in range(16)]
    return struct.pack("<16L", *out)


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, counter: int = 1) -> bytes:
    """Encrypt/decrypt ``data`` (XOR with the keystream, RFC 7539 2.4)."""
    out = bytearray(len(data))
    for block_index in range(0, len(data), 64):
        keystream = chacha20_block(key, counter + block_index // 64, nonce)
        chunk = data[block_index : block_index + 64]
        for offset, byte in enumerate(chunk):
            out[block_index + offset] = byte ^ keystream[offset]
    return bytes(out)


def convergent_key(plaintext: bytes) -> bytes:
    """Deduplication-friendly deterministic key: H(plaintext).

    Convergent encryption lets two owners of the same file produce the same
    ciphertext (enabling provider-side dedup) at the cost of the
    confirmation-of-file attacks the paper's threat analysis cites.
    """
    return hashlib.sha256(b"REPRO-CONVERGENT" + plaintext).digest()


def derive_nonce(context: bytes) -> bytes:
    return hashlib.sha256(b"REPRO-NONCE" + context).digest()[:12]
