"""Multi-scalar multiplication (Pippenger's bucket method).

Proof generation is MSM-bound: the aggregated authenticator is a k-term MSM
over the challenged chunks' sigmas and the KZG witness is an (s-1)-term MSM
over the public powers of alpha.  Pippenger turns ``n`` scalar
multiplications into roughly ``256/c * (n + 2^c)`` group additions; the
ablation bench ``bench_ablation_msm`` quantifies the win over naive
double-and-add.

Works for both G1 and G2 (duck-typed on the point API).
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence, TypeVar

from ...obs.hotpath import HOTPATH
from .constants import CURVE_ORDER
from .curve import G1Point, G2Point

PointT = TypeVar("PointT", G1Point, G2Point)

_EMPTY_MSM_MESSAGE = (
    "multi_scalar_mul over zero points is ambiguous (the function is "
    "duck-typed over G1 and G2); pass identity=G1Point.infinity() or "
    "identity=G2Point.infinity() to state which group's identity you want"
)


def _window_size(count: int) -> int:
    if count < 4:
        return 1
    if count < 32:
        return 3
    bits = count.bit_length()
    return min(16, max(4, bits - 2))


def multi_scalar_mul(
    points: Sequence[PointT],
    scalars: Sequence[int],
    identity: PointT | None = None,
) -> PointT:
    """Compute sum_i scalars[i] * points[i].

    Empty input is rejected unless the caller states which group it is
    aggregating in by passing ``identity`` (the group's infinity point),
    which is then returned.  The old behaviour of silently returning *G1*
    infinity was a footgun for G2 callers.
    """
    if HOTPATH.enabled:
        t0 = perf_counter()
        result = _multi_scalar_mul(points, scalars, identity)
        HOTPATH.add("bn254.msm", perf_counter() - t0)
        return result
    return _multi_scalar_mul(points, scalars, identity)


def _multi_scalar_mul(
    points: Sequence[PointT],
    scalars: Sequence[int],
    identity: PointT | None = None,
) -> PointT:
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have the same length")
    if not points:
        if identity is None:
            raise ValueError(_EMPTY_MSM_MESSAGE)
        return identity
    infinity = type(points[0]).infinity()
    reduced = [s % CURVE_ORDER for s in scalars]
    pairs = [(p, s) for p, s in zip(points, reduced) if s and not p.is_infinity()]
    if not pairs:
        return infinity
    if len(pairs) == 1:
        point, scalar = pairs[0]
        return point * scalar
    window = _window_size(len(pairs))
    windows = (CURVE_ORDER.bit_length() + window - 1) // window
    mask = (1 << window) - 1
    result = infinity
    for window_index in range(windows - 1, -1, -1):
        if not result.is_infinity():
            for _ in range(window):
                result = result.double()
        shift = window_index * window
        buckets: list[PointT | None] = [None] * mask
        for point, scalar in pairs:
            digit = (scalar >> shift) & mask
            if digit:
                current = buckets[digit - 1]
                buckets[digit - 1] = point if current is None else current + point
        running = infinity
        window_sum = infinity
        for bucket in reversed(buckets):
            if bucket is not None:
                running = running + bucket
            window_sum = window_sum + running
        result = result + window_sum
    return result


class FixedBaseMul:
    """Fixed-base scalar multiplication with a precomputed window table.

    Authenticator generation performs one ``g1 * M_i(alpha)`` per chunk with
    the *same* base; amortising the precomputation brings the per-chunk cost
    from ~256 doublings down to ~64 additions.  Also used by the verifier
    for ``g1^(-y')``.
    """

    def __init__(self, base: PointT, window: int = 4):
        if window < 1 or window > 8:
            raise ValueError("window must be between 1 and 8")
        self.base = base
        self.window = window
        bits = CURVE_ORDER.bit_length()
        rows = (bits + window - 1) // window
        self._table: list[list[PointT]] = []
        row_base = base
        for _ in range(rows):
            row = [row_base]
            for _ in range((1 << window) - 2):
                row.append(row[-1] + row_base)
            self._table.append(row)
            for _ in range(window):
                row_base = row_base.double()

    def mul(self, scalar: int) -> PointT:
        if HOTPATH.enabled:
            t0 = perf_counter()
            result = self._mul(scalar)
            HOTPATH.add("bn254.msm", perf_counter() - t0)
            return result
        return self._mul(scalar)

    def _mul(self, scalar: int) -> PointT:
        scalar %= CURVE_ORDER
        result = type(self.base).infinity()
        mask = (1 << self.window) - 1
        row_index = 0
        while scalar:
            digit = scalar & mask
            if digit:
                result = result + self._table[row_index][digit - 1]
            scalar >>= self.window
            row_index += 1
        return result


def multi_scalar_mul_naive(
    points: Sequence[PointT],
    scalars: Sequence[int],
    identity: PointT | None = None,
) -> PointT:
    """Reference implementation: independent scalar mults, summed.

    Kept for correctness testing and the MSM ablation benchmark.  Follows
    the same empty-input contract as :func:`multi_scalar_mul`.
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have the same length")
    if not points:
        if identity is None:
            raise ValueError(_EMPTY_MSM_MESSAGE)
        return identity
    result = type(points[0]).infinity()
    for point, scalar in zip(points, scalars):
        result = result + point * scalar
    return result
