"""Multi-scalar multiplication (signed-digit Pippenger + interleaved wNAF).

Proof generation is MSM-bound: the aggregated authenticator is a k-term MSM
over the challenged chunks' sigmas and the KZG witness is an (s-1)-term MSM
over the public powers of alpha.  Three fast paths, all bit-identical to the
naive reference (exact mod-p arithmetic commutes with re-association):

* small inputs use interleaved signed wNAF (Straus): one shared doubling
  chain plus per-point odd-multiple tables, batch-normalized to affine so
  every add is a mixed add;
* large G1 inputs use Pippenger with signed windowed-NAF digits (halving the
  bucket count — negation is free in affine form) and batch-affine bucket
  accumulation: bucket adds run on affine coordinates with one Montgomery
  simultaneous inversion per round instead of a full Jacobian add each;
* large G2 inputs use the same signed digits with Jacobian buckets fed by
  mixed adds over batch-normalized affine inputs.

``bench_ablation_msm`` and ``bench_crypto_speed`` quantify the win over
naive double-and-add.  Works for both G1 and G2 (duck-typed point API).
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence, TypeVar

from ...obs.hotpath import HOTPATH
from .constants import (
    CURVE_ORDER,
    FIELD_MODULUS as P,
    GLV_A1,
    GLV_A2,
    GLV_B1,
    GLV_B2,
    GLV_BETA,
)
from .curve import G1Point, G2Point

PointT = TypeVar("PointT", G1Point, G2Point)

_EMPTY_MSM_MESSAGE = (
    "multi_scalar_mul over zero points is ambiguous (the function is "
    "duck-typed over G1 and G2); pass identity=G1Point.infinity() or "
    "identity=G2Point.infinity() to state which group's identity you want"
)

# Below this count the interleaved-wNAF path beats bucket setup costs.
# Measured crossover vs signed Pippenger on this backend is ~n=100 for both
# groups (see bench_crypto_speed).
WNAF_CUTOFF = 96

# Bucket lists are 2^(w-1) entries per window pass; cap the window so a
# pathological count can never allocate a 65k-slot list (the old schedule's
# ``min(16, ...)`` did exactly that).  Window 12 = 2048 buckets, already past
# the point where doubling-chain savings stop paying for bucket overhead at
# any n this system produces.
MAX_WINDOW = 12


def _window_size(count: int) -> int:
    """Signed-Pippenger window for ``count`` points.

    Contribution adds are batch-affine (~0.3x a Jacobian add) while the
    final running-sum reduce pays ~2 Jacobian adds per bucket, so the cost
    model is ``ceil(254/w) * (0.3n + 2 * 2^(w-1))`` — the minimiser sits
    near ``log2(n)/2 + 1``, well below the textbook ``log2(n)`` for
    all-Jacobian buckets.  Measured crossovers: n=64 -> 4, n=256 -> 5,
    n=1024 -> 6 (asserted in ``tests/crypto/test_msm.py``).
    """
    if count < 4:
        return 2
    return min(MAX_WINDOW, max(4, count.bit_length() // 2 + 1))


def _neg_y(y):
    """Negate an affine y-coordinate (int for G1, Fp2 for G2)."""
    if isinstance(y, int):
        return (P - y) % P
    return -y


def _glv_split(k: int) -> tuple[int, int]:
    """GLV decomposition: k = k1 + k2*lambda (mod r), |k1|,|k2| < 2^127.

    Babai rounding against the short lattice vectors (GLV_A1, GLV_B1),
    (GLV_A2, GLV_B2); the halved scalar length halves every doubling chain
    and window pass in the G1 MSM paths (phi costs one Fp mult per lookup).
    """
    c1 = (2 * GLV_B2 * k + CURVE_ORDER) // (2 * CURVE_ORDER)
    c2 = (-2 * GLV_B1 * k + CURVE_ORDER) // (2 * CURVE_ORDER)
    return k - c1 * GLV_A1 - c2 * GLV_A2, -c1 * GLV_B1 - c2 * GLV_B2


# Safe bit budget for a GLV half-scalar (theory bound is ~2^127).
_GLV_BITS = 130


# -- raw Jacobian kernels (G1 hot loops) -------------------------------------
#
# The G1 inner loops run on plain int coordinate triples instead of G1Point
# objects: no allocation, no attribute lookups, one tuple per step.  z == 0
# encodes infinity.  Formulas are the same dbl-2009-l / madd-2007-bl /
# add-2007-bl used by curve.py — exact mod-p arithmetic keeps results
# bit-identical once normalized to affine.


def _jac_double(x1: int, y1: int, z1: int) -> tuple[int, int, int]:
    a = x1 * x1 % P
    b = y1 * y1 % P
    c = b * b % P
    d = 2 * ((x1 + b) * (x1 + b) - a - c) % P
    e = 3 * a
    x3 = (e * e - 2 * d) % P
    y3 = (e * (d - x3) - 8 * c) % P
    z3 = 2 * y1 * z1 % P
    return x3, y3, z3


def _jac_add_affine(
    x1: int, y1: int, z1: int, ax: int, ay: int
) -> tuple[int, int, int]:
    if z1 == 0:
        return ax, ay % P, 1
    z1z1 = z1 * z1 % P
    u2 = ax * z1z1 % P
    s2 = ay * z1 % P * z1z1 % P
    h = (u2 - x1) % P
    rr = 2 * (s2 - y1) % P
    if h == 0:
        if rr == 0:
            return _jac_double(x1, y1, z1)
        return 0, 1, 0
    hh = h * h % P
    i = 4 * hh
    j = h * i % P
    v = x1 * i % P
    x3 = (rr * rr - j - 2 * v) % P
    y3 = (rr * (v - x3) - 2 * y1 * j) % P
    z3 = ((z1 + h) * (z1 + h) - z1z1 - hh) % P
    return x3, y3, z3


def _jac_add(
    x1: int, y1: int, z1: int, x2: int, y2: int, z2: int
) -> tuple[int, int, int]:
    if z1 == 0:
        return x2, y2, z2
    if z2 == 0:
        return x1, y1, z1
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2 % P * z2z2 % P
    s2 = y2 * z1 % P * z1z1 % P
    h = (u2 - u1) % P
    rr = 2 * (s2 - s1) % P
    if h == 0:
        if rr == 0:
            return _jac_double(x1, y1, z1)
        return 0, 1, 0
    i = 4 * h * h % P
    j = h * i % P
    v = u1 * i % P
    x3 = (rr * rr - j - 2 * v) % P
    y3 = (rr * (v - x3) - 2 * s1 * j) % P
    z3 = ((z1 + z2) * (z1 + z2) - z1z1 - z2z2) % P * h % P
    return x3, y3, z3


def _batch_inverse(values: list[int]) -> list[int]:
    """Montgomery simultaneous inversion of nonzero ints mod ``P``."""
    n = len(values)
    prefix = [1] * (n + 1)
    for i, v in enumerate(values):
        prefix[i + 1] = prefix[i] * v % P
    acc = pow(prefix[n], -1, P)
    out = [0] * n
    for i in range(n - 1, -1, -1):
        out[i] = prefix[i] * acc % P
        acc = acc * values[i] % P
    return out


def _to_affine_batch_raw(
    triples: list[tuple[int, int, int]]
) -> list[tuple[int, int]]:
    """Normalize raw Jacobian triples (z != 0) with one shared inversion."""
    n = len(triples)
    prefix = [1] * (n + 1)
    for i, triple in enumerate(triples):
        prefix[i + 1] = prefix[i] * triple[2] % P
    acc = pow(prefix[n], -1, P)
    out: list[tuple[int, int]] = [None] * n  # type: ignore[list-item]
    for i in range(n - 1, -1, -1):
        x, y, z = triples[i]
        zinv = prefix[i] * acc % P
        acc = acc * z % P
        zinv2 = zinv * zinv % P
        out[i] = (x * zinv2 % P, y * zinv2 % P * zinv % P)
    return out


def _signed_digits(scalar: int, window: int, num_windows: int) -> list[int]:
    """Base-2^w digits recoded into the signed range [-2^(w-1), 2^(w-1)]."""
    mask = (1 << window) - 1
    half = 1 << (window - 1)
    full = 1 << window
    digits = [0] * num_windows
    carry = 0
    for i in range(num_windows):
        d = ((scalar >> (i * window)) & mask) + carry
        if d > half:
            d -= full
            carry = 1
        else:
            carry = 0
        digits[i] = d
    return digits


def _wnaf(scalar: int, width: int) -> list[int]:
    """Width-``w`` non-adjacent form; digits odd in (-2^(w-1), 2^(w-1)).

    Zero runs are skipped in one step (count trailing zeros, extend, shift)
    so the loop runs once per *nonzero* digit — ~bits/(w+1) iterations
    instead of bits.
    """
    digits: list[int] = []
    half = 1 << (width - 1)
    full = 1 << width
    while scalar:
        if not scalar & 1:
            shift = (scalar & -scalar).bit_length() - 1
            digits.extend([0] * shift)
            scalar >>= shift
        d = scalar & (full - 1)
        if d >= half:
            d -= full
        scalar -= d
        digits.append(d)
        scalar >>= 1
        # After a nonzero digit the next w-1 low bits are zero by
        # construction; emit them without re-testing.
        if scalar:
            digits.extend([0] * (width - 1))
            scalar >>= width - 1
    return digits


def multi_scalar_mul(
    points: Sequence[PointT],
    scalars: Sequence[int],
    identity: PointT | None = None,
) -> PointT:
    """Compute sum_i scalars[i] * points[i].

    Empty input is rejected unless the caller states which group it is
    aggregating in by passing ``identity`` (the group's infinity point),
    which is then returned.  The old behaviour of silently returning *G1*
    infinity was a footgun for G2 callers.
    """
    if HOTPATH.enabled:
        t0 = perf_counter()
        result = _multi_scalar_mul(points, scalars, identity)
        HOTPATH.add("bn254.msm", perf_counter() - t0)
        return result
    return _multi_scalar_mul(points, scalars, identity)


def _multi_scalar_mul(
    points: Sequence[PointT],
    scalars: Sequence[int],
    identity: PointT | None = None,
) -> PointT:
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have the same length")
    if not points:
        if identity is None:
            raise ValueError(_EMPTY_MSM_MESSAGE)
        return identity
    infinity = type(points[0]).infinity()
    reduced = [s % CURVE_ORDER for s in scalars]
    pairs = [(p, s) for p, s in zip(points, reduced) if s and not p.is_infinity()]
    if not pairs:
        return infinity
    if len(pairs) == 1:
        point, scalar = pairs[0]
        return point * scalar
    is_g1 = isinstance(pairs[0][0], G1Point)
    if len(pairs) < WNAF_CUTOFF:
        # Width 5 pays for its doubled tables once enough streams share the
        # doubling chain (measured crossover ~16 points).
        width = 5 if len(pairs) >= 16 else 4
        if is_g1:
            return _msm_wnaf_g1(pairs, width=width)
        return _msm_wnaf(pairs, width=width)
    if is_g1:
        return _msm_g1_signed(pairs)
    return _msm_signed_jacobian(pairs)


def multi_scalar_mul_tables(
    points: Sequence[G1Point],
    scalars: Sequence[int],
    tables: Sequence[list[tuple[int, int]] | None],
    identity: G1Point | None = None,
) -> G1Point:
    """G1 MSM reusing precomputed per-point wNAF tables where provided.

    ``tables[i]`` is the affine odd-multiple table of ``points[i]`` (from
    :func:`wnaf_table_g1`) or ``None`` to build one on the fly.  Exact same
    group element as :func:`multi_scalar_mul` — only table reuse differs.
    """
    if HOTPATH.enabled:
        t0 = perf_counter()
        result = _multi_scalar_mul_tables(points, scalars, tables, identity)
        HOTPATH.add("bn254.msm", perf_counter() - t0)
        return result
    return _multi_scalar_mul_tables(points, scalars, tables, identity)


def _multi_scalar_mul_tables(
    points: Sequence[G1Point],
    scalars: Sequence[int],
    tables: Sequence[list[tuple[int, int]] | None],
    identity: G1Point | None = None,
) -> G1Point:
    if not (len(points) == len(scalars) == len(tables)):
        raise ValueError("points, scalars and tables must have equal length")
    if not points:
        if identity is None:
            raise ValueError(_EMPTY_MSM_MESSAGE)
        return identity
    reduced = [s % CURVE_ORDER for s in scalars]
    kept = [
        (p, s, t)
        for p, s, t in zip(points, reduced, tables)
        if s and not p.is_infinity()
    ]
    if not kept:
        return G1Point.infinity()
    pairs = [(p, s) for p, s, _ in kept]
    if len(pairs) >= WNAF_CUTOFF:
        return _msm_g1_signed(pairs)
    width = 5 if len(pairs) >= 16 else 4
    return _msm_wnaf_g1(pairs, width=width, tables=[t for _, _, t in kept])


def _msm_wnaf(pairs: list[tuple[PointT, int]], width: int = 4) -> PointT:
    """Interleaved signed wNAF: shared doubling chain, mixed adds."""
    cls = type(pairs[0][0])
    table_size = 1 << (width - 2)
    flat: list[PointT] = []
    for point, _ in pairs:
        step = point.double()
        entry = point
        flat.append(entry)
        for _ in range(table_size - 1):
            entry = entry + step
            flat.append(entry)
    affine = cls.to_affine_batch(flat)
    nafs = [_wnaf(scalar, width) for _, scalar in pairs]
    top = max(len(naf) for naf in nafs)
    result = cls.infinity()
    for bit in range(top - 1, -1, -1):
        if not result.is_infinity():
            result = result.double()
        for j, naf in enumerate(nafs):
            if bit >= len(naf):
                continue
            d = naf[bit]
            if d == 0:
                continue
            if d > 0:
                ax, ay = affine[j * table_size + (d - 1) // 2]
                result = result.add_affine(ax, ay)
            else:
                ax, ay = affine[j * table_size + (-d - 1) // 2]
                result = result.add_affine(ax, _neg_y(ay))
    return result


def wnaf_table_g1(point: G1Point, width: int) -> list[tuple[int, int]]:
    """Affine odd multiples P, 3P, .., (2^(width-1)-1)P of a G1 point.

    The cacheable half of the wNAF MSM: fixed points (block digests,
    authenticators, the generator) reuse these across epochs via
    :class:`~repro.crypto.bn254.precompute.PrecomputeCache`.
    """
    entry = (point.x, point.y, point.z)
    step = _jac_double(*entry)
    flat = [entry]
    for _ in range((1 << (width - 2)) - 1):
        flat.append(_jac_add(*flat[-1], *step))
    return _to_affine_batch_raw(flat)


def _msm_wnaf_g1(
    pairs: list[tuple[G1Point, int]],
    width: int = 4,
    tables: list[list[tuple[int, int]] | None] | None = None,
) -> G1Point:
    """G1 interleaved wNAF: GLV-split scalars on a half-length shared
    doubling chain, raw-int Jacobian kernels, batch-normalized tables.

    ``tables`` may supply precomputed odd-multiple tables for a subset of
    the points (entry ``None`` = build here).  Cached tables may be wider
    than ``width``; each digit stream uses its own table's width.
    """
    table_size = 1 << (width - 2)
    flat: list[tuple[int, int, int]] = []
    build_indices: list[int] = []
    for j, (point, _) in enumerate(pairs):
        if tables is not None and tables[j] is not None:
            continue
        build_indices.append(j)
        entry = (point.x, point.y, point.z)
        step = _jac_double(*entry)
        flat.append(entry)
        for _ in range(table_size - 1):
            entry = _jac_add(*entry, *step)
            flat.append(entry)
    affine = _to_affine_batch_raw(flat) if flat else []
    built: dict[int, list[tuple[int, int]]] = {
        j: affine[k * table_size : (k + 1) * table_size]
        for k, j in enumerate(build_indices)
    }
    # One digit stream per GLV half-scalar; phi maps the shared table by
    # one Fp mult per entry (x -> beta*x), so k2 rides the same chain.
    streams: list[tuple[list[tuple[int, int]], bool, list[int]]] = []
    for j, (_, scalar) in enumerate(pairs):
        base_tab = built.get(j)
        if base_tab is None:
            base_tab = tables[j]  # type: ignore[index]
        w = len(base_tab).bit_length() + 1  # 2^(w-2) entries -> width w
        k1, k2 = _glv_split(scalar)
        if k1:
            streams.append((base_tab, k1 < 0, _wnaf(abs(k1), w)))
        if k2:
            phi_tab = [(GLV_BETA * x % P, y) for x, y in base_tab]
            streams.append((phi_tab, k2 < 0, _wnaf(abs(k2), w)))
    if not streams:
        return G1Point.infinity()
    top = max(len(naf) for _, _, naf in streams)
    rx = ry = rz = 0
    for bit in range(top - 1, -1, -1):
        if rz:
            rx, ry, rz = _jac_double(rx, ry, rz)
        for tab, neg, naf in streams:
            if bit >= len(naf):
                continue
            d = naf[bit]
            if d == 0:
                continue
            ax, ay = tab[(d - 1) // 2 if d > 0 else (-d - 1) // 2]
            if (d < 0) != neg:
                ay = P - ay
            rx, ry, rz = _jac_add_affine(rx, ry, rz, ax, ay)
    if rz == 0:
        return G1Point.infinity()
    return G1Point._raw(rx, ry, rz)


def _per_window_contributions(
    pairs: list[tuple[PointT, int]], window: int
) -> tuple[list[list[tuple]], int, int]:
    """Signed-digit bucket contributions (bucket, ax, ay) per window pass."""
    cls = type(pairs[0][0])
    half = 1 << (window - 1)
    affine = cls.to_affine_batch([p for p, _ in pairs])
    num_windows = (CURVE_ORDER.bit_length() + window) // window + 1
    per_window: list[list[tuple]] = [[] for _ in range(num_windows)]
    for (_, scalar), (ax, ay) in zip(pairs, affine):
        for i, d in enumerate(_signed_digits(scalar, window, num_windows)):
            if d > 0:
                per_window[i].append((d, ax, ay))
            elif d < 0:
                per_window[i].append((-d, ax, _neg_y(ay)))
    return per_window, num_windows, half


def _bucket_reduce(result: PointT, buckets, half: int, window: int) -> PointT:
    """Fold affine bucket sums into ``result`` via the running-sum trick."""
    if not result.is_infinity():
        for _ in range(window):
            result = result.double()
    infinity = type(result).infinity()
    running = infinity
    window_sum = infinity
    for b in range(half, 0, -1):
        entry = buckets[b]
        if entry is not None:
            if isinstance(entry, tuple):
                running = running.add_affine(*entry)
            else:
                running = running + entry
        if not running.is_infinity():
            window_sum = window_sum + running
    return result + window_sum


def _msm_g1_signed(pairs: list[tuple[G1Point, int]]) -> G1Point:
    """Signed Pippenger over G1: GLV-split half-scalars (halving the window
    passes), batch-affine bucket accumulation, raw-int running sums."""
    affine = G1Point.to_affine_batch([p for p, _ in pairs])
    effective: list[tuple[int, int, int]] = []
    for (ax, ay), (_, scalar) in zip(affine, pairs):
        k1, k2 = _glv_split(scalar)
        if k1:
            effective.append((ax, ay if k1 > 0 else (P - ay) % P, abs(k1)))
        if k2:
            effective.append(
                (GLV_BETA * ax % P, ay if k2 > 0 else (P - ay) % P, abs(k2))
            )
    window = _window_size(len(effective))
    half = 1 << (window - 1)
    num_windows = (_GLV_BITS + window - 1) // window + 1
    per_window: list[list[tuple[int, int, int]]] = [[] for _ in range(num_windows)]
    for ax, ay, k in effective:
        for i, d in enumerate(_signed_digits(k, window, num_windows)):
            if d > 0:
                per_window[i].append((d, ax, ay))
            elif d < 0:
                per_window[i].append((-d, ax, (P - ay) % P))
    rx = ry = rz = 0
    for i in range(num_windows - 1, -1, -1):
        if rz:
            for _ in range(window):
                rx, ry, rz = _jac_double(rx, ry, rz)
        contribs = per_window[i]
        if not contribs:
            continue
        buckets = _g1_bucket_accumulate(half, contribs)
        # Running-sum fold on raw coordinates.
        sx = sy = sz = 0
        wx = wy = wz = 0
        for b in range(half, 0, -1):
            entry = buckets[b]
            if entry is not None:
                sx, sy, sz = _jac_add_affine(sx, sy, sz, entry[0], entry[1])
            if sz:
                wx, wy, wz = _jac_add(wx, wy, wz, sx, sy, sz)
        rx, ry, rz = _jac_add(rx, ry, rz, wx, wy, wz)
    if rz == 0:
        return G1Point.infinity()
    return G1Point._raw(rx, ry, rz)


def _g1_bucket_accumulate(
    half: int, contribs: list[tuple[int, int, int]]
) -> list[tuple[int, int] | None]:
    """Accumulate affine contributions into ``half`` buckets.

    Each round schedules at most one pending addition per bucket, shares a
    single Montgomery inversion across every scheduled denominator, and
    applies the affine chord/tangent formulas (2M + 1S each).
    """
    buckets: list[tuple[int, int] | None] = [None] * (half + 1)
    pending = contribs
    while pending:
        later: list[tuple[int, int, int]] = []
        sched: list[tuple[int, int, int, int, int]] = []
        busy: set[int] = set()
        for b, x, y in pending:
            if b in busy:
                later.append((b, x, y))
                continue
            cur = buckets[b]
            if cur is None:
                buckets[b] = (x, y)
                continue
            busy.add(b)
            buckets[b] = None
            sched.append((b, cur[0], cur[1], x, y))
        if sched:
            denoms = []
            for _, x1, y1, x2, y2 in sched:
                if x1 == x2:
                    # Tangent (doubling) or chord through mirror points
                    # (sum = infinity); the placeholder keeps the batch
                    # inversion free of zeros.
                    denoms.append(2 * y1 % P if (y1 + y2) % P else 1)
                else:
                    denoms.append((x2 - x1) % P)
            inverses = _batch_inverse(denoms)
            for (b, x1, y1, x2, y2), inv in zip(sched, inverses):
                if x1 == x2:
                    if (y1 + y2) % P == 0:
                        continue
                    lam = 3 * x1 * x1 % P * inv % P
                else:
                    lam = (y2 - y1) * inv % P
                x3 = (lam * lam - x1 - x2) % P
                y3 = (lam * (x1 - x3) - y1) % P
                later.append((b, x3, y3))
        pending = later
    return buckets


def _msm_signed_jacobian(pairs: list[tuple[PointT, int]]) -> PointT:
    """Signed Pippenger with Jacobian buckets (G2: affine math over Fp2 is
    dominated by the Fp2 mults, so mixed adds into Jacobian buckets win)."""
    cls = type(pairs[0][0])
    window = _window_size(len(pairs))
    per_window, num_windows, half = _per_window_contributions(pairs, window)
    infinity = cls.infinity()
    result = infinity
    for i in range(num_windows - 1, -1, -1):
        contribs = per_window[i]
        if not contribs:
            if not result.is_infinity():
                for _ in range(window):
                    result = result.double()
            continue
        buckets: list[PointT | None] = [None] * (half + 1)
        for b, ax, ay in contribs:
            cur = buckets[b]
            buckets[b] = (infinity if cur is None else cur).add_affine(ax, ay)
        result = _bucket_reduce(result, buckets, half, window)
    return result


class FixedBaseMul:
    """Fixed-base scalar multiplication with a precomputed window table.

    Authenticator generation performs one ``g1 * M_i(alpha)`` per chunk with
    the *same* base; amortising the precomputation brings the per-chunk cost
    from ~256 doublings down to ~64 mixed additions.  Also used by the
    verifier for ``g1^(-y')``.

    The table is built with Jacobian adds, then normalized to affine in one
    Montgomery simultaneous inversion (``to_affine_batch``), so every lookup
    during :meth:`mul` feeds a cheap mixed add.
    """

    def __init__(self, base: PointT, window: int = 4):
        if window < 1 or window > 8:
            raise ValueError("window must be between 1 and 8")
        self.base = base
        self.window = window
        if base.is_infinity():
            self._table: list[list[tuple]] = []
            return
        bits = CURVE_ORDER.bit_length()
        rows = (bits + window - 1) // window
        size = (1 << window) - 1
        if isinstance(base, G1Point):
            raw_flat: list[tuple[int, int, int]] = []
            raw_base = (base.x, base.y, base.z)
            for _ in range(rows):
                raw_entry = raw_base
                raw_flat.append(raw_entry)
                for _ in range(size - 1):
                    raw_entry = _jac_add(*raw_entry, *raw_base)
                    raw_flat.append(raw_entry)
                for _ in range(window):
                    raw_base = _jac_double(*raw_base)
            affine = _to_affine_batch_raw(raw_flat)
        else:
            flat: list[PointT] = []
            row_base = base
            for _ in range(rows):
                entry = row_base
                flat.append(entry)
                for _ in range(size - 1):
                    entry = entry + row_base
                    flat.append(entry)
                for _ in range(window):
                    row_base = row_base.double()
            affine = type(base).to_affine_batch(flat)
        self._table = [affine[r * size : (r + 1) * size] for r in range(rows)]

    @classmethod
    def _from_table(
        cls, base: PointT, window: int, table: list[list[tuple]]
    ) -> "FixedBaseMul":
        """Rebuild from a persisted affine table (G1 only — the rows are
        plain ``(x, y)`` int pairs)."""
        ctx = cls.__new__(cls)
        ctx.base = base
        ctx.window = window
        ctx._table = table
        return ctx

    def mul(self, scalar: int) -> PointT:
        if HOTPATH.enabled:
            t0 = perf_counter()
            result = self._mul(scalar)
            HOTPATH.add("bn254.msm", perf_counter() - t0)
            return result
        return self._mul(scalar)

    def _mul(self, scalar: int) -> PointT:
        scalar %= CURVE_ORDER
        if not self._table:
            return type(self.base).infinity()
        mask = (1 << self.window) - 1
        if isinstance(self.base, G1Point):
            # Raw-int kernel: the per-chunk authenticator path runs this
            # thousands of times per epoch.
            rx = ry = rz = 0
            table = self._table
            row_index = 0
            while scalar:
                digit = scalar & mask
                if digit:
                    ax, ay = table[row_index][digit - 1]
                    rx, ry, rz = _jac_add_affine(rx, ry, rz, ax, ay)
                scalar >>= self.window
                row_index += 1
            if rz == 0:
                return G1Point.infinity()
            return G1Point._raw(rx, ry, rz)
        result = type(self.base).infinity()
        row_index = 0
        while scalar:
            digit = scalar & mask
            if digit:
                result = result.add_affine(*self._table[row_index][digit - 1])
            scalar >>= self.window
            row_index += 1
        return result


def multi_scalar_mul_naive(
    points: Sequence[PointT],
    scalars: Sequence[int],
    identity: PointT | None = None,
) -> PointT:
    """Reference implementation: independent scalar mults, summed.

    Kept for correctness testing and the MSM ablation benchmark.  Follows
    the same empty-input contract as :func:`multi_scalar_mul`.
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have the same length")
    if not points:
        if identity is None:
            raise ValueError(_EMPTY_MSM_MESSAGE)
        return identity
    result = type(points[0]).infinity()
    for point, scalar in zip(points, scalars):
        result = result + point * scalar
    return result
