"""Extension-field tower for BN254: Fp2, Fp6 and Fp12.

The tower is the one used by every production BN254 implementation
(Cloudflare bn256, go-ethereum, gnark, zkcrypto/bn)::

    Fp2  = Fp[u]  / (u^2 + 1)
    Fp6  = Fp2[v] / (v^3 - xi),  xi = 9 + u
    Fp12 = Fp6[w] / (w^2 - v)

Base-field (``Fp``) elements are plain Python ints reduced mod ``p`` — we keep
them unboxed for speed since the whole library is pure Python.  Extension
elements are small ``__slots__`` classes with operator overloading.

Frobenius coefficients are derived numerically at import time from ``xi``
rather than pasted in as magic constants, and are covered by tests comparing
``frobenius(f, k)`` against ``f ** (p**k)``.

The Fp6/Fp12 multiplication and squaring hot paths are *flattened*: they
compute over plain ints with delayed reduction (one ``% p`` per output
coefficient instead of one per intermediate) and construct no intermediate
Fp2/Fp6 objects.  Residues are canonical, so the flattened kernels return
exactly the same values as the schoolbook tower — the crypto differential
tests pin this down bit for bit.
"""

from __future__ import annotations

from .constants import FIELD_MODULUS as P
from .constants import XI_C0, XI_C1

# --------------------------------------------------------------------------
# Flat kernels over (c0, c1) int pairs.
#
# Inputs are reduced (or near-reduced sums of reduced values); outputs are
# UNREDUCED ints the caller must take mod p.  Keeping everything in raw ints
# avoids the per-operation Fp2 allocations that dominate the tower's cost in
# pure Python.
# --------------------------------------------------------------------------


def _f2mul(a0, a1, b0, b1):
    """Karatsuba Fp2 product; unreduced output pair."""
    t0 = a0 * b0
    t1 = a1 * b1
    return t0 - t1, (a0 + a1) * (b0 + b1) - t0 - t1


def _f2sqr(a0, a1):
    """(a0 + a1 u)^2; unreduced output pair."""
    return (a0 + a1) * (a0 - a1), 2 * a0 * a1


def _f2xi(a0, a1):
    """Multiply by xi = 9 + u; unreduced output pair."""
    return XI_C0 * a0 - XI_C1 * a1, XI_C0 * a1 + XI_C1 * a0


def _f6mul(a, b):
    """Flat Fp6 product: a, b are 6-int tuples (c0.c0, c0.c1, c1.c0, c1.c1,
    c2.c0, c2.c1); returns an unreduced 6-int tuple."""
    a00, a01, a10, a11, a20, a21 = a
    b00, b01, b10, b11, b20, b21 = b
    t00, t01 = _f2mul(a00, a01, b00, b01)
    t10, t11 = _f2mul(a10, a11, b10, b11)
    t20, t21 = _f2mul(a20, a21, b20, b21)
    m0, m1 = _f2mul(a10 + a20, a11 + a21, b10 + b20, b11 + b21)
    x0, x1 = _f2xi(m0 - t10 - t20, m1 - t11 - t21)
    c00, c01 = x0 + t00, x1 + t01
    m0, m1 = _f2mul(a00 + a10, a01 + a11, b00 + b10, b01 + b11)
    x0, x1 = _f2xi(t20, t21)
    c10, c11 = m0 - t00 - t10 + x0, m1 - t01 - t11 + x1
    m0, m1 = _f2mul(a00 + a20, a01 + a21, b00 + b20, b01 + b21)
    c20, c21 = m0 - t00 - t20 + t10, m1 - t01 - t21 + t11
    return c00, c01, c10, c11, c20, c21


def _f6sqr(a):
    """Flat Fp6 squaring (same CH-SQR3 sequence as Fp6.square)."""
    a00, a01, a10, a11, a20, a21 = a
    s00, s01 = _f2sqr(a00, a01)
    ab0, ab1 = _f2mul(a00, a01, a10, a11)
    s10, s11 = 2 * ab0, 2 * ab1
    s20, s21 = _f2sqr(a00 - a10 + a20, a01 - a11 + a21)
    bc0, bc1 = _f2mul(a10, a11, a20, a21)
    s30, s31 = 2 * bc0, 2 * bc1
    s40, s41 = _f2sqr(a20, a21)
    x0, x1 = _f2xi(s30, s31)
    c00, c01 = s00 + x0, s01 + x1
    x0, x1 = _f2xi(s40, s41)
    c10, c11 = s10 + x0, s11 + x1
    c20, c21 = s10 + s20 + s30 - s00 - s40, s11 + s21 + s31 - s01 - s41
    return c00, c01, c10, c11, c20, c21


def _f6mulv(a):
    """Flat multiply-by-v: (c0, c1, c2) -> (xi*c2, c0, c1)."""
    a00, a01, a10, a11, a20, a21 = a
    x0, x1 = _f2xi(a20, a21)
    return x0, x1, a00, a01, a10, a11


def _f6add(a, b):
    return tuple(x + y for x, y in zip(a, b))


def _f6sub(a, b):
    return tuple(x - y for x, y in zip(a, b))


# --------------------------------------------------------------------------
# Flat Fp12 kernels over 12-int tuples (c0 flat6 ++ c1 flat6).
#
# Unlike the 2/6 kernels these return REDUCED tuples, so outputs can feed
# straight back in — the GT exponentiation chains (fixed-base windows,
# shared multi-pow ladders) run entirely on these and only materialize an
# Fp12 object at the end.
# --------------------------------------------------------------------------


def _f12mul(a, b):
    """Flat Fp12 product (same Karatsuba-over-Fp6 sequence as Fp12.__mul__).

    Fully unpacked — no slicing or generator glue; this is the single
    hottest GT operation (fixed-base commitment windows, batch multi-pow).
    """
    a00, a01, a02, a03, a04, a05, a10, a11, a12, a13, a14, a15 = a
    b00, b01, b02, b03, b04, b05, b10, b11, b12, b13, b14, b15 = b
    t00, t01, t02, t03, t04, t05 = _f6mul(
        (a00, a01, a02, a03, a04, a05), (b00, b01, b02, b03, b04, b05)
    )
    t10, t11, t12, t13, t14, t15 = _f6mul(
        (a10, a11, a12, a13, a14, a15), (b10, b11, b12, b13, b14, b15)
    )
    m0, m1, m2, m3, m4, m5 = _f6mul(
        (a00 + a10, a01 + a11, a02 + a12, a03 + a13, a04 + a14, a05 + a15),
        (b00 + b10, b01 + b11, b02 + b12, b03 + b13, b04 + b14, b05 + b15),
    )
    x0, x1 = _f2xi(t14, t15)
    return (
        (t00 + x0) % P, (t01 + x1) % P,
        (t02 + t10) % P, (t03 + t11) % P,
        (t04 + t12) % P, (t05 + t13) % P,
        (m0 - t00 - t10) % P, (m1 - t01 - t11) % P,
        (m2 - t02 - t12) % P, (m3 - t03 - t13) % P,
        (m4 - t04 - t14) % P, (m5 - t05 - t15) % P,
    )


def _f12sqr_cyclo(f):
    """Flat Granger-Scott cyclotomic squaring (unitary elements only)."""
    g00, g01, g20, g21, g40, g41, g10, g11, g30, g31, g50, g51 = f
    a20, a21 = _f2sqr(g00, g01)
    b20, b21 = _f2sqr(g30, g31)
    x0, x1 = _f2xi(b20, b21)
    s0, s1 = _f2sqr(g00 + g30, g01 + g31)
    t000, t001 = a20 + x0, a21 + x1
    t110, t111 = s0 - a20 - b20, s1 - a21 - b21
    a20, a21 = _f2sqr(g10, g11)
    b20, b21 = _f2sqr(g40, g41)
    x0, x1 = _f2xi(b20, b21)
    s0, s1 = _f2sqr(g10 + g40, g11 + g41)
    t010, t011 = a20 + x0, a21 + x1
    t120, t121 = s0 - a20 - b20, s1 - a21 - b21
    a20, a21 = _f2sqr(g20, g21)
    b20, b21 = _f2sqr(g50, g51)
    x0, x1 = _f2xi(b20, b21)
    s0, s1 = _f2sqr(g20 + g50, g21 + g51)
    t020, t021 = a20 + x0, a21 + x1
    t100, t101 = _f2xi(s0 - a20 - b20, s1 - a21 - b21)
    return (
        (3 * t000 - 2 * g00) % P, (3 * t001 - 2 * g01) % P,
        (3 * t010 - 2 * g20) % P, (3 * t011 - 2 * g21) % P,
        (3 * t020 - 2 * g40) % P, (3 * t021 - 2 * g41) % P,
        (3 * t100 + 2 * g10) % P, (3 * t101 + 2 * g11) % P,
        (3 * t110 + 2 * g30) % P, (3 * t111 + 2 * g31) % P,
        (3 * t120 + 2 * g50) % P, (3 * t121 + 2 * g51) % P,
    )


def _f12conj(a):
    """Flat conjugation f -> f^(p^6) (= inverse for unitary elements)."""
    return a[:6] + tuple(-x % P for x in a[6:])

# --------------------------------------------------------------------------
# Fp helpers (plain ints)
# --------------------------------------------------------------------------


def fp_inv(a: int) -> int:
    """Inverse in Fp; raises ZeroDivisionError on zero."""
    if a % P == 0:
        raise ZeroDivisionError("zero has no inverse in Fp")
    return pow(a, -1, P)


def fp_sqrt(a: int) -> int | None:
    """Square root in Fp (p = 3 mod 4), or None if ``a`` is a non-residue."""
    a %= P
    if a == 0:
        return 0
    root = pow(a, (P + 1) // 4, P)
    if root * root % P != a:
        return None
    return root


# --------------------------------------------------------------------------
# Fp2
# --------------------------------------------------------------------------


class Fp2:
    """Element c0 + c1*u of Fp2 = Fp[u]/(u^2 + 1)."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: int, c1: int = 0):
        self.c0 = c0 % P
        self.c1 = c1 % P

    # -- constructors ------------------------------------------------------

    @staticmethod
    def zero() -> "Fp2":
        return Fp2(0, 0)

    @staticmethod
    def one() -> "Fp2":
        return Fp2(1, 0)

    # -- predicates --------------------------------------------------------

    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fp2) and self.c0 == other.c0 and self.c1 == other.c1
        )

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    def __repr__(self) -> str:
        return f"Fp2({self.c0}, {self.c1})"

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Fp2") -> "Fp2":
        return Fp2(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Fp2") -> "Fp2":
        return Fp2(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "Fp2":
        return Fp2(-self.c0, -self.c1)

    def __mul__(self, other: "Fp2") -> "Fp2":
        a0, a1 = self.c0, self.c1
        b0, b1 = other.c0, other.c1
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = (a0 + a1) * (b0 + b1)
        return Fp2(t0 - t1, t2 - t0 - t1)

    def square(self) -> "Fp2":
        a0, a1 = self.c0, self.c1
        # (a0 + a1 u)^2 = (a0+a1)(a0-a1) + 2 a0 a1 u
        return Fp2((a0 + a1) * (a0 - a1), 2 * a0 * a1)

    def mul_scalar(self, k: int) -> "Fp2":
        return Fp2(self.c0 * k, self.c1 * k)

    def double(self) -> "Fp2":
        return Fp2(2 * self.c0, 2 * self.c1)

    def conjugate(self) -> "Fp2":
        return Fp2(self.c0, -self.c1)

    def mul_by_xi(self) -> "Fp2":
        """Multiply by xi = 9 + u (the Fp6/Fp12 non-residue)."""
        a0, a1 = self.c0, self.c1
        return Fp2(XI_C0 * a0 - XI_C1 * a1, XI_C0 * a1 + XI_C1 * a0)

    def inverse(self) -> "Fp2":
        a0, a1 = self.c0, self.c1
        norm = (a0 * a0 + a1 * a1) % P
        if norm == 0:
            raise ZeroDivisionError("zero has no inverse in Fp2")
        inv = pow(norm, -1, P)
        return Fp2(a0 * inv, -a1 * inv)

    def __pow__(self, exponent: int) -> "Fp2":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = Fp2.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def sqrt(self) -> "Fp2 | None":
        """Square root in Fp2 (p = 3 mod 4), or None for non-residues.

        Uses the standard two-candidate algorithm: with
        ``a1 = a^((p-3)/4)``, either ``a1 * a`` or ``u * a1 * a`` is a root
        whenever one exists.
        """
        if self.is_zero():
            return Fp2.zero()
        a1 = self ** ((P - 3) // 4)
        alpha = a1.square() * self
        x0 = a1 * self
        if alpha == Fp2(-1 % P, 0):
            candidate = Fp2(-x0.c1, x0.c0)  # u * x0
        else:
            b = (Fp2.one() + alpha) ** ((P - 1) // 2)
            candidate = b * x0
        if candidate.square() == self:
            return candidate
        return None

    def sign(self) -> int:
        """Deterministic sign bit for point compression.

        Lexicographic: compare (c1, c0) against the negation.
        """
        if self.c1 != 0:
            return 1 if self.c1 > P - self.c1 else 0
        return 1 if self.c0 > P - self.c0 else 0


XI = Fp2(XI_C0, XI_C1)


# --------------------------------------------------------------------------
# Fp6
# --------------------------------------------------------------------------


class Fp6:
    """Element c0 + c1*v + c2*v^2 of Fp6 = Fp2[v]/(v^3 - xi)."""

    __slots__ = ("c0", "c1", "c2")

    def __init__(self, c0: Fp2, c1: Fp2, c2: Fp2):
        self.c0 = c0
        self.c1 = c1
        self.c2 = c2

    @staticmethod
    def zero() -> "Fp6":
        return Fp6(Fp2.zero(), Fp2.zero(), Fp2.zero())

    @staticmethod
    def one() -> "Fp6":
        return Fp6(Fp2.one(), Fp2.zero(), Fp2.zero())

    def is_zero(self) -> bool:
        return self.c0.is_zero() and self.c1.is_zero() and self.c2.is_zero()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fp6)
            and self.c0 == other.c0
            and self.c1 == other.c1
            and self.c2 == other.c2
        )

    def __hash__(self) -> int:
        return hash((self.c0, self.c1, self.c2))

    def __repr__(self) -> str:
        return f"Fp6({self.c0!r}, {self.c1!r}, {self.c2!r})"

    def __add__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.c0 + other.c0, self.c1 + other.c1, self.c2 + other.c2)

    def __sub__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.c0 - other.c0, self.c1 - other.c1, self.c2 - other.c2)

    def __neg__(self) -> "Fp6":
        return Fp6(-self.c0, -self.c1, -self.c2)

    def _flat6(self) -> tuple:
        c0, c1, c2 = self.c0, self.c1, self.c2
        return (c0.c0, c0.c1, c1.c0, c1.c1, c2.c0, c2.c1)

    @staticmethod
    def _from_flat6(flat) -> "Fp6":
        c00, c01, c10, c11, c20, c21 = flat
        return Fp6(Fp2(c00, c01), Fp2(c10, c11), Fp2(c20, c21))

    def __mul__(self, other: "Fp6") -> "Fp6":
        return Fp6._from_flat6(_f6mul(self._flat6(), other._flat6()))

    def square(self) -> "Fp6":
        return Fp6._from_flat6(_f6sqr(self._flat6()))

    def mul_by_v(self) -> "Fp6":
        """Multiply by v: (c0, c1, c2) -> (xi*c2, c0, c1)."""
        return Fp6(self.c2.mul_by_xi(), self.c0, self.c1)

    def mul_by_fp2(self, k: Fp2) -> "Fp6":
        return Fp6(self.c0 * k, self.c1 * k, self.c2 * k)

    def inverse(self) -> "Fp6":
        a0, a1, a2 = self.c0, self.c1, self.c2
        t0 = a0.square() - (a1 * a2).mul_by_xi()
        t1 = a2.square().mul_by_xi() - a0 * a1
        t2 = a1.square() - a0 * a2
        denom = a0 * t0 + (a2 * t1 + a1 * t2).mul_by_xi()
        inv = denom.inverse()
        return Fp6(t0 * inv, t1 * inv, t2 * inv)


# --------------------------------------------------------------------------
# Fp12
# --------------------------------------------------------------------------


def _frobenius_coefficients() -> tuple[list[Fp2], list[Fp2], list[Fp2]]:
    """Derive gamma_k[i] = xi^(i*(p^k - 1)/6) for k = 1, 2, 3."""
    tables = []
    for k in (1, 2, 3):
        exponent = (P**k - 1) // 6
        base = XI**exponent
        table = [Fp2.one()]
        for _ in range(5):
            table.append(table[-1] * base)
        tables.append(table)
    return tables[0], tables[1], tables[2]


_FROB1, _FROB2, _FROB3 = _frobenius_coefficients()


class Fp12:
    """Element c0 + c1*w of Fp12 = Fp6[w]/(w^2 - v).

    Flattened, this is Fp2[w]/(w^6 - xi); the basis mapping used by the
    Frobenius endomorphism is::

        w^0, w^2, w^4  ->  c0.c0, c0.c1, c0.c2
        w^1, w^3, w^5  ->  c1.c0, c1.c1, c1.c2
    """

    __slots__ = ("c0", "c1")

    def __init__(self, c0: Fp6, c1: Fp6):
        self.c0 = c0
        self.c1 = c1

    @staticmethod
    def zero() -> "Fp12":
        return Fp12(Fp6.zero(), Fp6.zero())

    @staticmethod
    def one() -> "Fp12":
        return Fp12(Fp6.one(), Fp6.zero())

    def is_zero(self) -> bool:
        return self.c0.is_zero() and self.c1.is_zero()

    def is_one(self) -> bool:
        return self == Fp12.one()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Fp12) and self.c0 == other.c0 and self.c1 == other.c1

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    def __repr__(self) -> str:
        return f"Fp12({self.c0!r}, {self.c1!r})"

    def __add__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "Fp12":
        return Fp12(-self.c0, -self.c1)

    def __mul__(self, other: "Fp12") -> "Fp12":
        a0, a1 = self.c0._flat6(), self.c1._flat6()
        b0, b1 = other.c0._flat6(), other.c1._flat6()
        t0 = _f6mul(a0, b0)
        t1 = _f6mul(a1, b1)
        c0 = _f6add(t0, _f6mulv(t1))
        c1 = _f6sub(_f6sub(_f6mul(_f6add(a0, a1), _f6add(b0, b1)), t0), t1)
        return Fp12(Fp6._from_flat6(c0), Fp6._from_flat6(c1))

    def square(self) -> "Fp12":
        a0, a1 = self.c0._flat6(), self.c1._flat6()
        t = _f6mul(a0, a1)
        c0 = _f6sub(_f6sub(_f6mul(_f6add(a0, a1), _f6add(a0, _f6mulv(a1))), t), _f6mulv(t))
        c1 = _f6add(t, t)
        return Fp12(Fp6._from_flat6(c0), Fp6._from_flat6(c1))

    def conjugate(self) -> "Fp12":
        """f^(p^6): negates the odd-w part.  For unitary elements (the
        cyclotomic subgroup GT lives in) this equals the inverse."""
        return Fp12(self.c0, -self.c1)

    def _flat12(self) -> tuple:
        """Raw 12-int view (c0 flat6 ++ c1 flat6) for the flat GT kernels."""
        return self.c0._flat6() + self.c1._flat6()

    @staticmethod
    def _from_flat12(flat) -> "Fp12":
        return Fp12(Fp6._from_flat6(flat[:6]), Fp6._from_flat6(flat[6:]))

    def inverse(self) -> "Fp12":
        a0, a1 = self.c0, self.c1
        t = (a0.square() - a1.square().mul_by_v()).inverse()
        return Fp12(a0 * t, -(a1 * t))

    def __pow__(self, exponent: int) -> "Fp12":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = Fp12.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def pow_unitary(self, exponent: int) -> "Fp12":
        """Exponentiation assuming ``self`` is unitary (conj = inverse)."""
        if exponent < 0:
            return self.conjugate().pow_unitary(-exponent)
        return self**exponent

    # -- sparse multiplication for Miller-loop line evaluations ------------

    def mul_by_line(self, a: int, b: Fp2, c: Fp2) -> "Fp12":
        """Multiply by the sparse element ``a + b*w + c*w^3`` (a in Fp).

        Line functions evaluated at a G1 point have exactly this shape; the
        product is computed term by term over the flat ``w`` basis (with
        ``w^6 = xi``), touching only the three nonzero line coefficients.
        """
        s0, s1 = self.c0, self.c1
        g0, g2, g4 = s0.c0, s0.c1, s0.c2
        g1, g3, g5 = s1.c0, s1.c1, s1.c2
        g00, g01 = g0.c0, g0.c1
        g10, g11 = g1.c0, g1.c1
        g20, g21 = g2.c0, g2.c1
        g30, g31 = g3.c0, g3.c1
        g40, g41 = g4.c0, g4.c1
        g50, g51 = g5.c0, g5.c1
        b0, b1 = b.c0, b.c1
        c0, c1 = c.c0, c.c1
        t0, t1 = _f2mul(b0, b1, g50, g51)
        u0, u1 = _f2mul(c0, c1, g30, g31)
        x0, x1 = _f2xi(t0 + u0, t1 + u1)
        h00, h01 = a * g00 + x0, a * g01 + x1
        t0, t1 = _f2mul(b0, b1, g00, g01)
        u0, u1 = _f2xi(*_f2mul(c0, c1, g40, g41))
        h10, h11 = a * g10 + t0 + u0, a * g11 + t1 + u1
        t0, t1 = _f2mul(b0, b1, g10, g11)
        u0, u1 = _f2xi(*_f2mul(c0, c1, g50, g51))
        h20, h21 = a * g20 + t0 + u0, a * g21 + t1 + u1
        t0, t1 = _f2mul(b0, b1, g20, g21)
        u0, u1 = _f2mul(c0, c1, g00, g01)
        h30, h31 = a * g30 + t0 + u0, a * g31 + t1 + u1
        t0, t1 = _f2mul(b0, b1, g30, g31)
        u0, u1 = _f2mul(c0, c1, g10, g11)
        h40, h41 = a * g40 + t0 + u0, a * g41 + t1 + u1
        t0, t1 = _f2mul(b0, b1, g40, g41)
        u0, u1 = _f2mul(c0, c1, g20, g21)
        h50, h51 = a * g50 + t0 + u0, a * g51 + t1 + u1
        return Fp12(
            Fp6(Fp2(h00, h01), Fp2(h20, h21), Fp2(h40, h41)),
            Fp6(Fp2(h10, h11), Fp2(h30, h31), Fp2(h50, h51)),
        )

    # -- Frobenius ----------------------------------------------------------

    def _flat(self) -> list[Fp2]:
        return [
            self.c0.c0,
            self.c1.c0,
            self.c0.c1,
            self.c1.c1,
            self.c0.c2,
            self.c1.c2,
        ]

    @staticmethod
    def _from_flat(coeffs: list[Fp2]) -> "Fp12":
        return Fp12(
            Fp6(coeffs[0], coeffs[2], coeffs[4]),
            Fp6(coeffs[1], coeffs[3], coeffs[5]),
        )

    def frobenius(self, power: int = 1) -> "Fp12":
        """f^(p^power) for power in {1, 2, 3}."""
        flat = self._flat()
        if power == 1:
            coeffs = [flat[i].conjugate() * _FROB1[i] for i in range(6)]
        elif power == 2:
            coeffs = [flat[i] * _FROB2[i] for i in range(6)]
        elif power == 3:
            coeffs = [flat[i].conjugate() * _FROB3[i] for i in range(6)]
        else:
            raise ValueError("power must be 1, 2 or 3")
        return Fp12._from_flat(coeffs)

    def cyclotomic_square(self) -> "Fp12":
        """Granger-Scott squaring, valid in the cyclotomic subgroup.

        Roughly half the cost of a generic square; used by the final
        exponentiation and GT exponentiation hot paths.
        """
        # Flat coefficients over w: f = g0 + g1 w + g2 w^2 + g3 w^3 + g4 w^4 + g5 w^5
        s0, s1 = self.c0, self.c1
        g0, g2, g4 = s0.c0, s0.c1, s0.c2
        g1, g3, g5 = s1.c0, s1.c1, s1.c2

        def _sq(a: Fp2, b: Fp2):
            # (a + b*y)^2 in Fp4 = Fp2[y]/(y^2 - xi); unreduced flat pairs
            a20, a21 = _f2sqr(a.c0, a.c1)
            b20, b21 = _f2sqr(b.c0, b.c1)
            x0, x1 = _f2xi(b20, b21)
            s0_, s1_ = _f2sqr(a.c0 + b.c0, a.c1 + b.c1)
            return (a20 + x0, a21 + x1), (s0_ - a20 - b20, s1_ - a21 - b21)

        t00, t11 = _sq(g0, g3)
        t01, t12 = _sq(g1, g4)
        t02, t10 = _sq(g2, g5)
        t10 = _f2xi(*t10)

        h0 = Fp2(3 * t00[0] - 2 * g0.c0, 3 * t00[1] - 2 * g0.c1)
        h2 = Fp2(3 * t01[0] - 2 * g2.c0, 3 * t01[1] - 2 * g2.c1)
        h4 = Fp2(3 * t02[0] - 2 * g4.c0, 3 * t02[1] - 2 * g4.c1)
        h1 = Fp2(3 * t10[0] + 2 * g1.c0, 3 * t10[1] + 2 * g1.c1)
        h3 = Fp2(3 * t11[0] + 2 * g3.c0, 3 * t11[1] + 2 * g3.c1)
        h5 = Fp2(3 * t12[0] + 2 * g5.c0, 3 * t12[1] + 2 * g5.c1)
        return Fp12._from_flat([h0, h1, h2, h3, h4, h5])

    def pow_t(self, t: int) -> "Fp12":
        """Cyclotomic exponentiation by the (positive) BN parameter t.

        Only valid for unitary elements; used by the final exponentiation.
        """
        result = Fp12.one()
        base = self
        while t:
            if t & 1:
                result = result * base
            base = base.cyclotomic_square()
            t >>= 1
        return result
