"""Extension-field tower for BN254: Fp2, Fp6 and Fp12.

The tower is the one used by every production BN254 implementation
(Cloudflare bn256, go-ethereum, gnark, zkcrypto/bn)::

    Fp2  = Fp[u]  / (u^2 + 1)
    Fp6  = Fp2[v] / (v^3 - xi),  xi = 9 + u
    Fp12 = Fp6[w] / (w^2 - v)

Base-field (``Fp``) elements are plain Python ints reduced mod ``p`` — we keep
them unboxed for speed since the whole library is pure Python.  Extension
elements are small ``__slots__`` classes with operator overloading.

Frobenius coefficients are derived numerically at import time from ``xi``
rather than pasted in as magic constants, and are covered by tests comparing
``frobenius(f, k)`` against ``f ** (p**k)``.
"""

from __future__ import annotations

from .constants import FIELD_MODULUS as P
from .constants import XI_C0, XI_C1

# --------------------------------------------------------------------------
# Fp helpers (plain ints)
# --------------------------------------------------------------------------


def fp_inv(a: int) -> int:
    """Inverse in Fp; raises ZeroDivisionError on zero."""
    if a % P == 0:
        raise ZeroDivisionError("zero has no inverse in Fp")
    return pow(a, -1, P)


def fp_sqrt(a: int) -> int | None:
    """Square root in Fp (p = 3 mod 4), or None if ``a`` is a non-residue."""
    a %= P
    if a == 0:
        return 0
    root = pow(a, (P + 1) // 4, P)
    if root * root % P != a:
        return None
    return root


# --------------------------------------------------------------------------
# Fp2
# --------------------------------------------------------------------------


class Fp2:
    """Element c0 + c1*u of Fp2 = Fp[u]/(u^2 + 1)."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: int, c1: int = 0):
        self.c0 = c0 % P
        self.c1 = c1 % P

    # -- constructors ------------------------------------------------------

    @staticmethod
    def zero() -> "Fp2":
        return Fp2(0, 0)

    @staticmethod
    def one() -> "Fp2":
        return Fp2(1, 0)

    # -- predicates --------------------------------------------------------

    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fp2) and self.c0 == other.c0 and self.c1 == other.c1
        )

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    def __repr__(self) -> str:
        return f"Fp2({self.c0}, {self.c1})"

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Fp2") -> "Fp2":
        return Fp2(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Fp2") -> "Fp2":
        return Fp2(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "Fp2":
        return Fp2(-self.c0, -self.c1)

    def __mul__(self, other: "Fp2") -> "Fp2":
        a0, a1 = self.c0, self.c1
        b0, b1 = other.c0, other.c1
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = (a0 + a1) * (b0 + b1)
        return Fp2(t0 - t1, t2 - t0 - t1)

    def square(self) -> "Fp2":
        a0, a1 = self.c0, self.c1
        # (a0 + a1 u)^2 = (a0+a1)(a0-a1) + 2 a0 a1 u
        return Fp2((a0 + a1) * (a0 - a1), 2 * a0 * a1)

    def mul_scalar(self, k: int) -> "Fp2":
        return Fp2(self.c0 * k, self.c1 * k)

    def double(self) -> "Fp2":
        return Fp2(2 * self.c0, 2 * self.c1)

    def conjugate(self) -> "Fp2":
        return Fp2(self.c0, -self.c1)

    def mul_by_xi(self) -> "Fp2":
        """Multiply by xi = 9 + u (the Fp6/Fp12 non-residue)."""
        a0, a1 = self.c0, self.c1
        return Fp2(XI_C0 * a0 - XI_C1 * a1, XI_C0 * a1 + XI_C1 * a0)

    def inverse(self) -> "Fp2":
        a0, a1 = self.c0, self.c1
        norm = (a0 * a0 + a1 * a1) % P
        if norm == 0:
            raise ZeroDivisionError("zero has no inverse in Fp2")
        inv = pow(norm, -1, P)
        return Fp2(a0 * inv, -a1 * inv)

    def __pow__(self, exponent: int) -> "Fp2":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = Fp2.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def sqrt(self) -> "Fp2 | None":
        """Square root in Fp2 (p = 3 mod 4), or None for non-residues.

        Uses the standard two-candidate algorithm: with
        ``a1 = a^((p-3)/4)``, either ``a1 * a`` or ``u * a1 * a`` is a root
        whenever one exists.
        """
        if self.is_zero():
            return Fp2.zero()
        a1 = self ** ((P - 3) // 4)
        alpha = a1.square() * self
        x0 = a1 * self
        if alpha == Fp2(-1 % P, 0):
            candidate = Fp2(-x0.c1, x0.c0)  # u * x0
        else:
            b = (Fp2.one() + alpha) ** ((P - 1) // 2)
            candidate = b * x0
        if candidate.square() == self:
            return candidate
        return None

    def sign(self) -> int:
        """Deterministic sign bit for point compression.

        Lexicographic: compare (c1, c0) against the negation.
        """
        if self.c1 != 0:
            return 1 if self.c1 > P - self.c1 else 0
        return 1 if self.c0 > P - self.c0 else 0


XI = Fp2(XI_C0, XI_C1)


# --------------------------------------------------------------------------
# Fp6
# --------------------------------------------------------------------------


class Fp6:
    """Element c0 + c1*v + c2*v^2 of Fp6 = Fp2[v]/(v^3 - xi)."""

    __slots__ = ("c0", "c1", "c2")

    def __init__(self, c0: Fp2, c1: Fp2, c2: Fp2):
        self.c0 = c0
        self.c1 = c1
        self.c2 = c2

    @staticmethod
    def zero() -> "Fp6":
        return Fp6(Fp2.zero(), Fp2.zero(), Fp2.zero())

    @staticmethod
    def one() -> "Fp6":
        return Fp6(Fp2.one(), Fp2.zero(), Fp2.zero())

    def is_zero(self) -> bool:
        return self.c0.is_zero() and self.c1.is_zero() and self.c2.is_zero()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fp6)
            and self.c0 == other.c0
            and self.c1 == other.c1
            and self.c2 == other.c2
        )

    def __hash__(self) -> int:
        return hash((self.c0, self.c1, self.c2))

    def __repr__(self) -> str:
        return f"Fp6({self.c0!r}, {self.c1!r}, {self.c2!r})"

    def __add__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.c0 + other.c0, self.c1 + other.c1, self.c2 + other.c2)

    def __sub__(self, other: "Fp6") -> "Fp6":
        return Fp6(self.c0 - other.c0, self.c1 - other.c1, self.c2 - other.c2)

    def __neg__(self) -> "Fp6":
        return Fp6(-self.c0, -self.c1, -self.c2)

    def __mul__(self, other: "Fp6") -> "Fp6":
        a0, a1, a2 = self.c0, self.c1, self.c2
        b0, b1, b2 = other.c0, other.c1, other.c2
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = a2 * b2
        c0 = ((a1 + a2) * (b1 + b2) - t1 - t2).mul_by_xi() + t0
        c1 = (a0 + a1) * (b0 + b1) - t0 - t1 + t2.mul_by_xi()
        c2 = (a0 + a2) * (b0 + b2) - t0 - t2 + t1
        return Fp6(c0, c1, c2)

    def square(self) -> "Fp6":
        a0, a1, a2 = self.c0, self.c1, self.c2
        s0 = a0.square()
        ab = a0 * a1
        s1 = ab.double()
        s2 = (a0 - a1 + a2).square()
        bc = a1 * a2
        s3 = bc.double()
        s4 = a2.square()
        c0 = s0 + s3.mul_by_xi()
        c1 = s1 + s4.mul_by_xi()
        c2 = s1 + s2 + s3 - s0 - s4
        return Fp6(c0, c1, c2)

    def mul_by_v(self) -> "Fp6":
        """Multiply by v: (c0, c1, c2) -> (xi*c2, c0, c1)."""
        return Fp6(self.c2.mul_by_xi(), self.c0, self.c1)

    def mul_by_fp2(self, k: Fp2) -> "Fp6":
        return Fp6(self.c0 * k, self.c1 * k, self.c2 * k)

    def inverse(self) -> "Fp6":
        a0, a1, a2 = self.c0, self.c1, self.c2
        t0 = a0.square() - (a1 * a2).mul_by_xi()
        t1 = a2.square().mul_by_xi() - a0 * a1
        t2 = a1.square() - a0 * a2
        denom = a0 * t0 + (a2 * t1 + a1 * t2).mul_by_xi()
        inv = denom.inverse()
        return Fp6(t0 * inv, t1 * inv, t2 * inv)


# --------------------------------------------------------------------------
# Fp12
# --------------------------------------------------------------------------


def _frobenius_coefficients() -> tuple[list[Fp2], list[Fp2], list[Fp2]]:
    """Derive gamma_k[i] = xi^(i*(p^k - 1)/6) for k = 1, 2, 3."""
    tables = []
    for k in (1, 2, 3):
        exponent = (P**k - 1) // 6
        base = XI**exponent
        table = [Fp2.one()]
        for _ in range(5):
            table.append(table[-1] * base)
        tables.append(table)
    return tables[0], tables[1], tables[2]


_FROB1, _FROB2, _FROB3 = _frobenius_coefficients()


class Fp12:
    """Element c0 + c1*w of Fp12 = Fp6[w]/(w^2 - v).

    Flattened, this is Fp2[w]/(w^6 - xi); the basis mapping used by the
    Frobenius endomorphism is::

        w^0, w^2, w^4  ->  c0.c0, c0.c1, c0.c2
        w^1, w^3, w^5  ->  c1.c0, c1.c1, c1.c2
    """

    __slots__ = ("c0", "c1")

    def __init__(self, c0: Fp6, c1: Fp6):
        self.c0 = c0
        self.c1 = c1

    @staticmethod
    def zero() -> "Fp12":
        return Fp12(Fp6.zero(), Fp6.zero())

    @staticmethod
    def one() -> "Fp12":
        return Fp12(Fp6.one(), Fp6.zero())

    def is_zero(self) -> bool:
        return self.c0.is_zero() and self.c1.is_zero()

    def is_one(self) -> bool:
        return self == Fp12.one()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Fp12) and self.c0 == other.c0 and self.c1 == other.c1

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    def __repr__(self) -> str:
        return f"Fp12({self.c0!r}, {self.c1!r})"

    def __add__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Fp12") -> "Fp12":
        return Fp12(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "Fp12":
        return Fp12(-self.c0, -self.c1)

    def __mul__(self, other: "Fp12") -> "Fp12":
        a0, a1 = self.c0, self.c1
        b0, b1 = other.c0, other.c1
        t0 = a0 * b0
        t1 = a1 * b1
        c0 = t0 + t1.mul_by_v()
        c1 = (a0 + a1) * (b0 + b1) - t0 - t1
        return Fp12(c0, c1)

    def square(self) -> "Fp12":
        a0, a1 = self.c0, self.c1
        t = a0 * a1
        c0 = (a0 + a1) * (a0 + a1.mul_by_v()) - t - t.mul_by_v()
        c1 = t + t
        return Fp12(c0, c1)

    def conjugate(self) -> "Fp12":
        """f^(p^6): negates the odd-w part.  For unitary elements (the
        cyclotomic subgroup GT lives in) this equals the inverse."""
        return Fp12(self.c0, -self.c1)

    def inverse(self) -> "Fp12":
        a0, a1 = self.c0, self.c1
        t = (a0.square() - a1.square().mul_by_v()).inverse()
        return Fp12(a0 * t, -(a1 * t))

    def __pow__(self, exponent: int) -> "Fp12":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = Fp12.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def pow_unitary(self, exponent: int) -> "Fp12":
        """Exponentiation assuming ``self`` is unitary (conj = inverse)."""
        if exponent < 0:
            return self.conjugate().pow_unitary(-exponent)
        return self**exponent

    # -- sparse multiplication for Miller-loop line evaluations ------------

    def mul_by_line(self, a: int, b: Fp2, c: Fp2) -> "Fp12":
        """Multiply by the sparse element ``a + b*w + c*w^3`` (a in Fp).

        Line functions evaluated at a G1 point have exactly this shape; the
        sparse product saves roughly half the Fp multiplications of a full
        Fp12 multiply.
        """
        other = Fp12(
            Fp6(Fp2(a, 0), Fp2.zero(), Fp2.zero()),
            Fp6(b, c, Fp2.zero()),
        )
        return self * other

    # -- Frobenius ----------------------------------------------------------

    def _flat(self) -> list[Fp2]:
        return [
            self.c0.c0,
            self.c1.c0,
            self.c0.c1,
            self.c1.c1,
            self.c0.c2,
            self.c1.c2,
        ]

    @staticmethod
    def _from_flat(coeffs: list[Fp2]) -> "Fp12":
        return Fp12(
            Fp6(coeffs[0], coeffs[2], coeffs[4]),
            Fp6(coeffs[1], coeffs[3], coeffs[5]),
        )

    def frobenius(self, power: int = 1) -> "Fp12":
        """f^(p^power) for power in {1, 2, 3}."""
        flat = self._flat()
        if power == 1:
            coeffs = [flat[i].conjugate() * _FROB1[i] for i in range(6)]
        elif power == 2:
            coeffs = [flat[i] * _FROB2[i] for i in range(6)]
        elif power == 3:
            coeffs = [flat[i].conjugate() * _FROB3[i] for i in range(6)]
        else:
            raise ValueError("power must be 1, 2 or 3")
        return Fp12._from_flat(coeffs)

    def cyclotomic_square(self) -> "Fp12":
        """Granger-Scott squaring, valid in the cyclotomic subgroup.

        Roughly half the cost of a generic square; used by the final
        exponentiation and GT exponentiation hot paths.
        """
        # Flat coefficients over w: f = g0 + g1 w + g2 w^2 + g3 w^3 + g4 w^4 + g5 w^5
        g0, g1, g2, g3, g4, g5 = self._flat()

        def _sq(a: Fp2, b: Fp2) -> tuple[Fp2, Fp2]:
            # (a + b*y)^2 in Fp4 = Fp2[y]/(y^2 - xi)
            a2 = a.square()
            b2 = b.square()
            return a2 + b2.mul_by_xi(), (a + b).square() - a2 - b2

        t00, t11 = _sq(g0, g3)
        t01, t12 = _sq(g1, g4)
        t02, t10 = _sq(g2, g5)
        t10 = t10.mul_by_xi()

        h0 = (t00 - g0).double() + t00
        h2 = (t01 - g2).double() + t01
        h4 = (t02 - g4).double() + t02
        h1 = (t10 + g1).double() + t10
        h3 = (t11 + g3).double() + t11
        h5 = (t12 + g5).double() + t12
        return Fp12._from_flat([h0, h1, h2, h3, h4, h5])

    def pow_t(self, t: int) -> "Fp12":
        """Cyclotomic exponentiation by the (positive) BN parameter t.

        Only valid for unitary elements; used by the final exponentiation.
        """
        result = Fp12.one()
        base = self
        while t:
            if t & 1:
                result = result * base
            base = base.cyclotomic_square()
            t >>= 1
        return result
