"""Pure-Python BN254 (alt_bn128) pairing group.

This is the drop-in replacement for the Cloudflare ``bn256`` Go library used
by the paper's prototype: same curve, same security level, same element
sizes.  Public surface:

* :class:`G1Point`, :class:`G2Point` — group arithmetic,
* :func:`pairing`, :func:`pairing_product`, :func:`pairing_check` — the
  optimal-ate pairing and EVM-style product checks,
* :func:`multi_scalar_mul` — Pippenger MSM,
* :func:`hash_to_g1`, :func:`hash_gt_to_scalar` — the paper's oracles H, H',
* ``*_to_bytes`` / ``*_from_bytes`` — canonical encodings with the byte
  sizes the paper's proof accounting relies on.
"""

from .constants import (
    ATE_LOOP_COUNT,
    BN_T,
    CURVE_ORDER,
    FIELD_MODULUS,
    FP_BYTES,
    G1_COMPRESSED_BYTES,
    G1_UNCOMPRESSED_BYTES,
    G2_COMPRESSED_BYTES,
    G2_UNCOMPRESSED_BYTES,
    GT_COMPRESSED_BYTES,
    GT_UNCOMPRESSED_BYTES,
)
from .curve import G1Point, G2Point, TWIST_B
from .fields import Fp2, Fp6, Fp12, fp_inv, fp_sqrt
from .gt import GTFixedBase, gt_multi_pow, gt_pow
from .hash_to_curve import hash_gt_to_scalar, hash_to_g1, hash_to_scalar
from .msm import (
    FixedBaseMul,
    multi_scalar_mul,
    multi_scalar_mul_naive,
    multi_scalar_mul_tables,
    wnaf_table_g1,
)
from .precompute import CacheStats, FixedBaseMSM, PrecomputeCache
from .store import PrecomputeStore
from .pairing import (
    G2Prepared,
    final_exponentiation,
    miller_loop,
    miller_loop_product,
    pairing,
    pairing_check,
    pairing_product,
    prepare_g2,
)
from .serialization import (
    DeserializationError,
    g1_from_bytes,
    g1_to_bytes,
    g1_to_bytes_uncompressed,
    g2_from_bytes,
    g2_to_bytes,
    g2_to_bytes_uncompressed,
    gt_from_bytes,
    gt_to_bytes,
    gt_to_bytes_uncompressed,
)

__all__ = [
    "ATE_LOOP_COUNT",
    "BN_T",
    "CURVE_ORDER",
    "FIELD_MODULUS",
    "FP_BYTES",
    "G1_COMPRESSED_BYTES",
    "G1_UNCOMPRESSED_BYTES",
    "G2_COMPRESSED_BYTES",
    "G2_UNCOMPRESSED_BYTES",
    "GT_COMPRESSED_BYTES",
    "GT_UNCOMPRESSED_BYTES",
    "CacheStats",
    "DeserializationError",
    "FixedBaseMSM",
    "FixedBaseMul",
    "Fp2",
    "Fp6",
    "Fp12",
    "G1Point",
    "G2Point",
    "G2Prepared",
    "GTFixedBase",
    "PrecomputeCache",
    "PrecomputeStore",
    "TWIST_B",
    "final_exponentiation",
    "fp_inv",
    "fp_sqrt",
    "g1_from_bytes",
    "g1_to_bytes",
    "g1_to_bytes_uncompressed",
    "g2_from_bytes",
    "g2_to_bytes",
    "g2_to_bytes_uncompressed",
    "gt_from_bytes",
    "gt_to_bytes",
    "gt_to_bytes_uncompressed",
    "gt_multi_pow",
    "gt_pow",
    "hash_gt_to_scalar",
    "hash_to_g1",
    "hash_to_scalar",
    "miller_loop",
    "miller_loop_product",
    "multi_scalar_mul",
    "multi_scalar_mul_naive",
    "multi_scalar_mul_tables",
    "pairing",
    "pairing_check",
    "pairing_product",
    "prepare_g2",
    "wnaf_table_g1",
]
