"""GT exponentiation helpers.

The privacy layer's only extra prover cost is one GT exponentiation
``R = e(g1, epsilon)^z`` (paper Fig. 3).  Since the base ``e(g1, epsilon)``
is fixed per contract, a windowed fixed-base table turns the exponentiation
into ~64 multiplications — this is why the "+ security" overhead in the
paper's Figs. 8/9 stays small.  ``bench_ablation_gt_table`` measures the win.
"""

from __future__ import annotations

from .constants import CURVE_ORDER
from .fields import Fp12


def gt_pow(base: Fp12, exponent: int) -> Fp12:
    """Variable-base GT exponentiation using cyclotomic squarings.

    Valid only for unitary elements (anything coming out of the pairing).
    """
    exponent %= CURVE_ORDER
    if exponent == 0:
        return Fp12.one()
    result = Fp12.one()
    power = base
    while exponent:
        if exponent & 1:
            result = result * power
        power = power.cyclotomic_square()
        exponent >>= 1
    return result


class GTFixedBase:
    """Fixed-base GT exponentiation with a precomputed window table.

    ``window`` bits per digit; the table holds ``ceil(256/window)`` rows of
    ``2^window - 1`` entries.  With the default window of 4 an exponentiation
    costs ~64 GT multiplications and no squarings.
    """

    def __init__(self, base: Fp12, window: int = 4):
        if window < 1 or window > 8:
            raise ValueError("window must be between 1 and 8")
        self.base = base
        self.window = window
        bits = CURVE_ORDER.bit_length()
        self._rows = (bits + window - 1) // window
        self._table: list[list[Fp12]] = []
        row_base = base
        for _ in range(self._rows):
            row = [row_base]
            for _ in range((1 << window) - 2):
                row.append(row[-1] * row_base)
            self._table.append(row)
            for _ in range(window):
                row_base = row_base.cyclotomic_square()

    def pow(self, exponent: int) -> Fp12:
        exponent %= CURVE_ORDER
        result = Fp12.one()
        mask = (1 << self.window) - 1
        row_index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = result * self._table[row_index][digit - 1]
            exponent >>= self.window
            row_index += 1
        return result
