"""GT exponentiation helpers.

The privacy layer's only extra prover cost is one GT exponentiation
``R = e(g1, epsilon)^z`` (paper Fig. 3).  Since the base ``e(g1, epsilon)``
is fixed per contract, a windowed fixed-base table turns the exponentiation
into ~64 multiplications — this is why the "+ security" overhead in the
paper's Figs. 8/9 stays small.  ``bench_ablation_gt_table`` measures the win.

All chains here run on the flat 12-int kernels (:func:`_f12mul`,
:func:`_f12sqr_cyclo`): raw tuples in, one :class:`Fp12` constructed at the
end.  Exact modular arithmetic keeps every result bit-identical to the
object-based tower.
"""

from __future__ import annotations

from .constants import CURVE_ORDER
from .fields import Fp12, _f12conj, _f12mul, _f12sqr_cyclo


def gt_pow(base: Fp12, exponent: int) -> Fp12:
    """Variable-base GT exponentiation using cyclotomic squarings.

    Valid only for unitary elements (anything coming out of the pairing).
    """
    exponent %= CURVE_ORDER
    if exponent == 0:
        return Fp12.one()
    result = None
    power = base._flat12()
    while exponent:
        if exponent & 1:
            result = power if result is None else _f12mul(result, power)
        exponent >>= 1
        if exponent:
            power = _f12sqr_cyclo(power)
    return Fp12._from_flat12(result)


def gt_multi_pow(items: list[tuple[Fp12, int]]) -> Fp12:
    """prod_i base_i^exp_i with ONE shared cyclotomic squaring chain.

    The batch verifier's rho-blinding accumulates ``prod commitment^rho``
    over 128-bit exponents; running all bases down a single square-and-
    multiply chain costs ~128 squarings total instead of ~128 per base.
    Digits are width-4 signed NAF — negative digits multiply by the
    conjugate, which IS the inverse for unitary elements (pairing outputs),
    so the odd-multiple tables stay tiny.  Exact field arithmetic makes the
    result bit-identical to multiplying independent :func:`gt_pow` calls.
    """
    tables: list[list[tuple]] = []
    nafs: list[list[int]] = []
    for base, exponent in items:
        exponent %= CURVE_ORDER
        if exponent == 0:
            continue
        # Odd multiples base^1, base^3, base^5, base^7 for width-4 NAF.
        flat = base._flat12()
        squared = _f12sqr_cyclo(flat)
        row = [flat]
        for _ in range(3):
            row.append(_f12mul(row[-1], squared))
        tables.append(row)
        digits = []
        while exponent:
            if exponent & 1:
                d = exponent & 15
                if d >= 8:
                    d -= 16
                exponent -= d
            else:
                d = 0
            digits.append(d)
            exponent >>= 1
        nafs.append(digits)
    if not nafs:
        return Fp12.one()
    top = max(len(naf) for naf in nafs)
    result = None
    for bit in range(top - 1, -1, -1):
        if result is not None:
            result = _f12sqr_cyclo(result)
        for row, naf in zip(tables, nafs):
            if bit >= len(naf):
                continue
            d = naf[bit]
            if d > 0:
                entry = row[(d - 1) // 2]
            elif d < 0:
                entry = _f12conj(row[(-d - 1) // 2])
            else:
                continue
            result = entry if result is None else _f12mul(result, entry)
    if result is None:
        return Fp12.one()
    return Fp12._from_flat12(result)


class GTFixedBase:
    """Fixed-base GT exponentiation with a precomputed window table.

    ``window`` bits per digit; the table holds ``ceil(256/window)`` rows of
    ``2^window - 1`` entries.  With the default window of 4 an exponentiation
    costs ~64 GT multiplications and no squarings.  Table entries are stored
    as flat 12-int tuples so :meth:`pow` never allocates tower objects
    mid-chain.
    """

    def __init__(self, base: Fp12, window: int = 4):
        if window < 1 or window > 8:
            raise ValueError("window must be between 1 and 8")
        self.base = base
        self.window = window
        bits = CURVE_ORDER.bit_length()
        self._rows = (bits + window - 1) // window
        self._table: list[list[tuple]] = []
        row_base = base._flat12()
        for _ in range(self._rows):
            row = [row_base]
            for _ in range((1 << window) - 2):
                row.append(_f12mul(row[-1], row_base))
            self._table.append(row)
            for _ in range(window):
                row_base = _f12sqr_cyclo(row_base)

    @classmethod
    def _from_table(
        cls, base: Fp12, window: int, table: list[list[tuple]]
    ) -> "GTFixedBase":
        """Rebuild from a persisted table (skips the multiplication chain)."""
        ctx = cls.__new__(cls)
        ctx.base = base
        ctx.window = window
        ctx._rows = (CURVE_ORDER.bit_length() + window - 1) // window
        ctx._table = table
        return ctx

    def pow(self, exponent: int) -> Fp12:
        exponent %= CURVE_ORDER
        result = None
        mask = (1 << self.window) - 1
        row_index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                entry = self._table[row_index][digit - 1]
                result = entry if result is None else _f12mul(result, entry)
            exponent >>= self.window
            row_index += 1
        if result is None:
            return Fp12.one()
        return Fp12._from_flat12(result)
