"""Optimal-ate pairing on BN254 with a fast final exponentiation.

The Miller loop keeps the G2 point in affine twist coordinates (Fp2) and
evaluates line functions directly as sparse Fp12 elements, exploiting the
untwisting map ``psi(x, y) = (x*w^2, y*w^3)`` with ``w^6 = xi``:

    line through T1, T2 evaluated at P = (xP, yP) in G1:
        l(P) = yP  +  (-lambda * xP) * w  +  (lambda * x_T - y_T) * w^3

where ``lambda`` is the Fp2 slope on the twist.  The final exponentiation
splits into the easy part ``(p^6-1)(p^2+1)`` and the Devegili/Scott hard part
``(p^4-p^2+1)/r`` driven by three exponentiations by the BN parameter ``t``.

``miller_loop_product`` + a single shared final exponentiation is the
multi-pairing optimisation the verifier relies on (4 pairings per audit).
"""

from __future__ import annotations

from time import perf_counter

from ...obs.hotpath import HOTPATH
from .constants import ATE_LOOP_COUNT, BN_T, FIELD_MODULUS as P
from .curve import G1Point, G2Point
from .fields import Fp2, Fp6, Fp12, _FROB1, _FROB2

# Twist-coordinate Frobenius constants: psi(x, y) = (conj(x)*C_X, conj(y)*C_Y).
_ENDO_X = _FROB1[2]  # xi^((p-1)/3)
_ENDO_Y = _FROB1[3]  # xi^((p-1)/2)
_ENDO2_X = _FROB2[2]  # xi^((p^2-1)/3)
_ENDO2_Y = _FROB2[3]  # xi^((p^2-1)/2)


def _g2_frobenius(x: Fp2, y: Fp2) -> tuple[Fp2, Fp2]:
    return x.conjugate() * _ENDO_X, y.conjugate() * _ENDO_Y


def _g2_frobenius_squared(x: Fp2, y: Fp2) -> tuple[Fp2, Fp2]:
    return x * _ENDO2_X, y * _ENDO2_Y


def _line_double(
    t: tuple[Fp2, Fp2], xp: int, yp: int
) -> tuple[tuple[Fp2, Fp2], tuple[int, Fp2, Fp2]]:
    """Tangent line at T evaluated at P; returns (2T, sparse line coeffs)."""
    x1, y1 = t
    slope = (x1.square().mul_scalar(3)) * (y1.double().inverse())
    x3 = slope.square() - x1.double()
    y3 = slope * (x1 - x3) - y1
    line = (yp, slope.mul_scalar(-xp), slope * x1 - y1)
    return (x3, y3), line


def _line_add(
    t: tuple[Fp2, Fp2], q: tuple[Fp2, Fp2], xp: int, yp: int
) -> tuple[tuple[Fp2, Fp2], tuple[int, Fp2, Fp2]]:
    """Chord line through T and Q evaluated at P; returns (T+Q, coeffs)."""
    x1, y1 = t
    x2, y2 = q
    slope = (y2 - y1) * ((x2 - x1).inverse())
    x3 = slope.square() - x1 - x2
    y3 = slope * (x1 - x3) - y1
    line = (yp, slope.mul_scalar(-xp), slope * x1 - y1)
    return (x3, y3), line


def miller_loop(p: G1Point, q: G2Point) -> Fp12:
    """Miller loop f_{6t+2,Q}(P) * l_{T,Q1}(P) * l_{T+Q1,-Q2}(P)."""
    if HOTPATH.enabled:
        t0 = perf_counter()
        result = _miller_loop(p, q)
        HOTPATH.add("bn254.miller_loop", perf_counter() - t0)
        return result
    return _miller_loop(p, q)


def _miller_loop(p: G1Point, q: G2Point) -> Fp12:
    if p.is_infinity() or q.is_infinity():
        return Fp12.one()
    xp, yp = p.to_affine()
    xq, yq = q.to_affine()
    t = (xq, yq)
    f = Fp12.one()
    for bit_index in range(ATE_LOOP_COUNT.bit_length() - 2, -1, -1):
        t, line = _line_double(t, xp, yp)
        f = f.square().mul_by_line(*line)
        if (ATE_LOOP_COUNT >> bit_index) & 1:
            t, line = _line_add(t, (xq, yq), xp, yp)
            f = f.mul_by_line(*line)
    # The two optimal-ate correction steps with Frobenius images of Q.
    q1 = _g2_frobenius(xq, yq)
    x2, y2 = _g2_frobenius_squared(xq, yq)
    q2 = (x2, -y2)
    t, line = _line_add(t, q1, xp, yp)
    f = f.mul_by_line(*line)
    _, line = _line_add(t, q2, xp, yp)
    f = f.mul_by_line(*line)
    return f


def final_exponentiation(f: Fp12) -> Fp12:
    """f^((p^12 - 1) / r) via the standard BN decomposition."""
    if HOTPATH.enabled:
        t0 = perf_counter()
        result = _final_exponentiation(f)
        HOTPATH.add("bn254.final_exp", perf_counter() - t0)
        return result
    return _final_exponentiation(f)


def _final_exponentiation(f: Fp12) -> Fp12:
    # Easy part: f^((p^6 - 1)(p^2 + 1)).
    f = f.conjugate() * f.inverse()
    f = f.frobenius(2) * f
    # Hard part: f^((p^4 - p^2 + 1)/r), Devegili et al. addition chain.
    fp = f.frobenius(1)
    fp2 = f.frobenius(2)
    fp3 = fp2.frobenius(1)
    fu = f.pow_t(BN_T)
    fu2 = fu.pow_t(BN_T)
    fu3 = fu2.pow_t(BN_T)
    y0 = fp * fp2 * fp3
    y1 = f.conjugate()
    y2 = fu2.frobenius(2)
    y3 = fu.frobenius(1).conjugate()
    y4 = (fu * fu2.frobenius(1)).conjugate()
    y5 = fu2.conjugate()
    y6 = (fu3 * fu3.frobenius(1)).conjugate()
    t0 = y6.cyclotomic_square() * y4 * y5
    t1 = y3 * y5 * t0
    t0 = t0 * y2
    t1 = t1.cyclotomic_square() * t0
    t1 = t1.cyclotomic_square()
    t0 = t1 * y1
    t1 = t1 * y0
    t0 = t0.cyclotomic_square()
    return t0 * t1


def pairing(p: G1Point, q: G2Point) -> Fp12:
    """The optimal-ate pairing e(P, Q) into GT (unitary Fp12 subgroup)."""
    return final_exponentiation(miller_loop(p, q))


def miller_loop_product(pairs: list[tuple[G1Point, G2Point]]) -> Fp12:
    """Product of Miller loops (no final exponentiation)."""
    f = Fp12.one()
    for p, q in pairs:
        f = f * miller_loop(p, q)
    return f


def pairing_product(pairs: list[tuple[G1Point, G2Point]]) -> Fp12:
    """prod_i e(P_i, Q_i) computed with a single final exponentiation.

    This is the multi-pairing trick that keeps the on-chain verifier's four
    pairing evaluations affordable (one hard exponentiation instead of four).
    """
    return final_exponentiation(miller_loop_product(pairs))


def pairing_check(pairs: list[tuple[G1Point, G2Point]]) -> bool:
    """True iff prod_i e(P_i, Q_i) == 1 (the EVM precompile semantics)."""
    return pairing_product(pairs).is_one()
