"""Optimal-ate pairing on BN254 with a fast final exponentiation.

The Miller loop keeps the G2 point in affine twist coordinates (Fp2) and
evaluates line functions directly as sparse Fp12 elements, exploiting the
untwisting map ``psi(x, y) = (x*w^2, y*w^3)`` with ``w^6 = xi``:

    line through T1, T2 evaluated at P = (xP, yP) in G1:
        l(P) = yP  +  (-lambda * xP) * w  +  (lambda * x_T - y_T) * w^3

where ``lambda`` is the Fp2 slope on the twist.  The loop is split into a
P-independent *precompute* over the G2 argument (:class:`G2Prepared`
stores ``(lambda, lambda * x_T - y_T)`` per step — everything the chord
and tangent lines need except the G1 point) and a cheap evaluation pass.
Verifier G2 points are fixed per owner key, so preparing once and caching
(see ``precompute.PrecomputeCache.prepared_g2``) removes every Fp2
inversion from the warm verify path.

``miller_loop_product`` runs ONE shared squaring chain for all pairs:
``F <- F^2 * prod_i line_i`` step-for-step equals ``prod_i f_i`` because
mod-p arithmetic is exact and commutative — bit-identical to multiplying
individually evaluated loops, at one Fp12 squaring per bit instead of n.

The final exponentiation splits into the easy part ``(p^6-1)(p^2+1)`` and
the Devegili/Scott hard part ``(p^4-p^2+1)/r`` driven by three
exponentiations by the BN parameter ``t``.
"""

from __future__ import annotations

from time import perf_counter

from ...obs.hotpath import HOTPATH
from .constants import ATE_LOOP_COUNT, BN_T
from .curve import G1Point, G2Point
from .fields import Fp2, Fp12, _FROB1, _FROB2

# Twist-coordinate Frobenius constants: psi(x, y) = (conj(x)*C_X, conj(y)*C_Y).
_ENDO_X = _FROB1[2]  # xi^((p-1)/3)
_ENDO_Y = _FROB1[3]  # xi^((p-1)/2)
_ENDO2_X = _FROB2[2]  # xi^((p^2-1)/3)
_ENDO2_Y = _FROB2[3]  # xi^((p^2-1)/2)

# Miller-loop bit schedule, most significant bit excluded, high to low.
_ATE_BITS = tuple(
    (ATE_LOOP_COUNT >> i) & 1 for i in range(ATE_LOOP_COUNT.bit_length() - 2, -1, -1)
)


def _g2_frobenius(x: Fp2, y: Fp2) -> tuple[Fp2, Fp2]:
    return x.conjugate() * _ENDO_X, y.conjugate() * _ENDO_Y


def _g2_frobenius_squared(x: Fp2, y: Fp2) -> tuple[Fp2, Fp2]:
    return x * _ENDO2_X, y * _ENDO2_Y


def _coeff_double(t: tuple[Fp2, Fp2]) -> tuple[tuple[Fp2, Fp2], tuple[Fp2, Fp2]]:
    """Tangent step at T; returns (2T, P-independent line coeffs)."""
    x1, y1 = t
    slope = (x1.square().mul_scalar(3)) * (y1.double().inverse())
    x3 = slope.square() - x1.double()
    y3 = slope * (x1 - x3) - y1
    return (x3, y3), (slope, slope * x1 - y1)


def _coeff_add(
    t: tuple[Fp2, Fp2], q: tuple[Fp2, Fp2]
) -> tuple[tuple[Fp2, Fp2], tuple[Fp2, Fp2]]:
    """Chord step through T and Q; returns (T+Q, P-independent coeffs)."""
    x1, y1 = t
    x2, y2 = q
    slope = (y2 - y1) * ((x2 - x1).inverse())
    x3 = slope.square() - x1 - x2
    y3 = slope * (x1 - x3) - y1
    return (x3, y3), (slope, slope * x1 - y1)


class G2Prepared:
    """P-independent Miller-loop line coefficients for a fixed G2 point.

    ``coeffs`` holds one ``(slope, slope * x_T - y_T)`` pair per tangent /
    chord step in traversal order (the schedule is identical for every Q,
    so a shared product loop can walk many prepared points in lockstep).
    Evaluating at ``P = (xP, yP)`` costs one scalar Fp2 mult per step —
    no Fp2 inversions, no twist arithmetic.
    """

    __slots__ = ("coeffs", "infinity")

    def __init__(self, q: G2Point):
        self.infinity = q.is_infinity()
        self.coeffs: list[tuple[Fp2, Fp2]] = []
        if self.infinity:
            return
        xq, yq = q.to_affine()
        t = (xq, yq)
        coeffs = self.coeffs
        for bit in _ATE_BITS:
            t, coeff = _coeff_double(t)
            coeffs.append(coeff)
            if bit:
                t, coeff = _coeff_add(t, (xq, yq))
                coeffs.append(coeff)
        # The two optimal-ate correction steps with Frobenius images of Q.
        q1 = _g2_frobenius(xq, yq)
        x2, y2 = _g2_frobenius_squared(xq, yq)
        t, coeff = _coeff_add(t, q1)
        coeffs.append(coeff)
        _, coeff = _coeff_add(t, (x2, -y2))
        coeffs.append(coeff)

    def _state(self) -> tuple[bool, list[tuple[int, int, int, int]]]:
        """Pure-int form for the on-disk precompute store."""
        return self.infinity, [
            (slope.c0, slope.c1, c.c0, c.c1) for slope, c in self.coeffs
        ]

    @classmethod
    def _from_state(
        cls, infinity: bool, flat: list[tuple[int, int, int, int]]
    ) -> "G2Prepared":
        prepared = cls.__new__(cls)
        prepared.infinity = infinity
        prepared.coeffs = [
            (Fp2(s0, s1), Fp2(c0, c1)) for s0, s1, c0, c1 in flat
        ]
        return prepared


def prepare_g2(q: G2Point | G2Prepared) -> G2Prepared:
    """Precompute (or pass through) Miller-loop lines for ``q``."""
    if isinstance(q, G2Prepared):
        return q
    return G2Prepared(q)


def miller_loop(p: G1Point, q: G2Point | G2Prepared) -> Fp12:
    """Miller loop f_{6t+2,Q}(P) * l_{T,Q1}(P) * l_{T+Q1,-Q2}(P)."""
    if HOTPATH.enabled:
        t0 = perf_counter()
        result = _miller_loop(p, q)
        HOTPATH.add("bn254.miller_loop", perf_counter() - t0)
        return result
    return _miller_loop(p, q)


def _miller_loop(p: G1Point, q: G2Point | G2Prepared) -> Fp12:
    prepared = prepare_g2(q)
    if prepared.infinity or p.is_infinity():
        return Fp12.one()
    xp, yp = p.to_affine()
    coeffs = prepared.coeffs
    f = Fp12.one()
    index = 0
    for bit in _ATE_BITS:
        slope, c = coeffs[index]
        index += 1
        f = f.square().mul_by_line(yp, slope.mul_scalar(-xp), c)
        if bit:
            slope, c = coeffs[index]
            index += 1
            f = f.mul_by_line(yp, slope.mul_scalar(-xp), c)
    slope, c = coeffs[index]
    f = f.mul_by_line(yp, slope.mul_scalar(-xp), c)
    slope, c = coeffs[index + 1]
    f = f.mul_by_line(yp, slope.mul_scalar(-xp), c)
    return f


def final_exponentiation(f: Fp12) -> Fp12:
    """f^((p^12 - 1) / r) via the standard BN decomposition."""
    if HOTPATH.enabled:
        t0 = perf_counter()
        result = _final_exponentiation(f)
        HOTPATH.add("bn254.final_exp", perf_counter() - t0)
        return result
    return _final_exponentiation(f)


def _final_exponentiation(f: Fp12) -> Fp12:
    # Easy part: f^((p^6 - 1)(p^2 + 1)).
    f = f.conjugate() * f.inverse()
    f = f.frobenius(2) * f
    # Hard part: f^((p^4 - p^2 + 1)/r), Devegili et al. addition chain.
    fp = f.frobenius(1)
    fp2 = f.frobenius(2)
    fp3 = fp2.frobenius(1)
    fu = f.pow_t(BN_T)
    fu2 = fu.pow_t(BN_T)
    fu3 = fu2.pow_t(BN_T)
    y0 = fp * fp2 * fp3
    y1 = f.conjugate()
    y2 = fu2.frobenius(2)
    y3 = fu.frobenius(1).conjugate()
    y4 = (fu * fu2.frobenius(1)).conjugate()
    y5 = fu2.conjugate()
    y6 = (fu3 * fu3.frobenius(1)).conjugate()
    t0 = y6.cyclotomic_square() * y4 * y5
    t1 = y3 * y5 * t0
    t0 = t0 * y2
    t1 = t1.cyclotomic_square() * t0
    t1 = t1.cyclotomic_square()
    t0 = t1 * y1
    t1 = t1 * y0
    t0 = t0.cyclotomic_square()
    return t0 * t1


def pairing(p: G1Point, q: G2Point | G2Prepared) -> Fp12:
    """The optimal-ate pairing e(P, Q) into GT (unitary Fp12 subgroup)."""
    return final_exponentiation(miller_loop(p, q))


def miller_loop_product(pairs: list[tuple[G1Point, G2Point | G2Prepared]]) -> Fp12:
    """Product of Miller loops (no final exponentiation).

    All pairs share ONE squaring chain: each step squares the accumulator
    once and multiplies in every pair's line, which is bit-identical to
    multiplying individually evaluated loops (exact mod-p arithmetic) at a
    fraction of the Fp12 squarings.  Accepts :class:`G2Prepared` entries to
    skip the per-call line precompute.
    """
    if HOTPATH.enabled:
        t0 = perf_counter()
        result = _miller_loop_product(pairs)
        HOTPATH.add("bn254.miller_loop", perf_counter() - t0)
        return result
    return _miller_loop_product(pairs)


def _miller_loop_product(pairs: list[tuple[G1Point, G2Point | G2Prepared]]) -> Fp12:
    live: list[tuple[int, int, list[tuple[Fp2, Fp2]]]] = []
    for p, q in pairs:
        prepared = prepare_g2(q)
        if prepared.infinity or p.is_infinity():
            continue
        xp, yp = p.to_affine()
        live.append((xp, yp, prepared.coeffs))
    if not live:
        return Fp12.one()
    f = Fp12.one()
    index = 0
    for bit in _ATE_BITS:
        f = f.square()
        for xp, yp, coeffs in live:
            slope, c = coeffs[index]
            f = f.mul_by_line(yp, slope.mul_scalar(-xp), c)
        index += 1
        if bit:
            for xp, yp, coeffs in live:
                slope, c = coeffs[index]
                f = f.mul_by_line(yp, slope.mul_scalar(-xp), c)
            index += 1
    for offset in (index, index + 1):
        for xp, yp, coeffs in live:
            slope, c = coeffs[offset]
            f = f.mul_by_line(yp, slope.mul_scalar(-xp), c)
    return f


def pairing_product(pairs: list[tuple[G1Point, G2Point | G2Prepared]]) -> Fp12:
    """prod_i e(P_i, Q_i) computed with a single final exponentiation.

    This is the multi-pairing trick that keeps the on-chain verifier's four
    pairing evaluations affordable (one hard exponentiation instead of four).
    """
    return final_exponentiation(miller_loop_product(pairs))


def pairing_check(pairs: list[tuple[G1Point, G2Point | G2Prepared]]) -> bool:
    """True iff prod_i e(P_i, Q_i) == 1 (the EVM precompile semantics)."""
    return pairing_product(pairs).is_one()
