"""Hashing arbitrary strings to BN254 G1 (the random oracle H of the paper).

Uses deterministic try-and-increment: candidate x coordinates are derived
from SHA-256 with an incrementing counter until one lies on the curve; the
y sign is also taken from the hash so the output is a uniform-looking,
deterministic function of the input.  Since G1 has cofactor 1, every curve
point is automatically in the right subgroup.

The paper instantiates two oracles from this family:

* ``H : {0,1}* -> G1`` for block-index digests ``H(name || i)``,
* ``H' : GT -> Zp`` for the Sigma-protocol challenge ``zeta = H'(R)``.
"""

from __future__ import annotations

import hashlib

from .constants import CURVE_ORDER, FIELD_MODULUS as P
from .curve import G1Point
from .fields import Fp12, fp_sqrt
from .serialization import gt_to_bytes_uncompressed

_DOMAIN_G1 = b"REPRO-BN254-H2C-G1-v1"
_DOMAIN_ZP = b"REPRO-BN254-H2S-ZP-v1"


def _expand(domain: bytes, message: bytes, counter: int) -> bytes:
    """64 bytes of SHA-256 output (two blocks) for near-uniform reduction."""
    prefix = domain + counter.to_bytes(2, "big") + message
    return hashlib.sha256(prefix + b"\x00").digest() + hashlib.sha256(
        prefix + b"\x01"
    ).digest()


def hash_to_g1(message: bytes) -> G1Point:
    """Deterministically hash bytes onto E(Fp) (paper's random oracle H)."""
    for counter in range(512):
        digest = _expand(_DOMAIN_G1, message, counter)
        x = int.from_bytes(digest[:32], "big") % P
        sign = digest[32] & 1
        y = fp_sqrt((x * x * x + 3) % P)
        if y is None:
            continue
        if (y > P - y) != bool(sign):
            y = P - y
        return G1Point(x, y)
    raise RuntimeError("hash_to_g1 failed to find a curve point (p < 2^-512)")


def hash_to_scalar(message: bytes) -> int:
    """Hash bytes to a uniform-looking element of Zr."""
    digest = _expand(_DOMAIN_ZP, message, 0)
    return int.from_bytes(digest, "big") % CURVE_ORDER


def hash_gt_to_scalar(element: Fp12) -> int:
    """The paper's H' : GT -> Zp, applied to the Sigma commitment R."""
    return hash_to_scalar(gt_to_bytes_uncompressed(element))
