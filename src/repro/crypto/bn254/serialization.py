"""Canonical byte encodings for BN254 group elements.

These encodings produce exactly the element sizes the paper reports in
Section VII-A (|p| = |G1| = 256 bits, |G2| = 512 bits, |GT| = 1536 bits):

* **G1 compressed, 32 bytes** — big-endian x with two spare top bits
  (p < 2^254): bit 255 = infinity flag, bit 254 = y sign.
* **G2 compressed, 64 bytes** — Fp2 x as c0 || c1, flags in c0's top bits.
* **GT compressed, 192 bytes** — T2 torus compression of the unitary element
  ``g = g0 + g1*w`` to the single Fp6 value ``m = (1 + g0)/g1``; this is what
  lets the private proof fit in 288 bytes (3 x 32 + 192) instead of 480.

Uncompressed variants (64 / 128 / 384 bytes) are provided for completeness
and for hashing GT elements canonically.
"""

from __future__ import annotations

from .constants import FIELD_MODULUS as P
from .constants import (
    FP_BYTES,
    G1_COMPRESSED_BYTES,
    G2_COMPRESSED_BYTES,
    GT_COMPRESSED_BYTES,
)
from .curve import G1Point, G2Point, TWIST_B
from .fields import Fp2, Fp6, Fp12, fp_sqrt

_INFINITY_FLAG = 0x80
_SIGN_FLAG = 0x40


class DeserializationError(ValueError):
    """Raised when bytes do not decode to a valid group element."""


def _int_to_bytes(value: int) -> bytes:
    return value.to_bytes(FP_BYTES, "big")


def _int_from_bytes(data: bytes) -> int:
    value = int.from_bytes(data, "big")
    if value >= P:
        raise DeserializationError("field element not canonical (>= p)")
    return value


def _sign_fp(y: int) -> int:
    return 1 if y > P - y else 0


# --------------------------------------------------------------------------
# G1
# --------------------------------------------------------------------------


def g1_to_bytes(point: G1Point) -> bytes:
    """Compressed 32-byte encoding."""
    if point.is_infinity():
        return bytes([_INFINITY_FLAG]) + bytes(FP_BYTES - 1)
    x, y = point.to_affine()
    data = bytearray(_int_to_bytes(x))
    if _sign_fp(y):
        data[0] |= _SIGN_FLAG
    return bytes(data)


def g1_from_bytes(data: bytes) -> G1Point:
    if len(data) != G1_COMPRESSED_BYTES:
        raise DeserializationError(f"G1 point must be {G1_COMPRESSED_BYTES} bytes")
    flags = data[0] & 0xC0
    if flags & _INFINITY_FLAG:
        if any(data[1:]) or data[0] != _INFINITY_FLAG:
            raise DeserializationError("malformed infinity encoding")
        return G1Point.infinity()
    body = bytes([data[0] & 0x3F]) + data[1:]
    x = _int_from_bytes(body)
    y2 = (x * x * x + 3) % P
    y = fp_sqrt(y2)
    if y is None:
        raise DeserializationError("x coordinate not on curve")
    if _sign_fp(y) != (1 if flags & _SIGN_FLAG else 0):
        y = P - y
    return G1Point(x, y)


def g1_to_bytes_uncompressed(point: G1Point) -> bytes:
    if point.is_infinity():
        return bytes(2 * FP_BYTES)
    x, y = point.to_affine()
    return _int_to_bytes(x) + _int_to_bytes(y)


# --------------------------------------------------------------------------
# G2
# --------------------------------------------------------------------------


def g2_to_bytes(point: G2Point) -> bytes:
    """Compressed 64-byte encoding (x.c0 || x.c1 with flags)."""
    if point.is_infinity():
        return bytes([_INFINITY_FLAG]) + bytes(G2_COMPRESSED_BYTES - 1)
    x, y = point.to_affine()
    data = bytearray(_int_to_bytes(x.c0) + _int_to_bytes(x.c1))
    if y.sign():
        data[0] |= _SIGN_FLAG
    return bytes(data)


def g2_from_bytes(data: bytes, check_subgroup: bool = False) -> G2Point:
    if len(data) != G2_COMPRESSED_BYTES:
        raise DeserializationError(f"G2 point must be {G2_COMPRESSED_BYTES} bytes")
    flags = data[0] & 0xC0
    if flags & _INFINITY_FLAG:
        if any(data[1:]) or data[0] != _INFINITY_FLAG:
            raise DeserializationError("malformed infinity encoding")
        return G2Point.infinity()
    body = bytes([data[0] & 0x3F]) + data[1:FP_BYTES]
    c0 = _int_from_bytes(body)
    c1 = _int_from_bytes(data[FP_BYTES:])
    x = Fp2(c0, c1)
    y2 = x.square() * x + TWIST_B
    y = y2.sqrt()
    if y is None:
        raise DeserializationError("x coordinate not on twist")
    if y.sign() != (1 if flags & _SIGN_FLAG else 0):
        y = -y
    point = G2Point(x, y)
    if check_subgroup and not point.is_in_subgroup():
        raise DeserializationError("point not in the r-order subgroup")
    return point


def g2_to_bytes_uncompressed(point: G2Point) -> bytes:
    if point.is_infinity():
        return bytes(4 * FP_BYTES)
    x, y = point.to_affine()
    return b"".join(
        _int_to_bytes(c) for c in (x.c0, x.c1, y.c0, y.c1)
    )


# --------------------------------------------------------------------------
# Fp6 / GT
# --------------------------------------------------------------------------


def fp6_to_bytes(element: Fp6) -> bytes:
    return b"".join(
        _int_to_bytes(c)
        for c in (
            element.c0.c0,
            element.c0.c1,
            element.c1.c0,
            element.c1.c1,
            element.c2.c0,
            element.c2.c1,
        )
    )


def fp6_from_bytes(data: bytes) -> Fp6:
    if len(data) != 6 * FP_BYTES:
        raise DeserializationError("Fp6 element must be 192 bytes")
    coeffs = [
        _int_from_bytes(data[i * FP_BYTES : (i + 1) * FP_BYTES]) for i in range(6)
    ]
    return Fp6(Fp2(coeffs[0], coeffs[1]), Fp2(coeffs[2], coeffs[3]), Fp2(coeffs[4], coeffs[5]))


_V = Fp6(Fp2.zero(), Fp2.one(), Fp2.zero())


def gt_to_bytes(element: Fp12) -> bytes:
    """Torus-compressed 192-byte encoding of a unitary GT element.

    The compression map is ``m = (1 + g0) / g1`` for ``g = g0 + g1*w``; the
    identity (where ``g1 = 0``) gets the reserved all-zero encoding, which no
    compressible element can produce (``m = 0`` would force ``g1 = 0``).
    """
    if element.is_one():
        return bytes(GT_COMPRESSED_BYTES)
    if element.c1.is_zero():
        raise ValueError("element is not torus-compressible (g1 == 0, g != 1)")
    m = (Fp6.one() + element.c0) * element.c1.inverse()
    return fp6_to_bytes(m)


def gt_from_bytes(data: bytes) -> Fp12:
    """Inverse of :func:`gt_to_bytes`: ``g = (m + w) / (m - w)``.

    Decompressed elements are unitary by construction.
    """
    if len(data) != GT_COMPRESSED_BYTES:
        raise DeserializationError(f"GT element must be {GT_COMPRESSED_BYTES} bytes")
    if not any(data):
        return Fp12.one()
    m = fp6_from_bytes(data)
    denominator = m.square() - _V
    if denominator.is_zero():
        raise DeserializationError("degenerate torus element")
    inv = denominator.inverse()
    g0 = (m.square() + _V) * inv
    g1 = (m + m) * inv
    return Fp12(g0, g1)


def gt_to_bytes_uncompressed(element: Fp12) -> bytes:
    return fp6_to_bytes(element.c0) + fp6_to_bytes(element.c1)
