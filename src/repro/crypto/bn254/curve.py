"""G1 and G2 group arithmetic for BN254.

Points are held in Jacobian coordinates ``(X, Y, Z)`` representing the affine
point ``(X/Z^2, Y/Z^3)``; the point at infinity is ``Z == 0``.  Scalar
multiplication uses 4-bit wNAF.  ``G1Point`` keeps raw ints for speed,
``G2Point`` mirrors the same formulas over :class:`~repro.crypto.bn254.fields.Fp2`.
"""

from __future__ import annotations

from .constants import CURVE_ORDER, FIELD_MODULUS as P
from .constants import G1_GENERATOR, G2_GENERATOR_X, G2_GENERATOR_Y
from .fields import Fp2, XI


def _wnaf(scalar: int, width: int = 4) -> list[int]:
    """Windowed non-adjacent form of a non-negative scalar."""
    digits = []
    power = 1 << width
    half = power >> 1
    while scalar:
        if scalar & 1:
            digit = scalar % power
            if digit >= half:
                digit -= power
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


class G1Point:
    """Point on E(Fp): y^2 = x^3 + 3 (prime order, cofactor 1)."""

    __slots__ = ("x", "y", "z", "_affine")
    #: Chain-state digests must ignore the memoized affine cache — whether
    #: it is populated depends on what code *touched* the point, not on
    #: which point it is.
    _canonical_state_slots = ("x", "y", "z")

    def __init__(self, x: int, y: int, z: int = 1):
        self.x = x % P
        self.y = y % P
        self.z = z % P
        self._affine = None

    @classmethod
    def _raw(cls, x: int, y: int, z: int) -> "G1Point":
        """Internal constructor for coordinates already reduced mod p."""
        point = object.__new__(cls)
        point.x = x
        point.y = y
        point.z = z
        point._affine = None
        return point

    # -- constructors ------------------------------------------------------

    @staticmethod
    def infinity() -> "G1Point":
        return G1Point(1, 1, 0)

    @staticmethod
    def generator() -> "G1Point":
        return G1Point(*G1_GENERATOR)

    # -- predicates --------------------------------------------------------

    def is_infinity(self) -> bool:
        return self.z == 0

    def is_on_curve(self) -> bool:
        if self.is_infinity():
            return True
        x, y = self.to_affine()
        return (y * y - (x * x * x + 3)) % P == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, G1Point):
            return NotImplemented
        if self.is_infinity() or other.is_infinity():
            return self.is_infinity() and other.is_infinity()
        # Cross-multiplied Jacobian comparison.
        z1z1 = self.z * self.z % P
        z2z2 = other.z * other.z % P
        if (self.x * z2z2 - other.x * z1z1) % P != 0:
            return False
        return (self.y * z2z2 * other.z - other.y * z1z1 * self.z) % P == 0

    def __hash__(self) -> int:
        if self.is_infinity():
            return hash((0, 0, 0))
        return hash(self.to_affine())

    def __repr__(self) -> str:
        if self.is_infinity():
            return "G1Point(infinity)"
        x, y = self.to_affine()
        return f"G1Point({x}, {y})"

    # -- coordinate handling -------------------------------------------------

    def to_affine(self) -> tuple[int, int]:
        """Affine (x, y); the normalization is memoized, so repeated calls
        (and repeated hashing) pay the modular inversion exactly once."""
        affine = self._affine
        if affine is not None:
            return affine
        if self.z == 0:
            raise ValueError("the point at infinity has no affine coordinates")
        if self.z == 1:
            affine = (self.x, self.y)
        else:
            zinv = pow(self.z, -1, P)
            zinv2 = zinv * zinv % P
            affine = (self.x * zinv2 % P, self.y * zinv2 * zinv % P)
        self._affine = affine
        return affine

    @staticmethod
    def to_affine_batch(points: "list[G1Point]") -> list[tuple[int, int]]:
        """Normalize many points with one shared inversion (Montgomery's
        simultaneous-inversion trick) and memoize each result.

        Raises on the point at infinity, like :meth:`to_affine`.
        """
        pending = []
        for point in points:
            if point._affine is None:
                if point.z == 0:
                    raise ValueError(
                        "the point at infinity has no affine coordinates"
                    )
                if point.z == 1:
                    point._affine = (point.x, point.y)
                else:
                    pending.append(point)
        if pending:
            # prefix[i] = z_0 * ... * z_{i-1}; one inversion of the total.
            prefix = [1] * (len(pending) + 1)
            acc = 1
            for index, point in enumerate(pending):
                prefix[index] = acc
                acc = acc * point.z % P
            acc_inv = pow(acc, -1, P)
            for index in range(len(pending) - 1, -1, -1):
                point = pending[index]
                zinv = acc_inv * prefix[index] % P
                acc_inv = acc_inv * point.z % P
                zinv2 = zinv * zinv % P
                point._affine = (
                    point.x * zinv2 % P,
                    point.y * zinv2 * zinv % P,
                )
        return [point._affine for point in points]

    # -- group law -----------------------------------------------------------

    def double(self) -> "G1Point":
        if self.z == 0 or self.y == 0:
            return G1Point.infinity()
        x, y, z = self.x, self.y, self.z
        a = x * x % P
        b = y * y % P
        c = b * b % P
        d = 2 * ((x + b) * (x + b) - a - c) % P
        e = 3 * a
        f = e * e
        x3 = (f - 2 * d) % P
        y3 = (e * (d - x3) - 8 * c) % P
        z3 = 2 * y * z % P
        return G1Point._raw(x3, y3, z3)

    def __add__(self, other: "G1Point") -> "G1Point":
        if self.z == 0:
            return other
        if other.z == 0:
            return self
        z1z1 = self.z * self.z % P
        z2z2 = other.z * other.z % P
        u1 = self.x * z2z2 % P
        u2 = other.x * z1z1 % P
        s1 = self.y * other.z * z2z2 % P
        s2 = other.y * self.z * z1z1 % P
        h = (u2 - u1) % P
        rr = 2 * (s2 - s1) % P
        if h == 0:
            if rr == 0:
                return self.double()
            return G1Point.infinity()
        i = 4 * h * h % P
        j = h * i % P
        v = u1 * i % P
        x3 = (rr * rr - j - 2 * v) % P
        y3 = (rr * (v - x3) - 2 * s1 * j) % P
        z3 = ((self.z + other.z) * (self.z + other.z) - z1z1 - z2z2) * h % P
        return G1Point._raw(x3, y3, z3)

    def add_affine(self, ax: int, ay: int) -> "G1Point":
        """Mixed addition with an affine point (z2 = 1): 7M + 4S.

        The fixed-base and MSM fast paths keep their tables in affine form
        (batch-normalized once), so every hot-loop addition takes this
        cheaper formula instead of the full Jacobian one.
        """
        if self.z == 0:
            return G1Point._raw(ax, ay, 1)
        z1 = self.z
        z1z1 = z1 * z1 % P
        u2 = ax * z1z1 % P
        s2 = ay * z1 % P * z1z1 % P
        h = (u2 - self.x) % P
        rr = 2 * (s2 - self.y) % P
        if h == 0:
            if rr == 0:
                return self.double()
            return G1Point.infinity()
        hh = h * h % P
        i = 4 * hh
        j = h * i % P
        v = self.x * i % P
        x3 = (rr * rr - j - 2 * v) % P
        y3 = (rr * (v - x3) - 2 * self.y * j) % P
        z3 = ((z1 + h) * (z1 + h) - z1z1 - hh) % P
        return G1Point._raw(x3, y3, z3)

    def __neg__(self) -> "G1Point":
        if self.is_infinity():
            return self
        return G1Point(self.x, -self.y, self.z)

    def __sub__(self, other: "G1Point") -> "G1Point":
        return self + (-other)

    def __mul__(self, scalar: int) -> "G1Point":
        scalar %= CURVE_ORDER
        if scalar == 0 or self.is_infinity():
            return G1Point.infinity()
        digits = _wnaf(scalar)
        # Precompute odd multiples 1P, 3P, ..., 15P.
        table = [self]
        twice = self.double()
        for _ in range(7):
            table.append(table[-1] + twice)
        result = G1Point.infinity()
        for digit in reversed(digits):
            result = result.double()
            if digit > 0:
                result = result + table[digit >> 1]
            elif digit < 0:
                result = result - table[(-digit) >> 1]
        return result

    __rmul__ = __mul__


# Twist coefficient b' = 3 / xi for E'(Fp2): y^2 = x^3 + b'.
TWIST_B = Fp2(3, 0) * XI.inverse()


class G2Point:
    """Point on the sextic twist E'(Fp2): y^2 = x^3 + 3/xi."""

    __slots__ = ("x", "y", "z", "_affine")
    #: Chain-state digests must ignore the memoized affine cache — whether
    #: it is populated depends on what code *touched* the point, not on
    #: which point it is.
    _canonical_state_slots = ("x", "y", "z")

    def __init__(self, x: Fp2, y: Fp2, z: Fp2 | None = None):
        self.x = x
        self.y = y
        self.z = z if z is not None else Fp2.one()
        self._affine = None

    @staticmethod
    def infinity() -> "G2Point":
        return G2Point(Fp2.one(), Fp2.one(), Fp2.zero())

    @staticmethod
    def generator() -> "G2Point":
        return G2Point(Fp2(*G2_GENERATOR_X), Fp2(*G2_GENERATOR_Y))

    def is_infinity(self) -> bool:
        return self.z.is_zero()

    def is_on_curve(self) -> bool:
        if self.is_infinity():
            return True
        x, y = self.to_affine()
        return y.square() == x.square() * x + TWIST_B

    def is_in_subgroup(self) -> bool:
        """Full (slow) subgroup membership check: r * Q == O.

        Uses an unreduced double-and-add because ``__mul__`` reduces scalars
        mod r (which would trivialise this check).
        """
        result = G2Point.infinity()
        base = self
        scalar = CURVE_ORDER
        while scalar:
            if scalar & 1:
                result = result + base
            base = base.double()
            scalar >>= 1
        return result.is_infinity()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, G2Point):
            return NotImplemented
        if self.is_infinity() or other.is_infinity():
            return self.is_infinity() and other.is_infinity()
        z1z1 = self.z.square()
        z2z2 = other.z.square()
        if self.x * z2z2 != other.x * z1z1:
            return False
        return self.y * z2z2 * other.z == other.y * z1z1 * self.z

    def __hash__(self) -> int:
        if self.is_infinity():
            return hash((0, 0, 0, 0))
        x, y = self.to_affine()
        return hash((x.c0, x.c1, y.c0, y.c1))

    def __repr__(self) -> str:
        if self.is_infinity():
            return "G2Point(infinity)"
        x, y = self.to_affine()
        return f"G2Point({x!r}, {y!r})"

    def to_affine(self) -> tuple[Fp2, Fp2]:
        affine = self._affine
        if affine is not None:
            return affine
        if self.is_infinity():
            raise ValueError("the point at infinity has no affine coordinates")
        zinv = self.z.inverse()
        zinv2 = zinv.square()
        affine = (self.x * zinv2, self.y * zinv2 * zinv)
        self._affine = affine
        return affine

    @staticmethod
    def to_affine_batch(points: "list[G2Point]") -> list[tuple[Fp2, Fp2]]:
        """Batch normalization over Fp2 with one shared inversion."""
        pending = [
            point
            for point in points
            if point._affine is None and not point.is_infinity()
        ]
        for point in points:
            if point._affine is None and point.is_infinity():
                raise ValueError("the point at infinity has no affine coordinates")
        if pending:
            prefix = [Fp2.one()] * (len(pending) + 1)
            acc = Fp2.one()
            for index, point in enumerate(pending):
                prefix[index] = acc
                acc = acc * point.z
            acc_inv = acc.inverse()
            for index in range(len(pending) - 1, -1, -1):
                point = pending[index]
                zinv = acc_inv * prefix[index]
                acc_inv = acc_inv * point.z
                zinv2 = zinv.square()
                point._affine = (point.x * zinv2, point.y * zinv2 * zinv)
        return [point._affine for point in points]

    def double(self) -> "G2Point":
        if self.is_infinity() or self.y.is_zero():
            return G2Point.infinity()
        x, y, z = self.x, self.y, self.z
        a = x.square()
        b = y.square()
        c = b.square()
        d = ((x + b).square() - a - c).double()
        e = a.double() + a
        f = e.square()
        x3 = f - d.double()
        y3 = e * (d - x3) - c.double().double().double()
        z3 = (y * z).double()
        return G2Point(x3, y3, z3)

    def __add__(self, other: "G2Point") -> "G2Point":
        if self.is_infinity():
            return other
        if other.is_infinity():
            return self
        z1z1 = self.z.square()
        z2z2 = other.z.square()
        u1 = self.x * z2z2
        u2 = other.x * z1z1
        s1 = self.y * other.z * z2z2
        s2 = other.y * self.z * z1z1
        h = u2 - u1
        rr = (s2 - s1).double()
        if h.is_zero():
            if rr.is_zero():
                return self.double()
            return G2Point.infinity()
        i = h.square().double().double()
        j = h * i
        v = u1 * i
        x3 = rr.square() - j - v.double()
        y3 = rr * (v - x3) - (s1 * j).double()
        z3 = ((self.z + other.z).square() - z1z1 - z2z2) * h
        return G2Point(x3, y3, z3)

    def add_affine(self, ax: Fp2, ay: Fp2) -> "G2Point":
        """Mixed addition with an affine twist point (z2 = 1)."""
        if self.is_infinity():
            return G2Point(ax, ay)
        z1 = self.z
        z1z1 = z1.square()
        u2 = ax * z1z1
        s2 = ay * z1 * z1z1
        h = u2 - self.x
        rr = (s2 - self.y).double()
        if h.is_zero():
            if rr.is_zero():
                return self.double()
            return G2Point.infinity()
        hh = h.square()
        i = hh.double().double()
        j = h * i
        v = self.x * i
        x3 = rr.square() - j - v.double()
        y3 = rr * (v - x3) - (self.y * j).double()
        z3 = (z1 + h).square() - z1z1 - hh
        return G2Point(x3, y3, z3)

    def __neg__(self) -> "G2Point":
        if self.is_infinity():
            return self
        return G2Point(self.x, -self.y, self.z)

    def __sub__(self, other: "G2Point") -> "G2Point":
        return self + (-other)

    def __mul__(self, scalar: int) -> "G2Point":
        scalar %= CURVE_ORDER
        if scalar == 0 or self.is_infinity():
            return G2Point.infinity()
        digits = _wnaf(scalar)
        table = [self]
        twice = self.double()
        for _ in range(7):
            table.append(table[-1] + twice)
        result = G2Point.infinity()
        for digit in reversed(digits):
            result = result.double()
            if digit > 0:
                result = result + table[digit >> 1]
            elif digit < 0:
                result = result - table[(-digit) >> 1]
        return result

    __rmul__ = __mul__
