"""Curve constants for BN254 (a.k.a. alt_bn128), the curve behind Ethereum's
pairing precompiles and the Cloudflare ``bn256`` library used by the paper.

The curve is the Barreto-Naehrig curve with parameter ``t`` below:

* base field ``Fp`` with ``p = 36 t^4 + 36 t^3 + 24 t^2 + 6 t + 1``
* group order ``r = 36 t^4 + 36 t^3 + 18 t^2 + 6 t + 1``
* ``E(Fp): y^2 = x^3 + 3`` with ``#E(Fp) = r`` (cofactor 1)
* ``E'(Fp2): y^2 = x^3 + 3/xi`` (sextic twist), ``xi = 9 + u``

Element sizes match the paper's Section VII-A: ``|p| = |G1| = 256`` bits,
``|G2| = 512`` bits and ``|GT| = 1536`` bits once torus-compressed.
"""

from __future__ import annotations

# BN parameter (often written x, u or z in the literature).
BN_T = 4965661367192848881

# Base-field modulus p = 36t^4 + 36t^3 + 24t^2 + 6t + 1.
FIELD_MODULUS = 21888242871839275222246405745257275088696311157297823662689037894645226208583

# Prime order of G1/G2/GT: r = 36t^4 + 36t^3 + 18t^2 + 6t + 1.
CURVE_ORDER = 21888242871839275222246405745257275088548364400416034343698204186575808495617

# Optimal-ate Miller loop length: 6t + 2.
ATE_LOOP_COUNT = 6 * BN_T + 2
ATE_LOOP_BITS = ATE_LOOP_COUNT.bit_length()

# Short Weierstrass coefficient of E(Fp): y^2 = x^3 + B.
CURVE_B = 3

# Non-residue used to build Fp2 = Fp[u] / (u^2 + 1).
FP2_NON_RESIDUE = -1

# xi = 9 + u, the Fp2 non-residue used for Fp6 = Fp2[v] / (v^3 - xi)
# and, flattened, Fp12 = Fp2[w] / (w^6 - xi) with w^2 = v.
XI_C0 = 9
XI_C1 = 1

# Canonical generators.
G1_GENERATOR = (1, 2)
G2_GENERATOR_X = (
    10857046999023057135944570762232829481370756359578518086990519993285655852781,
    11559732032986387107991004021392285783925812861821192530917403151452391805634,
)
G2_GENERATOR_Y = (
    8495653923123431417604973247489272438418190587263600148770280649306958101930,
    4082367875863433681332203403145435568316851327593401208105741076214120093531,
)

# Byte sizes used throughout the paper's proof/key accounting (Section VII).
FP_BYTES = 32           # one Fp or Zp element
G1_COMPRESSED_BYTES = 32   # x coordinate + sign bit (p < 2^254 leaves room)
G1_UNCOMPRESSED_BYTES = 64
G2_COMPRESSED_BYTES = 64   # Fp2 x coordinate + sign bit
G2_UNCOMPRESSED_BYTES = 128
GT_COMPRESSED_BYTES = 192  # T2 torus compression: one Fp6 element (1536 bits)
GT_UNCOMPRESSED_BYTES = 384

# -- GLV endomorphism (G1 scalar decomposition) ------------------------------
#
# E(Fp) has the efficient endomorphism phi(x, y) = (GLV_BETA * x, y) with
# phi(P) = GLV_LAMBDA * P for P in G1, where GLV_BETA / GLV_LAMBDA are the
# cube roots of unity mod p / mod r satisfying x^2 + x + 1 = 0 (the pair is
# fixed by checking phi(G) == lambda*G on the generator; the unit tests
# re-verify both identities).  (GLV_A1, GLV_B1), (GLV_A2, GLV_B2) are short
# vectors of the lattice {(a, b) : a + b*lambda = 0 mod r} from the
# extended-Euclid construction (Gallant-Lambert-Vanstone), so any scalar
# splits as k = k1 + k2*lambda with |k1|, |k2| < 2^127 — halving every
# doubling chain in the G1 MSMs.
GLV_BETA = 21888242871839275220042445260109153167277707414472061641714758635765020556616
GLV_LAMBDA = 21888242871839275217838484774961031246154997185409878258781734729429964517155
GLV_A1 = 147946756881789319000765030803803410728
GLV_B1 = -9931322734385697763
GLV_A2 = 9931322734385697763
GLV_B2 = 147946756881789319010696353538189108491
