"""Fixed-base precomputation cache shared across audits.

Every audit round re-multiplies the *same* bases: the public powers
``g1^{alpha^j}`` (the (s-1)-term KZG-witness MSM), the per-contract GT base
``e(g1, epsilon)`` (the Sigma-protocol masking), the global generator
``g1`` and the per-file block digests ``H(name || i)``.  The seed code
rebuilt window decompositions for all of them on every proof; this module
precomputes them once and shares the tables across every audit that touches
the same base — the amortization trick Audita/Cumulus-style batch auditing
systems rely on.

:class:`PrecomputeCache` is the process-local registry the engine hands to
provers and verifiers.  Each worker process of the parallel engine owns one
cache, so a provider answering challenges for many files of one owner pays
each table build exactly once per worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .constants import CURVE_ORDER
from .curve import G1Point, G2Point
from .fields import Fp12
from .gt import GTFixedBase
from .msm import FixedBaseMul, PointT


class FixedBaseMSM:
    """MSM over a *fixed* tuple of bases with per-base window tables.

    Aimed at the KZG-witness MSM ``psi = g1^{Q_k(alpha)}``: the bases (the
    public powers of alpha) never change for a given contract, so after the
    table build each audit costs only ~64 group additions per nonzero
    scalar, with zero doublings.  Tables are built lazily per base, so a
    quotient of degree ``d`` never pays for tables beyond base ``d``.
    """

    def __init__(self, bases: Sequence[PointT], window: int = 4):
        if not bases:
            raise ValueError("FixedBaseMSM needs at least one base")
        self.bases = tuple(bases)
        self.window = window
        self._identity = type(bases[0]).infinity()
        self._tables: list[FixedBaseMul | None] = [None] * len(self.bases)
        self.builds = 0

    def _table(self, index: int) -> FixedBaseMul:
        table = self._tables[index]
        if table is None:
            table = FixedBaseMul(self.bases[index], window=self.window)
            self._tables[index] = table
            self.builds += 1
        return table

    def msm(self, scalars: Sequence[int]) -> PointT:
        """sum_i scalars[i] * bases[i] (scalars may be shorter than bases)."""
        if len(scalars) > len(self.bases):
            raise ValueError(
                f"{len(scalars)} scalars for {len(self.bases)} fixed bases"
            )
        result = self._identity
        for index, scalar in enumerate(scalars):
            if scalar % CURVE_ORDER:
                result = result + self._table(index).mul(scalar)
        return result


@dataclass
class CacheStats:
    """Hit/miss counters (the precompute ablation reads these)."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


@dataclass
class PrecomputeCache:
    """Process-local registry of fixed-base tables and digest points.

    Keys are the group elements themselves (all BN254 element classes are
    hashable by affine coordinates), so two public keys sharing the same
    ``e(g1, epsilon)`` — e.g. many files outsourced under one owner key —
    transparently share one table.
    """

    window: int = 4
    stats: CacheStats = field(default_factory=CacheStats)
    _gt: dict[Fp12, GTFixedBase] = field(default_factory=dict)
    _g1: dict[G1Point, FixedBaseMul] = field(default_factory=dict)
    _g2: dict[G2Point, FixedBaseMul] = field(default_factory=dict)
    _msm: dict[tuple, FixedBaseMSM] = field(default_factory=dict)
    _digests: dict[tuple[int, int], G1Point] = field(default_factory=dict)

    # -- GT fixed-base contexts (Sigma-protocol masking) --------------------

    def gt_context(self, base: Fp12) -> GTFixedBase:
        """Windowed table over a pairing output, shared across proofs."""
        table = self._gt.get(base)
        if table is None:
            self.stats.misses += 1
            table = GTFixedBase(base, window=self.window)
            self._gt[base] = table
        else:
            self.stats.hits += 1
        return table

    # -- single fixed-base tables ------------------------------------------

    def g1_table(self, point: G1Point) -> FixedBaseMul:
        table = self._g1.get(point)
        if table is None:
            self.stats.misses += 1
            table = FixedBaseMul(point, window=self.window)
            self._g1[point] = table
        else:
            self.stats.hits += 1
        return table

    def g2_table(self, point: G2Point) -> FixedBaseMul:
        table = self._g2.get(point)
        if table is None:
            self.stats.misses += 1
            table = FixedBaseMul(point, window=self.window)
            self._g2[point] = table
        else:
            self.stats.hits += 1
        return table

    # -- multi-base tables (the powers-of-alpha MSM) ------------------------

    def powers_msm(self, bases: Sequence[PointT]) -> FixedBaseMSM:
        """Fixed-base MSM context for a tuple of bases (keyed by value)."""
        key = tuple(bases)
        table = self._msm.get(key)
        if table is None:
            self.stats.misses += 1
            table = FixedBaseMSM(key, window=self.window)
            self._msm[key] = table
        else:
            self.stats.hits += 1
        return table

    # -- per-file digest points --------------------------------------------

    def block_digest(self, name: int, index: int) -> G1Point:
        """Memoized H(name || i) — fixed per file, re-hashed every round
        by the seed verifier."""
        key = (name, index)
        point = self._digests.get(key)
        if point is None:
            from ...core.authenticator import block_digest_point

            self.stats.misses += 1
            point = block_digest_point(name, index)
            self._digests[key] = point
        else:
            self.stats.hits += 1
        return point
