"""Fixed-base precomputation cache shared across audits.

Every audit round re-multiplies the *same* bases: the public powers
``g1^{alpha^j}`` (the (s-1)-term KZG-witness MSM), the per-contract GT base
``e(g1, epsilon)`` (the Sigma-protocol masking), the global generator
``g1`` and the per-file block digests ``H(name || i)``.  The seed code
rebuilt window decompositions for all of them on every proof; this module
precomputes them once and shares the tables across every audit that touches
the same base — the amortization trick Audita/Cumulus-style batch auditing
systems rely on.

:class:`PrecomputeCache` is the process-local registry the engine hands to
provers and verifiers.  Each worker process of the parallel engine owns one
cache, so a provider answering challenges for many files of one owner pays
each table build exactly once per worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .constants import CURVE_ORDER
from .curve import G1Point, G2Point
from .fields import Fp12
from .gt import GTFixedBase
from .msm import (
    FixedBaseMul,
    PointT,
    multi_scalar_mul_tables,
    wnaf_table_g1,
)
from .pairing import G2Prepared
from .serialization import (
    g1_to_bytes,
    g2_to_bytes,
    gt_to_bytes_uncompressed,
)
from .store import PrecomputeStore


class FixedBaseMSM:
    """MSM over a *fixed* tuple of bases with per-base window tables.

    Aimed at the KZG-witness MSM ``psi = g1^{Q_k(alpha)}``: the bases (the
    public powers of alpha) never change for a given contract, so after the
    table build each audit costs only ~64 group additions per nonzero
    scalar, with zero doublings.  Tables are built lazily per base, so a
    quotient of degree ``d`` never pays for tables beyond base ``d``.
    """

    def __init__(self, bases: Sequence[PointT], window: int = 4):
        if not bases:
            raise ValueError("FixedBaseMSM needs at least one base")
        self.bases = tuple(bases)
        self.window = window
        self._identity = type(bases[0]).infinity()
        self._tables: list[FixedBaseMul | None] = [None] * len(self.bases)
        self.builds = 0

    def _table(self, index: int) -> FixedBaseMul:
        table = self._tables[index]
        if table is None:
            table = FixedBaseMul(self.bases[index], window=self.window)
            self._tables[index] = table
            self.builds += 1
        return table

    def msm(self, scalars: Sequence[int]) -> PointT:
        """sum_i scalars[i] * bases[i] (scalars may be shorter than bases)."""
        if len(scalars) > len(self.bases):
            raise ValueError(
                f"{len(scalars)} scalars for {len(self.bases)} fixed bases"
            )
        result = self._identity
        for index, scalar in enumerate(scalars):
            if scalar % CURVE_ORDER:
                result = result + self._table(index).mul(scalar)
        return result


@dataclass
class CacheStats:
    """Hit/miss counters (the precompute ablation reads these)."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


@dataclass
class PrecomputeCache:
    """Process-local registry of fixed-base tables and digest points.

    Keys are the group elements themselves (all BN254 element classes are
    hashable by affine coordinates), so two public keys sharing the same
    ``e(g1, epsilon)`` — e.g. many files outsourced under one owner key —
    transparently share one table.
    """

    window: int = 4
    #: G1 fixed-base tables take a wider window than GT/G2: raw-int mixed
    #: adds make the per-digit cost tiny, so the (64 -> 51 rows) saving on
    #: the hot psi/authenticator path outweighs the bigger lazy build.
    g1_window: int = 5
    #: Width of cached per-point wNAF tables (authenticators, digests):
    #: with the build amortized away, wider digits keep winning until the
    #: phi-table map and NAF sparsity flatten out around width 6.
    wnaf_width: int = 6
    #: GT commitment window: one step wider than the seed's 4 — the flat
    #: Fp12 kernels made table builds cheap enough that the warm-path win
    #: (64 -> 51 multiplications per exponentiation) dominates.
    gt_window: int = 5
    #: Optional on-disk backing store (:class:`PrecomputeStore`): table
    #: misses consult it before building, and fresh builds are written
    #: back, so a restarted process (or a new pool worker) starts warm.
    store: PrecomputeStore | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _gt: dict[Fp12, GTFixedBase] = field(default_factory=dict)
    _g1: dict[G1Point, FixedBaseMul] = field(default_factory=dict)
    _g2: dict[G2Point, FixedBaseMul] = field(default_factory=dict)
    _msm: dict[tuple, FixedBaseMSM] = field(default_factory=dict)
    _digests: dict[tuple[int, int], G1Point] = field(default_factory=dict)
    _prepared: dict[G2Point, G2Prepared] = field(default_factory=dict)
    _wnaf: dict[G1Point, list[tuple[int, int]]] = field(default_factory=dict)

    # -- on-disk store plumbing --------------------------------------------

    def _store_load(self, kind: str, key: bytes):
        return self.store.load(kind, key) if self.store is not None else None

    def _store_save(self, kind: str, key: bytes, value) -> None:
        if self.store is not None:
            self.store.save(kind, key, value)

    # -- GT fixed-base contexts (Sigma-protocol masking) --------------------

    def gt_context(self, base: Fp12) -> GTFixedBase:
        """Windowed table over a pairing output, shared across proofs."""
        table = self._gt.get(base)
        if table is None:
            self.stats.misses += 1
            key = gt_to_bytes_uncompressed(base) + bytes([self.gt_window])
            persisted = self._store_load("gt", key)
            if persisted is not None:
                table = GTFixedBase._from_table(base, self.gt_window, persisted)
            else:
                table = GTFixedBase(base, window=self.gt_window)
                self._store_save("gt", key, table._table)
            self._gt[base] = table
        else:
            self.stats.hits += 1
        return table

    # -- single fixed-base tables ------------------------------------------

    def g1_table(self, point: G1Point) -> FixedBaseMul:
        table = self._g1.get(point)
        if table is None:
            self.stats.misses += 1
            key = g1_to_bytes(point) + bytes([self.g1_window])
            persisted = self._store_load("g1fb", key)
            if persisted is not None:
                table = FixedBaseMul._from_table(
                    point, self.g1_window, persisted
                )
            else:
                table = FixedBaseMul(point, window=self.g1_window)
                self._store_save("g1fb", key, table._table)
            self._g1[point] = table
        else:
            self.stats.hits += 1
        return table

    def g2_table(self, point: G2Point) -> FixedBaseMul:
        table = self._g2.get(point)
        if table is None:
            self.stats.misses += 1
            table = FixedBaseMul(point, window=self.window)
            self._g2[point] = table
        else:
            self.stats.hits += 1
        return table

    # -- prepared Miller-loop lines (verifier G2 arguments) ------------------

    def prepared_g2(self, point: G2Point) -> G2Prepared:
        """P-independent Miller-loop line coefficients, shared across every
        pairing against the same G2 point (owner keys are fixed per
        contract, so the warm verify path pays zero Fp2 inversions)."""
        prepared = self._prepared.get(point)
        if prepared is None:
            self.stats.misses += 1
            key = g2_to_bytes(point)
            persisted = self._store_load("g2lines", key)
            if persisted is not None:
                prepared = G2Prepared._from_state(*persisted)
            else:
                prepared = G2Prepared(point)
                self._store_save("g2lines", key, prepared._state())
            self._prepared[point] = prepared
        else:
            self.stats.hits += 1
        return prepared

    # -- cached wNAF tables (fixed points in variable-base MSMs) -------------

    def g1_wnaf_table(self, point: G1Point) -> list[tuple[int, int]]:
        """Odd-multiple table for a fixed G1 point, shared across epochs."""
        table = self._wnaf.get(point)
        if table is None:
            self.stats.misses += 1
            key = g1_to_bytes(point) + bytes([self.wnaf_width])
            persisted = self._store_load("wnaf", key)
            if persisted is not None:
                table = persisted
            else:
                table = wnaf_table_g1(point, self.wnaf_width)
                self._store_save("wnaf", key, table)
            self._wnaf[point] = table
        else:
            self.stats.hits += 1
        return table

    def wnaf_msm(
        self,
        points: Sequence[G1Point],
        scalars: Sequence[int],
        cacheable: Sequence[bool] | None = None,
        identity: G1Point | None = None,
    ) -> G1Point:
        """G1 MSM with cached tables for the fixed points.

        ``cacheable`` marks which points recur across epochs (digests,
        authenticators, the generator); unmarked points (fresh proof
        elements) get throwaway tables so the cache cannot grow without
        bound.  The result is the exact group element
        :func:`~repro.crypto.bn254.msm.multi_scalar_mul` returns.
        """
        if cacheable is None:
            tables = [
                None if p.is_infinity() else self.g1_wnaf_table(p)
                for p in points
            ]
        else:
            tables = [
                self.g1_wnaf_table(p) if use and not p.is_infinity() else None
                for p, use in zip(points, cacheable)
            ]
        return multi_scalar_mul_tables(points, scalars, tables, identity)

    # -- multi-base tables (the powers-of-alpha MSM) ------------------------

    def powers_msm(self, bases: Sequence[PointT]) -> FixedBaseMSM:
        """Fixed-base MSM context for a tuple of bases (keyed by value)."""
        key = tuple(bases)
        table = self._msm.get(key)
        if table is None:
            self.stats.misses += 1
            window = (
                self.g1_window if isinstance(key[0], G1Point) else self.window
            )
            table = FixedBaseMSM(key, window=window)
            self._msm[key] = table
        else:
            self.stats.hits += 1
        return table

    # -- per-file digest points --------------------------------------------

    def block_digest(self, name: int, index: int) -> G1Point:
        """Memoized H(name || i) — fixed per file, re-hashed every round
        by the seed verifier.  Hash-to-curve is a pure function of the
        key, so digest points persist to the store alongside the tables
        (~0.3 ms of Tonelli-Shanks per point saved on restart)."""
        key = (name, index)
        point = self._digests.get(key)
        if point is None:
            self.stats.misses += 1
            store_key = f"{name}:{index}".encode()
            persisted = self._store_load("digest", store_key)
            if persisted is not None:
                point = G1Point(persisted[0], persisted[1], 1)
            else:
                from ...core.authenticator import block_digest_point

                point = block_digest_point(name, index)
                self._store_save("digest", store_key, point.to_affine())
            self._digests[key] = point
        else:
            self.stats.hits += 1
        return point
