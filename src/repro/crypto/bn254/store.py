"""Versioned on-disk persistence for :class:`PrecomputeCache` tables.

The warm-path speedup of the audit engine comes from tables that are pure
functions of long-lived public values — wNAF odd-multiple tables for
authenticators/digests/powers-of-alpha, prepared Miller-loop lines for the
owner G2 keys, GT window tables for ``e(g1, epsilon)``.  They are expensive
to build but tiny to serialize (lists of field integers), so persisting
them lets a restarted auditor — or a freshly forked pool worker — start at
warm-cache throughput instead of re-deriving every table.

Layout: one file per table under the cache directory, named
``<kind>-<sha256(key)[:32]>.bin`` where the key bytes are the canonical
serialization of the group element plus the table parameters.  Each file is

    MAGIC (8 bytes) || FORMAT_VERSION (2 bytes BE) || sha256(payload) ||
    payload (pickled pure-int structure)

written atomically (temp file + ``os.replace``).  :meth:`PrecomputeStore.load`
returns ``None`` — never raises — for missing, truncated, corrupted,
checksum-mismatched or version-mismatched files, so a bad cache directory
degrades to a cold start instead of an outage.  Payloads are pickled, but
the checksum is verified *before* unpickling, so only payloads this process
(or another honest auditor run) wrote are ever deserialized.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

MAGIC = b"BN254PC\x00"
FORMAT_VERSION = 1

_HEADER_LEN = len(MAGIC) + 2 + 32


class PrecomputeStore:
    """Digest-keyed file store for precompute tables.

    All methods are best-effort: I/O failures on ``save`` are swallowed
    (the cache simply stays process-local) and malformed files on ``load``
    read as misses.  ``stats``-style counters are exposed for the
    persisted-cache benchmarks.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.loads = 0
        self.saves = 0
        self.rejects = 0

    def _path(self, kind: str, key: bytes) -> Path:
        digest = hashlib.sha256(kind.encode() + b"\x00" + key).hexdigest()[:32]
        return self.directory / f"{kind}-{digest}.bin"

    def load(self, kind: str, key: bytes):
        """The stored object for ``(kind, key)``, or ``None`` on any miss."""
        try:
            blob = self._path(kind, key).read_bytes()
        except OSError:
            return None
        if len(blob) < _HEADER_LEN or not blob.startswith(MAGIC):
            self.rejects += 1
            return None
        version = int.from_bytes(blob[len(MAGIC) : len(MAGIC) + 2], "big")
        if version != FORMAT_VERSION:
            self.rejects += 1
            return None
        checksum = blob[len(MAGIC) + 2 : _HEADER_LEN]
        payload = blob[_HEADER_LEN:]
        if hashlib.sha256(payload).digest() != checksum:
            self.rejects += 1
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            self.rejects += 1
            return None
        self.loads += 1
        return value

    def save(self, kind: str, key: bytes, value) -> None:
        """Atomically persist ``value``; failures leave no partial file."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = (
            MAGIC
            + FORMAT_VERSION.to_bytes(2, "big")
            + hashlib.sha256(payload).digest()
            + payload
        )
        path = self._path(kind, key)
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=path.name, suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.saves += 1
