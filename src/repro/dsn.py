"""End-to-end DSN orchestration: storage + auditing + repair, one object.

This is the "plug-in component" deployment of paper Section VII-A made
concrete: :class:`AuditedDsn` glues the storage substrate (encrypt /
erasure-code / DHT placement), the audit layer (one Fig. 2 contract per
shard-holding provider) and the reputation registry together, and closes
the loop the paper leaves to the reader — when an audit fails, the shard
is repaired onto a fresh provider chosen by reputation, and a replacement
contract is deployed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .chain import Blockchain, ContractTerms, Transaction, deploy_audit_contract
from .chain.agents import AuditDeployment
from .chain.contracts.audit_contract import AuditContract, State
from .chain.contracts.reputation import ReputationRegistry
from .core import DataOwner, ProtocolParams, StorageProvider
from .randomness.beacon import RandomnessBeacon
from .storage import DsnClient, DsnCluster, FileManifest


@dataclass
class ShardAudit:
    """The audit-side record for one placed shard."""

    provider: str
    shard_index: int
    deployment: AuditDeployment
    file_name: int
    replaced: bool = False
    #: The outsourcing package backing this shard's audit contract.  Kept so
    #: downstream drivers (the lifecycle engine) can register the shard with
    #: the parallel-audit executor and the checkpoint rollup.
    package: object | None = field(default=None, repr=False)


@dataclass
class AuditedFile:
    manifest: FileManifest
    shard_audits: list[ShardAudit] = field(default_factory=list)

    def audit_for(self, provider: str) -> ShardAudit | None:
        for audit in self.shard_audits:
            if audit.provider == provider and not audit.replaced:
                return audit
        return None


class AuditedDsn:
    """A decentralized storage deployment with full on-chain auditing.

    ``chain`` may be a single :class:`~repro.chain.Blockchain` or a
    :class:`~repro.chain.fabric.ShardedChainFabric`: each shard's audit
    contract (and its owner/provider accounts) lands on the audited file
    name's deterministic home lane, ``step()`` mines every lane in
    lockstep, and the reputation registry lives on its own lane with
    reports routed to it by address — so one DSN's audit traffic spreads
    across the fabric instead of serializing through one block producer.
    """

    def __init__(
        self,
        cluster: DsnCluster,
        chain,
        beacon: RandomnessBeacon,
        params: ProtocolParams | None = None,
        terms: ContractTerms | None = None,
        reputation: ReputationRegistry | None = None,
        rng=None,
        placement=None,
        validate_packages: bool = True,
        key_mode: str = "random",
    ):
        self.cluster = cluster
        self.chain = chain
        self.beacon = beacon
        self.params = params or ProtocolParams(s=8, k=5)
        self.terms = terms or ContractTerms(
            num_audits=3, audit_interval=100.0, response_window=30.0
        )
        self.reputation = reputation
        self._reputation_address: str | None = None
        self._rng = rng
        # Optional PlacementStrategy: routes both initial placement and
        # repair re-placement (e.g. ReputationWeightedPlacement backed by
        # the on-chain registry).  None keeps pure Chord semantics.
        self.placement = placement
        # Package validation at contract acknowledge time is a pairing-heavy
        # check already covered by the core tests; long-horizon simulations
        # switch it off to keep thousands of (re-)deployments affordable.
        self.validate_packages = validate_packages
        # "convergent" makes stored ciphertexts a pure function of the
        # plaintext — what seed-deterministic simulations need ("random"
        # draws key and nonce from the OS CSPRNG).
        self.key_mode = key_mode
        self.files: dict[str, AuditedFile] = {}
        self._clients: dict[str, DsnClient] = {}
        if reputation is not None:
            operator = chain.create_account(1.0, label="registry-operator")
            self._reputation_address = chain.deploy(reputation, deployer=operator)

    # -- storage + contract deployment --------------------------------------

    def store(
        self, owner_name: str, file_id: str, data: bytes, n: int = 6, k: int = 3
    ) -> AuditedFile:
        """Place a file and put every shard under an audit contract."""
        client = DsnClient(owner_name, self.cluster)
        if self.placement is not None:
            from .storage.placement import place_with_strategy

            manifest = place_with_strategy(
                client, self.placement, file_id, data, n=n, k=k,
                key_mode=self.key_mode,
            )
        else:
            manifest = client.store(file_id, data, n=n, k=k, key_mode=self.key_mode)
        audited = AuditedFile(manifest=manifest)
        self.files[file_id] = audited
        self._clients[file_id] = client
        for location in manifest.shards:
            self._deploy_shard_contract(audited, location.provider, location.shard_index)
        return audited

    def _deploy_shard_contract(
        self, audited: AuditedFile, provider_name: str, shard_index: int
    ) -> ShardAudit:
        shard_data = self.cluster.node(provider_name).get(
            audited.manifest.file_id, shard_index
        )
        if shard_data is None:
            raise RuntimeError(f"{provider_name} does not hold shard {shard_index}")
        owner = DataOwner(self.params, rng=self._rng)
        package = owner.prepare(shard_data)
        provider_role = StorageProvider(rng=self._rng)
        deployment = deploy_audit_contract(
            self.chain,
            package,
            provider_role,
            self.terms,
            self.beacon,
            self.params,
            validate=self.validate_packages,
        )
        audited.manifest.audit_names[f"{provider_name}:{shard_index}"] = package.name
        shard_audit = ShardAudit(
            provider=provider_name,
            shard_index=shard_index,
            deployment=deployment,
            file_name=package.name,
            package=package,
        )
        audited.shard_audits.append(shard_audit)
        return shard_audit

    # -- the operational loop -------------------------------------------------

    def step(self) -> list[str]:
        """Mine one block, let agents act, and repair any failed shard.

        Returns the file ids repaired in this step.
        """
        self.chain.mine_block()
        repaired = []
        for file_id, audited in self.files.items():
            for shard_audit in list(audited.shard_audits):
                if shard_audit.replaced:
                    continue
                shard_audit.deployment.provider_agent.on_block()
                contract = self.chain.contract_at(
                    shard_audit.deployment.contract_address
                )
                assert isinstance(contract, AuditContract)
                self._report_reputation(shard_audit, contract)
                if contract.fails > 0 and not shard_audit.replaced:
                    self._repair(file_id, audited, shard_audit)
                    repaired.append(file_id)
        return repaired

    def run(self, blocks: int) -> list[str]:
        repaired = []
        for _ in range(blocks):
            repaired.extend(self.step())
        return repaired

    def all_contracts_closed(self) -> bool:
        return all(
            self.chain.contract_at(sa.deployment.contract_address).state
            is State.CLOSED
            for audited in self.files.values()
            for sa in audited.shard_audits
            if not sa.replaced
        )

    # -- repair ---------------------------------------------------------------

    def _repair(
        self, file_id: str, audited: AuditedFile, failed: ShardAudit
    ) -> None:
        """Regenerate the failed provider's shard onto a fresh node."""
        client = self._clients[file_id]
        manifest = client.repair(
            audited.manifest, failed.provider, strategy=self.placement
        )
        audited.manifest = manifest
        failed.replaced = True
        # Find the replacement location and put it under audit too.
        replacement = next(
            loc
            for loc in manifest.shards
            if loc.shard_index == failed.shard_index
        )
        self._deploy_shard_contract(
            audited, replacement.provider, replacement.shard_index
        )

    # -- reputation bridge ------------------------------------------------------

    def _report_reputation(
        self, shard_audit: ShardAudit, contract: AuditContract
    ) -> None:
        if self.reputation is None or self._reputation_address is None:
            return
        record = self.reputation.providers.get(shard_audit.provider)
        if record is None:
            return
        reported = getattr(shard_audit, "_reported_rounds", 0)
        for round_record in contract.rounds[reported:]:
            if round_record.passed is None:
                break
            self.chain.transact(
                Transaction(
                    sender=contract.address,
                    to=self._reputation_address,
                    method="report_audit",
                    args=(shard_audit.provider, round_record.passed),
                    gas_price_gwei=0.0,
                )
            )
            reported += 1
        shard_audit._reported_rounds = reported  # type: ignore[attr-defined]

    # -- retrieval ---------------------------------------------------------------

    def retrieve(self, file_id: str) -> bytes:
        return self._clients[file_id].retrieve(self.files[file_id].manifest)
