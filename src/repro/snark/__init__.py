"""Groth16 zk-SNARK toolchain and the paper's strawman auditing protocol.

* :mod:`repro.snark.r1cs` — constraint-system builder,
* :mod:`repro.snark.qap` — R1CS-to-QAP reduction over an NTT domain,
* :mod:`repro.snark.groth16` — trusted setup / prover / verifier,
* :mod:`repro.snark.circuits` — MiMC and Merkle-membership gadgets,
* :mod:`repro.snark.strawman` — the Section IV baseline end to end.
"""

from .groth16 import Proof, ProvingKey, SetupResult, VerifyingKey, prove, setup, verify
from .qap import Qap, compute_h_coefficients, r1cs_to_qap
from .r1cs import Constraint, ConstraintSystem, LinearCombination
from .strawman import StrawmanOwner, StrawmanProver, StrawmanSetup, StrawmanVerifier

__all__ = [
    "Constraint",
    "ConstraintSystem",
    "LinearCombination",
    "Proof",
    "ProvingKey",
    "Qap",
    "SetupResult",
    "StrawmanOwner",
    "StrawmanProver",
    "StrawmanSetup",
    "StrawmanVerifier",
    "VerifyingKey",
    "compute_h_coefficients",
    "prove",
    "r1cs_to_qap",
    "setup",
    "verify",
]
