"""R1CS -> Quadratic Arithmetic Program over a power-of-two NTT domain.

Each variable j induces three polynomials A_j, B_j, C_j with
``A_j(omega^i) = coeff of w_j in constraint i's A row`` (etc.).  The witness
satisfies the R1CS iff ``A(X)*B(X) - C(X)`` is divisible by the vanishing
polynomial ``Z(X) = X^n - 1`` — the prover's job is to exhibit the quotient
``H(X)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.bn254.constants import CURVE_ORDER as R
from ..core.polynomial import evaluate, interpolate_on_domain, ntt
from .r1cs import ConstraintSystem


def _next_power_of_two(n: int) -> int:
    return 1 if n <= 1 else 1 << (n - 1).bit_length()


@dataclass(frozen=True)
class Qap:
    """Variable polynomials in coefficient form plus the domain size."""

    domain_size: int
    num_public: int
    a_polys: tuple[tuple[int, ...], ...]
    b_polys: tuple[tuple[int, ...], ...]
    c_polys: tuple[tuple[int, ...], ...]

    @property
    def num_variables(self) -> int:
        return len(self.a_polys)

    def evaluate_at(self, tau: int) -> tuple[list[int], list[int], list[int]]:
        """A_j(tau), B_j(tau), C_j(tau) for all j (trusted-setup helper)."""
        return (
            [evaluate(p, tau) for p in self.a_polys],
            [evaluate(p, tau) for p in self.b_polys],
            [evaluate(p, tau) for p in self.c_polys],
        )

    def vanishing_at(self, tau: int) -> int:
        return (pow(tau, self.domain_size, R) - 1) % R


def r1cs_to_qap(cs: ConstraintSystem) -> Qap:
    """Interpolate the per-variable row polynomials over the NTT domain."""
    n = _next_power_of_two(max(1, cs.num_constraints))
    num_vars = cs.num_variables
    a_evals = [[0] * n for _ in range(num_vars)]
    b_evals = [[0] * n for _ in range(num_vars)]
    c_evals = [[0] * n for _ in range(num_vars)]
    for row, constraint in enumerate(cs.constraints):
        for index, coeff in constraint.a.terms.items():
            a_evals[index][row] = coeff
        for index, coeff in constraint.b.terms.items():
            b_evals[index][row] = coeff
        for index, coeff in constraint.c.terms.items():
            c_evals[index][row] = coeff
    return Qap(
        domain_size=n,
        num_public=cs.num_public,
        a_polys=tuple(tuple(interpolate_on_domain(e)) for e in a_evals),
        b_polys=tuple(tuple(interpolate_on_domain(e)) for e in b_evals),
        c_polys=tuple(tuple(interpolate_on_domain(e)) for e in c_evals),
    )


def compute_h_coefficients(qap: Qap, witness: list[int]) -> list[int]:
    """Quotient H(X) = (A(X)B(X) - C(X)) / (X^n - 1) for a valid witness.

    Raises ValueError when the witness does not satisfy the QAP (division
    leaves a remainder) — this is what stops a cheating prover before any
    group operation happens.
    """
    n = qap.domain_size

    def combine(polys: tuple[tuple[int, ...], ...]) -> list[int]:
        out = [0] * n
        for w, poly in zip(witness, polys):
            if w == 0:
                continue
            for index, coeff in enumerate(poly):
                out[index] = (out[index] + w * coeff) % R
        return out

    a = combine(qap.a_polys)
    b = combine(qap.b_polys)
    c = combine(qap.c_polys)
    # Multiply A*B on a double-size domain, subtract C.
    size = 2 * n
    a_vals = ntt(a + [0] * (size - n))
    b_vals = ntt(b + [0] * (size - n))
    product = ntt([x * y % R for x, y in zip(a_vals, b_vals)], invert=True)
    for index, coeff in enumerate(c):
        product[index] = (product[index] - coeff) % R
    # Divide by X^n - 1 from the top coefficient down.
    quotient = [0] * (size - n)
    remainder = list(product)
    for index in range(size - 1, n - 1, -1):
        coeff = remainder[index]
        if coeff == 0:
            continue
        quotient[index - n] = coeff
        remainder[index] = 0
        remainder[index - n] = (remainder[index - n] + coeff) % R
    if any(remainder):
        raise ValueError("witness does not satisfy the QAP (non-zero remainder)")
    # H has degree <= n-2 for a valid witness; drop trailing zeros so the
    # prover's MSM aligns with the n-1 published h-terms.
    while quotient and quotient[-1] == 0:
        quotient.pop()
    return quotient
