"""Rank-1 constraint systems: the circuit language under the strawman SNARK.

A constraint is ``<A, w> * <B, w> = <C, w>`` over the witness vector
``w = (1, public..., private...)``.  :class:`ConstraintSystem` is the
builder used by the gadgets in :mod:`repro.snark.circuits`; it doubles as a
witness calculator (each helper both adds constraints and computes the new
variable's value when inputs are assigned).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.bn254.constants import CURVE_ORDER as R


class LinearCombination:
    """Sparse linear combination of witness variables: sum coeff_i * w_i."""

    __slots__ = ("terms",)

    def __init__(self, terms: dict[int, int] | None = None):
        self.terms = {k: v % R for k, v in (terms or {}).items() if v % R}

    @staticmethod
    def variable(index: int, coeff: int = 1) -> "LinearCombination":
        return LinearCombination({index: coeff})

    @staticmethod
    def constant(value: int) -> "LinearCombination":
        return LinearCombination({0: value})

    def __add__(self, other: "LinearCombination") -> "LinearCombination":
        merged = dict(self.terms)
        for index, coeff in other.terms.items():
            merged[index] = (merged.get(index, 0) + coeff) % R
        return LinearCombination(merged)

    def __sub__(self, other: "LinearCombination") -> "LinearCombination":
        return self + other.scale(R - 1)

    def scale(self, scalar: int) -> "LinearCombination":
        scalar %= R
        return LinearCombination(
            {index: coeff * scalar % R for index, coeff in self.terms.items()}
        )

    def evaluate(self, witness: list[int]) -> int:
        return sum(
            coeff * witness[index] for index, coeff in self.terms.items()
        ) % R

    def is_zero(self) -> bool:
        return not self.terms

    def __repr__(self) -> str:
        return f"LC({self.terms})"


@dataclass(frozen=True)
class Constraint:
    a: LinearCombination
    b: LinearCombination
    c: LinearCombination


@dataclass
class ConstraintSystem:
    """Builder + witness calculator for R1CS circuits.

    Variable 0 is the constant ONE.  Public variables are allocated before
    any private variable (Groth16 requires the split to be a prefix).
    """

    constraints: list[Constraint] = field(default_factory=list)
    witness: list[int] = field(default_factory=lambda: [1])
    num_public: int = 1  # includes the constant ONE
    _sealed_public: bool = field(default=False, repr=False)

    ONE = 0

    # -- allocation ---------------------------------------------------------

    def public_input(self, value: int) -> int:
        if self._sealed_public:
            raise ValueError("public inputs must be allocated before privates")
        self.witness.append(value % R)
        index = len(self.witness) - 1
        self.num_public += 1
        return index

    def private_input(self, value: int) -> int:
        self._sealed_public = True
        self.witness.append(value % R)
        return len(self.witness) - 1

    @property
    def num_variables(self) -> int:
        return len(self.witness)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def lc(self, index: int, coeff: int = 1) -> LinearCombination:
        return LinearCombination.variable(index, coeff)

    def value(self, index: int) -> int:
        return self.witness[index]

    # -- constraint helpers --------------------------------------------------

    def enforce(
        self, a: LinearCombination, b: LinearCombination, c: LinearCombination
    ) -> None:
        self.constraints.append(Constraint(a, b, c))

    def enforce_equal(self, a: LinearCombination, b: LinearCombination) -> None:
        """a == b  encoded as  (a - b) * 1 = 0."""
        self.enforce(a - b, LinearCombination.constant(1), LinearCombination())

    def mul(self, a: LinearCombination, b: LinearCombination) -> int:
        """Allocate product variable z with constraint a * b = z."""
        product = a.evaluate(self.witness) * b.evaluate(self.witness) % R
        index = self.private_input(product)
        self.enforce(a, b, LinearCombination.variable(index))
        return index

    def enforce_boolean(self, index: int) -> None:
        """x * (x - 1) = 0."""
        x = LinearCombination.variable(index)
        self.enforce(x, x - LinearCombination.constant(1), LinearCombination())

    def select(
        self, bit: int, if_one: LinearCombination, if_zero: LinearCombination
    ) -> LinearCombination:
        """Mux: returns if_zero + bit * (if_one - if_zero) (1 constraint)."""
        difference = if_one - if_zero
        product = self.mul(LinearCombination.variable(bit), difference)
        return if_zero + LinearCombination.variable(product)

    # -- satisfaction ---------------------------------------------------------

    def is_satisfied(self, witness: list[int] | None = None) -> bool:
        w = self.witness if witness is None else witness
        return all(
            constraint.a.evaluate(w) * constraint.b.evaluate(w) % R
            == constraint.c.evaluate(w)
            for constraint in self.constraints
        )

    def first_unsatisfied(self, witness: list[int] | None = None) -> int | None:
        w = self.witness if witness is None else witness
        for index, constraint in enumerate(self.constraints):
            if (
                constraint.a.evaluate(w) * constraint.b.evaluate(w) % R
                != constraint.c.evaluate(w)
            ):
                return index
        return None

    def public_values(self) -> list[int]:
        """The statement: [1, public inputs...]."""
        return self.witness[: self.num_public]
