"""The strawman auditing protocol of paper Section IV, end to end.

Flow: the owner builds a MiMC Merkle tree over the file blocks and performs
the circuit's trusted setup; ``rt``, the verification key and the contract
terms go on chain.  Each round the contract's randomness selects a leaf; the
*prover* produces a Groth16 proof that the challenged leaf hashes up to
``rt`` — on-chain privacy via zero knowledge, on-chain efficiency via proof
succinctness.  All the pain lives off-chain: the trusted setup, the
megabytes of parameters, and the seconds-per-proof generation that Table II
charges against this design.

Section IV-D's second limitation — challenge-space exhaustion — is also
modelled: :meth:`StrawmanProver.precompute_all_proofs` shows that once the
(low-entropy) challenge domain has been swept, the provider can answer every
future audit from a proof cache and **delete the file**.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..crypto.bn254.constants import CURVE_ORDER as R
from ..crypto.field import bytes_to_blocks
from ..crypto.prf import FeistelPrp
from .circuits.merkle_circuit import (
    MerkleCircuitWitness,
    MiMCMerkleTree,
    build_merkle_circuit,
    circuit_constraint_count,
    sha256_equivalent_constraints,
)
from .groth16 import Proof, SetupResult, prove, setup, verify


@dataclass
class StrawmanSetup:
    """Owner-side output of the strawman Initialize phase."""

    root: int
    depth: int
    num_leaves: int
    snark: SetupResult
    constraint_count: int
    sha256_equivalent: int

    @property
    def param_bytes(self) -> int:
        """Public parameter footprint (pk + vk) — Table II "Param. size"."""
        return self.snark.proving_key.byte_size() + self.snark.verifying_key.byte_size()


class StrawmanOwner:
    """Data owner D in the strawman: tree construction + trusted setup."""

    def __init__(self, data: bytes, rng=None):
        if not data:
            raise ValueError("cannot audit an empty file")
        self.blocks = bytes_to_blocks(data)
        self.tree = MiMCMerkleTree(self.blocks)
        self._rng = rng

    def trusted_setup(self) -> StrawmanSetup:
        """Run the per-file circuit setup (the strawman's dominant cost)."""
        # Build the circuit shape with a throwaway witness (index 0).
        witness = MerkleCircuitWitness(
            root=self.tree.root,
            leaf_index=0,
            leaf_value=self.tree.levels[0][0],
            siblings=self.tree.siblings(0),
        )
        cs = build_merkle_circuit(witness)
        snark = setup(cs, rng=self._rng)
        return StrawmanSetup(
            root=self.tree.root,
            depth=self.tree.depth,
            num_leaves=self.tree.num_leaves,
            snark=snark,
            constraint_count=cs.num_constraints,
            sha256_equivalent=sha256_equivalent_constraints(self.tree.depth),
        )


class StrawmanProver:
    """Storage provider S: stores blocks, answers challenges with SNARKs."""

    def __init__(self, blocks: list[int], setup_result: StrawmanSetup, rng=None):
        self.tree: MiMCMerkleTree | None = MiMCMerkleTree(blocks)
        if self.tree.root != setup_result.root:
            raise ValueError("stored data does not match the committed root")
        self.setup = setup_result
        self.num_leaves = self.tree.num_leaves
        self._rng = rng
        self._proof_cache: dict[int, Proof] = {}

    def challenge_to_leaf(self, challenge_seed: bytes) -> int:
        """PRF mapping from the round randomness to a leaf index."""
        prp = FeistelPrp(challenge_seed, self.num_leaves)
        return prp.permute(0)

    def respond(self, challenge_seed: bytes) -> tuple[Proof, list[int], float]:
        """Generate the round's proof; returns (proof, publics, seconds)."""
        leaf_index = self.challenge_to_leaf(challenge_seed)
        if leaf_index in self._proof_cache:
            proof = self._proof_cache[leaf_index]
            publics = self._public_values(leaf_index)
            return proof, publics, 0.0
        if self.tree is None:
            raise RuntimeError(
                "data discarded and no cached proof for this leaf: busted"
            )
        start = time.perf_counter()
        witness_obj = MerkleCircuitWitness(
            root=self.setup.root,
            leaf_index=leaf_index,
            leaf_value=self.tree.levels[0][leaf_index],
            siblings=self.tree.siblings(leaf_index),
        )
        cs = build_merkle_circuit(witness_obj)
        proof = prove(self.setup.snark.proving_key, self.setup.snark.qap, cs.witness, rng=self._rng)
        elapsed = time.perf_counter() - start
        return proof, cs.public_values(), elapsed

    def _public_values(self, leaf_index: int) -> list[int]:
        publics = [1, self.setup.root]
        publics += [(leaf_index >> level) & 1 for level in range(self.setup.depth)]
        return publics

    def precompute_all_proofs(self) -> int:
        """The Section IV-D exhaustion attack: cache a proof per leaf.

        After this returns, the provider can discard the file and keep
        passing audits forever (the challenge only selects a leaf index).
        Returns the number of cached proofs.
        """
        for leaf_index in range(self.tree.num_leaves):
            witness_obj = MerkleCircuitWitness(
                root=self.setup.root,
                leaf_index=leaf_index,
                leaf_value=self.tree.levels[0][leaf_index],
                siblings=self.tree.siblings(leaf_index),
            )
            cs = build_merkle_circuit(witness_obj)
            self._proof_cache[leaf_index] = prove(
                self.setup.snark.proving_key, self.setup.snark.qap, cs.witness, rng=self._rng
            )
        return len(self._proof_cache)

    def discard_data(self) -> None:
        """Drop the file, keeping only cached proofs (exhaustion attack)."""
        self.tree = None  # type: ignore[assignment]


class StrawmanVerifier:
    """The on-chain side: constant-cost Groth16 verification."""

    def __init__(self, setup_result: StrawmanSetup):
        self.setup = setup_result

    def verify(self, challenge_seed: bytes, proof: Proof, publics: list[int]) -> bool:
        # Recompute the expected leaf index from the challenge and pin the
        # public inputs to it (otherwise the prover could open any leaf).
        prp = FeistelPrp(challenge_seed, self.setup.num_leaves)
        expected_index = prp.permute(0)
        expected_publics = [1, self.setup.root] + [
            (expected_index >> level) & 1 for level in range(self.setup.depth)
        ]
        if publics != expected_publics:
            return False
        return verify(self.setup.snark.verifying_key, publics, proof)
