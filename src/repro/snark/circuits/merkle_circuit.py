"""The strawman's statement circuit: Merkle-path membership (paper IV-B).

Proves, in zero knowledge:  "I know a leaf value ``m_i`` and sibling hashes
such that the authentication path for public index bits leads to the public
root ``rt``."  The leaf and siblings are private witnesses — exactly what
keeps the challenged block off the chain in the strawman design.

Public inputs (in order): root, index bit per level.
Private inputs: leaf value, sibling per level.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...crypto.bn254.constants import CURVE_ORDER as R
from ...crypto.mimc import mimc_hash2
from ..r1cs import ConstraintSystem, LinearCombination
from .mimc_gadget import mimc_hash2_gadget


def merkle_root_native(leaf: int, siblings: list[int], index: int) -> int:
    """Reference (non-circuit) path evaluation over the MiMC tree."""
    current = leaf % R
    for level, sibling in enumerate(siblings):
        if (index >> level) & 1:
            current = mimc_hash2(sibling, current)
        else:
            current = mimc_hash2(current, sibling)
    return current


class MiMCMerkleTree:
    """Merkle tree over field elements using the MiMC 2-to-1 hash.

    The strawman data owner builds this over the file's blocks and records
    the root on chain (paper IV-B: "construct a Merkle tree from data to be
    stored and obtain the Merkle root rt").  Leaf count is padded to a power
    of two with zero leaves.
    """

    def __init__(self, leaves: list[int]):
        if not leaves:
            raise ValueError("cannot build a Merkle tree with no leaves")
        size = 1 if len(leaves) == 1 else 1 << (len(leaves) - 1).bit_length()
        padded = [leaf % R for leaf in leaves] + [0] * (size - len(leaves))
        self.levels = [padded]
        while len(self.levels[-1]) > 1:
            current = self.levels[-1]
            self.levels.append(
                [
                    mimc_hash2(current[i], current[i + 1])
                    for i in range(0, len(current), 2)
                ]
            )

    @property
    def root(self) -> int:
        return self.levels[-1][0]

    @property
    def depth(self) -> int:
        return len(self.levels) - 1

    @property
    def num_leaves(self) -> int:
        return len(self.levels[0])

    def siblings(self, index: int) -> list[int]:
        if not 0 <= index < self.num_leaves:
            raise IndexError("leaf index out of range")
        path = []
        for level in self.levels[:-1]:
            path.append(level[index ^ 1])
            index >>= 1
        return path


@dataclass
class MerkleCircuitWitness:
    """Everything needed to instantiate one proof of the statement."""

    root: int
    leaf_index: int
    leaf_value: int
    siblings: list[int]


def build_merkle_circuit(witness: MerkleCircuitWitness) -> ConstraintSystem:
    """Construct the R1CS with the witness filled in.

    Layout: public = [1, root, bit_0 .. bit_{d-1}]; private = leaf, siblings,
    then all intermediate MiMC state.
    """
    cs = ConstraintSystem()
    depth = len(witness.siblings)
    root_var = cs.public_input(witness.root)
    bit_vars = [
        cs.public_input((witness.leaf_index >> level) & 1) for level in range(depth)
    ]
    leaf_var = cs.private_input(witness.leaf_value % R)
    sibling_vars = [cs.private_input(s % R) for s in witness.siblings]

    for bit in bit_vars:
        cs.enforce_boolean(bit)

    current = LinearCombination.variable(leaf_var)
    for level in range(depth):
        sibling = LinearCombination.variable(sibling_vars[level])
        bit = bit_vars[level]
        # left = bit ? sibling : current ; right = bit ? current : sibling.
        left = cs.select(bit, sibling, current)
        right = cs.select(bit, current, sibling)
        current = mimc_hash2_gadget(cs, left, right)

    cs.enforce_equal(current, LinearCombination.variable(root_var))
    return cs


def circuit_constraint_count(depth: int) -> int:
    """Predicted constraint count: depth * (2 mux + 364 MiMC) + depth bool + 1."""
    from .mimc_gadget import CONSTRAINTS_PER_PERMUTATION

    return depth * (2 + CONSTRAINTS_PER_PERMUTATION) + depth + 1


def sha256_equivalent_constraints(depth: int) -> int:
    """Constraint model for a SHA-256-based circuit (the paper's Bellman
    prototype): ~27k constraints per compression, two compressions per
    double-width node hash.  For a 1 KB file (32 leaves, depth 5) this gives
    ~2.7e5 constraints, matching Table II's 3 x 10^5 within rounding.
    """
    sha256_compression_constraints = 27_000
    return depth * 2 * sha256_compression_constraints
