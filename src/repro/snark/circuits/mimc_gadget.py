"""MiMC gadgets: the in-circuit version of :mod:`repro.crypto.mimc`.

Each of the 91 rounds computes ``t = x + k + c_i`` (free: linear) and
``t^7`` (4 multiplication constraints: t2, t4, t6, t7), so one permutation
costs 364 constraints and one 2-to-1 hash costs 364 + 2 linear checks —
versus ~27,000 for a SHA-256 compression, the factor the strawman benchmark
quantifies.

The gadget mirrors the native implementation exactly; a test asserts the
circuit output equals :func:`repro.crypto.mimc.mimc_hash2` on random inputs.
"""

from __future__ import annotations

from ...crypto.mimc import EXPONENT, ROUND_CONSTANTS
from ..r1cs import ConstraintSystem, LinearCombination

assert EXPONENT == 7, "gadget is specialised to the x^7 round function"

#: Multiplication constraints per MiMC permutation (4 per round).
CONSTRAINTS_PER_PERMUTATION = 4 * len(ROUND_CONSTANTS)


def mimc_permutation_gadget(
    cs: ConstraintSystem, x: LinearCombination, key: LinearCombination
) -> LinearCombination:
    """Constrain and compute MiMC-n/n: 91 rounds of (x + k + c)^7, + k."""
    state = x
    for constant in ROUND_CONSTANTS:
        t = state + key + LinearCombination.constant(constant)
        t2 = LinearCombination.variable(cs.mul(t, t))
        t4 = LinearCombination.variable(cs.mul(t2, t2))
        t6 = LinearCombination.variable(cs.mul(t4, t2))
        t7 = LinearCombination.variable(cs.mul(t6, t))
        state = t7
    return state + key


def mimc_hash2_gadget(
    cs: ConstraintSystem, left: LinearCombination, right: LinearCombination
) -> LinearCombination:
    """Miyaguchi-Preneel compression: E_right(left) + left + right."""
    permuted = mimc_permutation_gadget(cs, left, right)
    return permuted + left + right
