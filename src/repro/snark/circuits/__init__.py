"""Circuit gadgets for the strawman SNARK."""

from .merkle_circuit import (
    MerkleCircuitWitness,
    MiMCMerkleTree,
    build_merkle_circuit,
    circuit_constraint_count,
    merkle_root_native,
    sha256_equivalent_constraints,
)
from .mimc_gadget import (
    CONSTRAINTS_PER_PERMUTATION,
    mimc_hash2_gadget,
    mimc_permutation_gadget,
)

__all__ = [
    "CONSTRAINTS_PER_PERMUTATION",
    "MerkleCircuitWitness",
    "MiMCMerkleTree",
    "build_merkle_circuit",
    "circuit_constraint_count",
    "merkle_root_native",
    "mimc_hash2_gadget",
    "mimc_permutation_gadget",
    "sha256_equivalent_constraints",
]
