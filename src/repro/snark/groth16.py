"""Groth16 zk-SNARK (setup / prove / verify) over BN254.

This is the proving system behind the paper's strawman (their prototype used
Rust Bellman; Table II).  The implementation follows the original paper
[Groth16] directly:

* **Setup** samples toxic waste ``(tau, alpha, beta, gamma, delta)`` and
  emits the proving key (size linear in the circuit) and verification key
  (size linear in the public inputs) — the "Param. size" column of Table II.
* **Prove** costs a handful of MSMs over the proving key plus one NTT-based
  quotient computation — the 30 s / ~300 MB row of Table II.
* **Verify** is three pairings and one small MSM, independent of the
  circuit — which is why the SNARK *verification* column of Table II is
  already cheap; the strawman loses on everything else.

The proof is (A in G1, B in G2, C in G1): 128 bytes compressed, 256 bytes
uncompressed (the paper reports 384 bytes for Bellman's encoding including
the public-input block; our Table II bench prints all three accountings).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..crypto.bn254 import (
    CURVE_ORDER,
    G1Point,
    G2Point,
    g1_to_bytes,
    g2_to_bytes,
    multi_scalar_mul,
    pairing,
    pairing_check,
)
from ..crypto.bn254.fields import Fp12
from ..crypto.field import random_scalar
from .qap import Qap, compute_h_coefficients, r1cs_to_qap
from .r1cs import ConstraintSystem

R = CURVE_ORDER


@dataclass(frozen=True)
class ProvingKey:
    alpha_g1: G1Point
    beta_g1: G1Point
    beta_g2: G2Point
    delta_g1: G1Point
    delta_g2: G2Point
    tau_powers_g1: tuple[G1Point, ...]          # g1^(tau^i), i < n
    tau_powers_g2: tuple[G2Point, ...]          # g2^(tau^i), i < n
    private_terms_g1: tuple[G1Point, ...]       # (beta*A_j + alpha*B_j + C_j)/delta
    h_terms_g1: tuple[G1Point, ...]             # tau^i * Z(tau)/delta, i < n-1

    def byte_size(self) -> int:
        g1_count = (
            3
            + len(self.tau_powers_g1)
            + len(self.private_terms_g1)
            + len(self.h_terms_g1)
        )
        g2_count = 2 + len(self.tau_powers_g2)
        return g1_count * 32 + g2_count * 64


@dataclass(frozen=True)
class VerifyingKey:
    alpha_g1: G1Point
    beta_g2: G2Point
    gamma_g2: G2Point
    delta_g2: G2Point
    ic: tuple[G1Point, ...]  # (beta*A_j + alpha*B_j + C_j)/gamma for public j

    def byte_size(self) -> int:
        return (1 + len(self.ic)) * 32 + 3 * 64


@dataclass(frozen=True)
class Proof:
    a: G1Point
    b: G2Point
    c: G1Point

    def to_bytes(self) -> bytes:
        return g1_to_bytes(self.a) + g2_to_bytes(self.b) + g1_to_bytes(self.c)

    def byte_size(self) -> int:
        return 128


@dataclass
class SetupResult:
    proving_key: ProvingKey
    verifying_key: VerifyingKey
    qap: Qap
    setup_seconds: float


def setup(cs: ConstraintSystem, rng=None) -> SetupResult:
    """Trusted setup: derive the CRS for this circuit (paper: 260 s, 150 MB).

    The toxic waste is sampled, used, and dropped on the floor — the classic
    strawman deployment pain the paper's main protocol avoids entirely.
    """
    start = time.perf_counter()
    qap = r1cs_to_qap(cs)
    tau = random_scalar(rng)
    alpha = random_scalar(rng)
    beta = random_scalar(rng)
    gamma = random_scalar(rng)
    delta = random_scalar(rng)
    gamma_inv = pow(gamma, -1, R)
    delta_inv = pow(delta, -1, R)

    g1 = G1Point.generator()
    g2 = G2Point.generator()
    a_at, b_at, c_at = qap.evaluate_at(tau)
    n = qap.domain_size

    tau_powers = [pow(tau, i, R) for i in range(n)]
    tau_powers_g1 = tuple(g1 * t for t in tau_powers)
    tau_powers_g2 = tuple(g2 * t for t in tau_powers)

    def combined(j: int) -> int:
        return (beta * a_at[j] + alpha * b_at[j] + c_at[j]) % R

    ic = tuple(g1 * (combined(j) * gamma_inv % R) for j in range(qap.num_public))
    private_terms = tuple(
        g1 * (combined(j) * delta_inv % R)
        for j in range(qap.num_public, qap.num_variables)
    )
    z_tau = qap.vanishing_at(tau)
    h_terms = tuple(
        g1 * (tau_powers[i] * z_tau % R * delta_inv % R) for i in range(n - 1)
    )

    proving_key = ProvingKey(
        alpha_g1=g1 * alpha,
        beta_g1=g1 * beta,
        beta_g2=g2 * beta,
        delta_g1=g1 * delta,
        delta_g2=g2 * delta,
        tau_powers_g1=tau_powers_g1,
        tau_powers_g2=tau_powers_g2,
        private_terms_g1=private_terms,
        h_terms_g1=h_terms,
    )
    verifying_key = VerifyingKey(
        alpha_g1=g1 * alpha,
        beta_g2=g2 * beta,
        gamma_g2=g2 * gamma,
        delta_g2=g2 * delta,
        ic=ic,
    )
    return SetupResult(
        proving_key=proving_key,
        verifying_key=verifying_key,
        qap=qap,
        setup_seconds=time.perf_counter() - start,
    )


def prove(
    proving_key: ProvingKey,
    qap: Qap,
    witness: list[int],
    rng=None,
) -> Proof:
    """Generate a zero-knowledge proof for the given satisfying witness."""
    if len(witness) != qap.num_variables:
        raise ValueError("witness length mismatch")
    h_coeffs = compute_h_coefficients(qap, witness)

    def combined_coefficients(polys) -> tuple[list[int], list[int]]:
        """Dense coefficients of sum_j w_j * poly_j, as (indices, values)."""
        acc: dict[int, int] = {}
        for w, poly in zip(witness, polys):
            if w == 0:
                continue
            for index, coeff in enumerate(poly):
                if coeff:
                    acc[index] = (acc.get(index, 0) + w * coeff) % R
        indices = sorted(acc)
        return indices, [acc[i] for i in indices]

    r_blind = random_scalar(rng)
    s_blind = random_scalar(rng)

    a_idx, a_vals = combined_coefficients(qap.a_polys)
    b_idx, b_vals = combined_coefficients(qap.b_polys)
    a_eval = multi_scalar_mul(
        [proving_key.tau_powers_g1[i] for i in a_idx],
        a_vals,
        identity=G1Point.infinity(),
    )
    b_eval_g2 = multi_scalar_mul(
        [proving_key.tau_powers_g2[i] for i in b_idx],
        b_vals,
        identity=G2Point.infinity(),
    )
    b_eval_g1 = multi_scalar_mul(
        [proving_key.tau_powers_g1[i] for i in b_idx],
        b_vals,
        identity=G1Point.infinity(),
    )

    a_point = proving_key.alpha_g1 + a_eval + proving_key.delta_g1 * r_blind
    b_point_g2 = proving_key.beta_g2 + b_eval_g2 + proving_key.delta_g2 * s_blind
    b_point_g1 = proving_key.beta_g1 + b_eval_g1 + proving_key.delta_g1 * s_blind

    private_witness = witness[qap.num_public :]
    c_point = multi_scalar_mul(
        list(proving_key.private_terms_g1),
        private_witness,
        identity=G1Point.infinity(),
    )
    if h_coeffs:
        c_point = c_point + multi_scalar_mul(
            list(proving_key.h_terms_g1[: len(h_coeffs)]), h_coeffs
        )
    c_point = (
        c_point
        + a_point * s_blind
        + b_point_g1 * r_blind
        - proving_key.delta_g1 * (r_blind * s_blind % R)
    )
    return Proof(a=a_point, b=b_point_g2, c=c_point)


def verify(
    verifying_key: VerifyingKey, public_values: list[int], proof: Proof
) -> bool:
    """e(A, B) == e(alpha, beta) * e(IC(pub), gamma) * e(C, delta)."""
    if len(public_values) != len(verifying_key.ic):
        raise ValueError(
            f"expected {len(verifying_key.ic)} public values, got {len(public_values)}"
        )
    ic_point = multi_scalar_mul(list(verifying_key.ic), public_values)
    return pairing_check(
        [
            (-proof.a, proof.b),
            (verifying_key.alpha_g1, verifying_key.beta_g2),
            (ic_point, verifying_key.gamma_g2),
            (proof.c, verifying_key.delta_g2),
        ]
    )
