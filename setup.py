"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works in offline environments where
the ``wheel`` package (needed by the PEP-517 editable path) is missing.
"""

from setuptools import setup

setup()
