"""Parallel audit engine vs. the sequential seed path (acceptance bench).

64 concurrent audit instances (8 owners x 8 files, bench-scale s=10, k=8),
one beacon epoch:

* **sequential seed path** — what the pre-engine code does for 64 audits:
  one fresh prover per file (each rebuilding its own GT fixed-base table),
  one ``respond_private`` + one Eq.-(2) ``verify_private`` per audit, 64
  final exponentiations.
* **engine path** — the :class:`~repro.engine.EpochScheduler`: one
  challenge per instance from the shared beacon round, proving through the
  :class:`~repro.engine.AuditExecutor` (precompute caches shared per
  worker; on this host's core count the executor may resolve to inline
  mode), all proofs fed into the grouped one-final-exponentiation batch
  verifier.

Asserted acceptance criteria:

* engine throughput >= 2x the sequential path for the 64-audit epoch,
* the engine's proofs equal the sequential proofs **bit-for-bit** (same
  deterministic per-task nonces), and the batch verdict agrees with the 64
  individual verdicts.

Two further epochs are timed: epoch 1 while per-point wNAF tables are
still being built for newly challenged chunks, and epoch 2 as the warm
steady state every later epoch matches (the amortization argument of
docs/BENCHMARKS.md).
"""

from __future__ import annotations

import os
import random
import time

from repro.core import DataOwner, ProtocolParams, Verifier
from repro.core.prover import ProveReport
from repro.core.verifier import VerifyReport
from repro.engine import AuditExecutor, AuditInstance, EpochScheduler
from repro.engine.tasks import ProveTask
from repro.randomness import HashChainBeacon
from repro.sim.workloads import archive_file

#: BENCH_QUICK=1 (the CI smoke job) shrinks the fleet so the bench
#: exercises every code path under a tight timeout; the >= 2x speedup
#: assertion only applies at full scale, where amortization can show.
QUICK = os.environ.get("BENCH_QUICK", "") == "1"
OWNERS = 2 if QUICK else 8
FILES_PER_OWNER = 4 if QUICK else 8
FILE_BYTES = 2_000 if QUICK else 4_000
PARAMS = ProtocolParams(s=10, k=8)
SALT = b"engine-epoch"  # EpochScheduler's default task salt
BEACON = HashChainBeacon(b"bench-parallel-engine")


def _build_fleet(rng) -> list[AuditInstance]:
    instances = []
    for owner_index in range(OWNERS):
        owner = DataOwner(PARAMS, rng=rng)
        for file_index in range(FILES_PER_OWNER):
            data = archive_file(
                FILE_BYTES, tag=f"engine-o{owner_index}f{file_index}"
            ).data
            package = owner.prepare(data, fresh_keypair=file_index == 0)
            instances.append(
                AuditInstance.from_package(package, owner_id=f"owner-{owner_index}")
            )
    return instances


def _sequential_epoch(instances, epoch: int):
    """The seed path: fresh per-file provers, per-proof verification."""
    from repro.core.challenge import epoch_challenge
    from repro.core.prover import Prover

    proofs: dict[int, bytes] = {}
    verdicts: dict[int, bool] = {}
    prove_report = ProveReport()
    verify_report = VerifyReport()
    start = time.perf_counter()
    for instance in instances:
        challenge = epoch_challenge(BEACON.output(epoch), PARAMS, instance.name)
        task = ProveTask.for_round(instance, challenge, epoch=epoch, salt=SALT)
        prover = Prover(
            instance.chunked,
            instance.public,
            list(instance.authenticators),
            rng=task.rng(),
        )
        proof = prover.respond_private(challenge, prove_report)
        proofs[instance.name] = proof.to_bytes()
        verifier = Verifier(instance.public, instance.name, instance.num_chunks)
        verdicts[instance.name] = verifier.verify_private(
            challenge, proof, verify_report
        )
    elapsed = time.perf_counter() - start
    return elapsed, proofs, verdicts


def test_parallel_engine_speedup(report):
    rng = random.Random(0xE17E)
    instances = _build_fleet(rng)
    num_audits = len(instances)
    assert num_audits == OWNERS * FILES_PER_OWNER

    sequential_seconds, sequential_proofs, sequential_verdicts = _sequential_epoch(
        instances, epoch=0
    )

    with AuditExecutor(instances) as executor:
        scheduler = EpochScheduler(
            executor,
            PARAMS,
            BEACON,
            salt=SALT,
            deterministic=True,  # bench-only: enables the bit-for-bit assert
            rng=random.Random(1),
        )
        cold = scheduler.run_epoch(0)
        # Epoch 1 still builds wNAF tables for authenticators/digests the
        # epoch-0 challenge subset never touched; epoch 2 is the steady
        # state every later epoch matches (the amortization argument).
        warming = scheduler.run_epoch(1)
        warm = scheduler.run_epoch(2)

    # -- acceptance: correctness ------------------------------------------
    assert cold.batch_ok == all(sequential_verdicts.values()) == True  # noqa: E712
    assert cold.proof_bytes() == sequential_proofs, (
        "engine proofs must match the sequential seed path bit-for-bit"
    )

    # -- acceptance: >= 2x throughput -------------------------------------
    speedup = sequential_seconds / cold.total_seconds
    warm_speedup = sequential_seconds / warm.total_seconds
    lines = [
        f"{num_audits} concurrent audits ({OWNERS} owners x {FILES_PER_OWNER} "
        f"files, s={PARAMS.s}, k={PARAMS.k}), workers={executor.workers}",
        f"sequential seed path : {sequential_seconds:7.2f} s "
        f"({num_audits / sequential_seconds:5.1f} audits/s)",
        f"engine (cold caches) : {cold.total_seconds:7.2f} s "
        f"({cold.audits_per_second:5.1f} audits/s)  -> {speedup:.2f}x",
        f"  prove {cold.prove_seconds:.2f} s + batch-verify "
        f"{cold.verify_seconds:.2f} s",
        f"engine (cache warmup): {warming.total_seconds:7.2f} s "
        f"({warming.audits_per_second:5.1f} audits/s)  -> "
        f"{sequential_seconds / warming.total_seconds:.2f}x",
        f"engine (warm caches) : {warm.total_seconds:7.2f} s "
        f"({warm.audits_per_second:5.1f} audits/s)  -> {warm_speedup:.2f}x",
        f"  prove {warm.prove_seconds:.2f} s + batch-verify "
        f"{warm.verify_seconds:.2f} s",
        "engine == sequential bit-for-bit: True",
    ]
    report("bench_parallel_engine", "\n".join(lines))
    if not QUICK:
        assert speedup >= 2.0, (
            f"engine must be >= 2x the sequential seed path, got {speedup:.2f}x"
        )


def test_persisted_cache_cold_start(report, tmp_path):
    """Acceptance: a process restart over a populated ``--crypto-cache``
    directory starts within 1.5x of warm-path throughput.

    The first run populates the store (wNAF tables, prepared G2 lines, GT
    windows) while warming its in-memory caches; the second run simulates
    a restarted auditor — fresh executor, fresh caches, same directory —
    and its *first* epoch is timed against the steady-state warm epoch.
    Proofs must match the storeless path bit-for-bit.
    """
    cache_dir = tmp_path / "crypto-cache"
    instances = _build_fleet(random.Random(0xE17E))

    with AuditExecutor(instances, cache_dir=str(cache_dir)) as executor:
        scheduler = EpochScheduler(
            executor,
            PARAMS,
            BEACON,
            salt=SALT,
            deterministic=True,
            rng=random.Random(1),
        )
        first_cold = scheduler.run_epoch(0)
        scheduler.run_epoch(1)
        warm = scheduler.run_epoch(2)

    # Restart: identical fleet, fresh process state, same store directory.
    restarted = _build_fleet(random.Random(0xE17E))
    with AuditExecutor(restarted, cache_dir=str(cache_dir)) as executor:
        scheduler = EpochScheduler(
            executor,
            PARAMS,
            BEACON,
            salt=SALT,
            deterministic=True,
            rng=random.Random(1),
        )
        persisted_cold = scheduler.run_epoch(0)
        persisted_warm = scheduler.run_epoch(2)

    assert persisted_cold.proof_bytes() == first_cold.proof_bytes(), (
        "persisted-store proofs must match the fresh-build path bit-for-bit"
    )
    assert persisted_cold.batch_ok and persisted_warm.batch_ok

    # Warm reference: best steady-state epoch either process produced
    # (single measurements on a shared host are noisy; the minimum is the
    # noise-robust estimator).
    warm_reference = min(warm.total_seconds, persisted_warm.total_seconds)
    ratio = persisted_cold.total_seconds / warm_reference
    store_files = len(list(cache_dir.glob("*.bin")))
    lines = [
        f"store: {store_files} table files under --crypto-cache",
        f"fresh-build cold epoch : {first_cold.total_seconds:7.2f} s "
        f"({first_cold.audits_per_second:5.1f} audits/s)",
        f"warm steady state      : {warm_reference:7.2f} s "
        f"({len(instances) / warm_reference:5.1f} audits/s)",
        f"persisted cold start   : {persisted_cold.total_seconds:7.2f} s "
        f"({persisted_cold.audits_per_second:5.1f} audits/s)  "
        f"-> {ratio:.2f}x warm",
        "persisted == fresh-build bit-for-bit: True",
    ]
    report("bench_persisted_cache", "\n".join(lines))
    if not QUICK:
        assert ratio <= 1.5, (
            f"persisted-cache cold start must be within 1.5x of warm-path "
            f"throughput, got {ratio:.2f}x"
        )
