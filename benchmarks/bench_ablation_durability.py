"""Durability ablation: what the audit layer buys the stored data.

Not a paper figure, but the quantitative justification for the whole
exercise: the same erasure code with and without working audit/repair
(detection probability from the Fig. 9 confidence model) differs by many
nines of annual durability.
"""

from __future__ import annotations

from repro.core.confidence import detection_probability
from repro.sim.durability import DurabilityModel, compare_redundancy_levels

SHARD_LOSS_RATE = 0.01  # 1% chance a provider silently loses a shard per day


def test_ablation_durability(benchmark, report):
    def build() -> dict:
        rows = {}
        for detection_label, detection in (
            ("no audits", 0.0),
            ("k=60 audits (45% det.)", detection_probability(60, 0.01)),
            ("k=300 audits (95% det.)", detection_probability(300, 0.01)),
            ("whole-shard loss (100%)", 1.0),
        ):
            model = DurabilityModel(
                n=10, k=3, shard_loss_rate=SHARD_LOSS_RATE, detection=detection
            )
            rows[detection_label] = model.annual_durability()
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [
        "Annual durability of RS(10,3) at 1%/day silent shard loss,",
        "as a function of the audit layer's detection probability:",
        "",
    ]
    for label, survival in rows.items():
        nines = "inf" if survival >= 1.0 else f"{-__import__('math').log10(1-survival):.1f}"
        lines.append(f"  {label:<26} survival {survival:.8f}  ({nines} nines)")
    lines += [
        "",
        "Redundancy sweep at daily audits with full detection:",
    ]
    for label, survival in compare_redundancy_levels(
        SHARD_LOSS_RATE, periods=365
    ).items():
        lines.append(f"  {label:<9} {survival:.8f}")
    lines += [
        "",
        "Reading: erasure coding without audits decays (losses accumulate",
        "undetected); audits without redundancy only *observe* the loss.",
        "The paper's combination is what produces archival durability.",
    ]
    report("ablation_durability", "\n".join(lines))
    assert rows["k=300 audits (95% det.)"] > rows["no audits"]
    assert rows["whole-shard loss (100%)"] >= rows["k=300 audits (95% det.)"]
