"""Fig. 4 — one-time on-chain public-key size vs s, with/without privacy.

Sizes come from *real* serialized keys (not just the analytic model); the
model from :mod:`repro.sim.economics` is printed alongside and must agree.
"""

from __future__ import annotations

from repro.core.keys import generate_keypair
from repro.sim.economics import one_time_storage_cost, public_key_bytes

S_VALUES = (10, 20, 50, 100)


def _measure(s: int, privacy: bool, rng) -> int:
    keypair = generate_keypair(s, private_auditing=privacy, rng=rng)
    return keypair.public.byte_size()


def test_fig4_keygen_s50(benchmark, rng):
    keypair = benchmark.pedantic(
        generate_keypair, args=(50,), kwargs={"rng": rng}, rounds=2, iterations=1
    )
    assert keypair.public.s == 50


def test_fig4_report(benchmark, report, rng):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    lines = [
        "Fig. 4 reproduction: one-time on-chain public key size (KB).",
        "Measured = serialized PublicKey; model = sim.economics formula.",
        "Paper's visual anchors: ~0.5 KB at s=10 rising to ~3.5 KB at s=100,",
        "with the w/-privacy bar a constant 192 B (the GT pairing base) higher.",
        "",
        f"{'s':>5} {'w/ privacy':>12} {'w/o privacy':>12} {'model w/':>10} "
        f"{'one-time USD':>13}",
    ]
    for s in S_VALUES:
        with_privacy = _measure(s, True, rng)
        without_privacy = _measure(s, False, rng)
        model = public_key_bytes(s, True)
        usd = one_time_storage_cost(s)["usd"]
        lines.append(
            f"{s:>5} {with_privacy/1024:>10.2f}KB {without_privacy/1024:>10.2f}KB "
            f"{model/1024:>8.2f}KB {usd:>12.2f}$"
        )
        assert with_privacy == model
        assert with_privacy - without_privacy == 192
    lines.append("")
    lines.append("Paper claim 'no more than a few US dollars': verified above.")
    report("fig4_pubkey_size", "\n".join(lines))
