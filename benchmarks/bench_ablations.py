"""Ablation benches for the design choices DESIGN.md calls out.

1. Pippenger MSM vs naive double-and-add (proving is MSM-bound),
2. multi-pairing (shared final exponentiation) vs separate pairings
   (verification is pairing-bound),
3. fixed-base GT table vs generic exponentiation (the privacy overhead),
4. batch auditing vs sequential verification (Fig. 10's provider story),
5. torus GT compression (288-byte vs 480-byte private proofs).
"""

from __future__ import annotations

import time

from repro.core import BatchItem, random_challenge, verify_batch, verify_sequential
from repro.crypto.bn254 import (
    CURVE_ORDER,
    G1Point,
    G2Point,
    GTFixedBase,
    final_exponentiation,
    gt_pow,
    gt_to_bytes,
    gt_to_bytes_uncompressed,
    miller_loop_product,
    multi_scalar_mul,
    multi_scalar_mul_naive,
    pairing,
)

G1 = G1Point.generator()
G2 = G2Point.generator()


def _msm_inputs(count: int, rng):
    points = [G1 * rng.randrange(1, CURVE_ORDER) for _ in range(count)]
    scalars = [rng.randrange(CURVE_ORDER) for _ in range(count)]
    return points, scalars


def test_ablation_msm_pippenger(benchmark, rng, report):
    points, scalars = _msm_inputs(128, rng)
    result = benchmark.pedantic(
        multi_scalar_mul, args=(points, scalars), rounds=2, iterations=1
    )
    start = time.perf_counter()
    naive = multi_scalar_mul_naive(points, scalars)
    naive_seconds = time.perf_counter() - start
    start = time.perf_counter()
    multi_scalar_mul(points, scalars)
    pip_seconds = time.perf_counter() - start
    assert result == naive
    report(
        "ablation_msm",
        "128-term G1 MSM (the sigma-aggregation kernel at half paper-k):\n"
        f"  pippenger: {pip_seconds*1000:.0f} ms\n"
        f"  naive:     {naive_seconds*1000:.0f} ms\n"
        f"  speedup:   {naive_seconds/pip_seconds:.1f}x",
    )
    assert naive_seconds > pip_seconds


def test_ablation_multi_pairing(benchmark, report):
    pairs = [
        (G1 * 3, G2 * 7),
        (G1 * 11, G2 * 5),
        (-(G1 * 2), G2 * 9),
    ]

    def shared():
        return final_exponentiation(miller_loop_product(pairs))

    combined = benchmark.pedantic(shared, rounds=3, iterations=1)
    start = time.perf_counter()
    separate = pairing(*pairs[0]) * pairing(*pairs[1]) * pairing(*pairs[2])
    separate_seconds = time.perf_counter() - start
    start = time.perf_counter()
    shared()
    shared_seconds = time.perf_counter() - start
    assert combined == separate
    report(
        "ablation_multi_pairing",
        "3-pairing product (one Eq. (2) verification's pairing load):\n"
        f"  shared final exponentiation: {shared_seconds*1000:.0f} ms\n"
        f"  three separate pairings:     {separate_seconds*1000:.0f} ms\n"
        f"  speedup: {separate_seconds/shared_seconds:.2f}x",
    )
    assert separate_seconds > shared_seconds


def test_ablation_gt_fixed_base(benchmark, rng, report):
    base = pairing(G1, G2)
    exponent = rng.randrange(CURVE_ORDER)
    table = GTFixedBase(base)
    result = benchmark.pedantic(table.pow, args=(exponent,), rounds=3, iterations=1)
    start = time.perf_counter()
    generic = base**exponent
    generic_seconds = time.perf_counter() - start
    start = time.perf_counter()
    cyclotomic = gt_pow(base, exponent)
    cyclotomic_seconds = time.perf_counter() - start
    start = time.perf_counter()
    table.pow(exponent)
    table_seconds = time.perf_counter() - start
    assert result == generic == cyclotomic
    report(
        "ablation_gt_exponentiation",
        "GT exponentiation (the per-proof privacy cost, R = e(g1,eps)^z):\n"
        f"  generic square-and-multiply: {generic_seconds*1000:.1f} ms\n"
        f"  cyclotomic squaring:         {cyclotomic_seconds*1000:.1f} ms\n"
        f"  fixed-base window table:     {table_seconds*1000:.1f} ms\n"
        "The table is per-contract and amortised across every audit round.",
    )
    assert table_seconds < generic_seconds


def test_ablation_batch_auditing(benchmark, audit_system, params, rng, report):
    _, provider, package, _ = audit_system
    items = []
    for _ in range(4):
        challenge = random_challenge(params, rng=rng)
        items.append(
            BatchItem(
                public=package.public,
                name=package.name,
                num_chunks=package.num_chunks,
                challenge=challenge,
                proof=provider.respond(package.name, challenge),
            )
        )
    ok = benchmark.pedantic(
        verify_batch, args=(items,), kwargs={"rng": rng}, rounds=2, iterations=1
    )
    assert ok
    start = time.perf_counter()
    assert verify_sequential(items)
    sequential_seconds = time.perf_counter() - start
    start = time.perf_counter()
    assert verify_batch(items, rng=rng)
    batch_seconds = time.perf_counter() - start
    report(
        "ablation_batch_auditing",
        "Verifying 4 users' proofs (the provider-side batching of VII-D):\n"
        f"  sequential: {sequential_seconds*1000:.0f} ms (4 final exps)\n"
        f"  batched:    {batch_seconds*1000:.0f} ms (1 final exp)\n"
        f"  speedup:    {sequential_seconds/batch_seconds:.2f}x",
    )


def test_ablation_torus_compression(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    element = pairing(G1 * 99, G2 * 31)
    compressed = gt_to_bytes(element)
    uncompressed = gt_to_bytes_uncompressed(element)
    private_proof_with = 32 + 32 + 32 + len(compressed)
    private_proof_without = 32 + 32 + 32 + len(uncompressed)
    report(
        "ablation_torus_compression",
        "T2 torus compression of the Sigma commitment R:\n"
        f"  GT element: {len(uncompressed)} B -> {len(compressed)} B\n"
        f"  private proof: {private_proof_without} B -> "
        f"{private_proof_with} B (the paper's 288-byte figure)",
    )
    assert private_proof_with == 288
    assert private_proof_without == 480
