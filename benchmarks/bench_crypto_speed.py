"""Raw-speed microbenchmarks for the BN254 / GF(256) crypto hot path.

Three sweeps, one per rebuilt kernel family:

* **MSM** — signed-window Pippenger with batch-affine bucket accumulation
  (`multi_scalar_mul`) across input sizes, with the naive double-and-add
  reference timed at the smallest size for a grounded speedup figure (and
  checked for exact equality at every size).
* **Batch verify** — `pairing_check` over growing pair counts with
  prepared-G2 lines, against the same product computed as individual
  pairings; the shared squaring chain plus cached lines is the win the
  grouped batch verifier rides on.
* **GF(256)** — table-driven `gf_matmul` over block sizes on a
  Reed-Solomon-shaped (rows x k) coding matrix, against the per-element
  scalar reference at the smallest size.

``BENCH_QUICK=1`` (the CI bench-smoke job) shrinks every sweep so all
code paths run under a tight timeout; full-scale numbers are committed
under ``benchmarks/results/bench_crypto_speed.txt``.
"""

from __future__ import annotations

import os
import random
import time

import numpy as np

from repro.crypto.bn254 import (
    CURVE_ORDER,
    G1Point,
    G2Point,
    PrecomputeCache,
    multi_scalar_mul,
    multi_scalar_mul_naive,
    pairing,
    pairing_product,
)
from repro.crypto.bn254.fields import Fp12
from repro.storage.gf256 import gf_matmul, gf_matmul_ref

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

MSM_SIZES = (16, 64) if QUICK else (16, 64, 256, 1024)
NAIVE_REFERENCE_SIZE = 16
PAIR_COUNTS = (1, 2) if QUICK else (1, 2, 4, 8)
GF_BLOCK_SIZES = (4_096, 65_536) if QUICK else (4_096, 65_536, 1_048_576)
GF_REFERENCE_SIZE = 256

G1 = G1Point.generator()
G2 = G2Point.generator()


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_crypto_speed_sweep(report):
    rng = random.Random(0x5EED)
    lines = []

    # -- MSM sweep ---------------------------------------------------------
    lines.append("MSM: signed-window + batch-affine buckets (G1)")
    big_points = [G1 * rng.randrange(1, CURVE_ORDER) for _ in range(max(MSM_SIZES))]
    big_scalars = [rng.randrange(CURVE_ORDER) for _ in range(max(MSM_SIZES))]
    for size in MSM_SIZES:
        points, scalars = big_points[:size], big_scalars[:size]
        fast_s, fast = _best_of(lambda: multi_scalar_mul(points, scalars))
        line = f"  n={size:5d}: {fast_s * 1e3:8.1f} ms"
        if size <= NAIVE_REFERENCE_SIZE:
            naive_s, naive = _best_of(
                lambda: multi_scalar_mul_naive(points, scalars), repeats=1
            )
            assert fast == naive, f"MSM mismatch at n={size}"
            line += f"   (naive {naive_s * 1e3:8.1f} ms -> {naive_s / fast_s:.1f}x)"
        else:
            assert fast == multi_scalar_mul_naive(points, scalars)
        lines.append(line)

    # -- batch pairing sweep -----------------------------------------------
    lines.append("")
    lines.append(
        "Batch verify: shared-squaring-chain pairing product, prepared G2 lines"
    )
    cache = PrecomputeCache()
    fixed_g2 = [G2 * (i + 2) for i in range(max(PAIR_COUNTS))]
    for prepared_point in fixed_g2:
        cache.prepared_g2(prepared_point)  # owner keys: prepared once
    for count in PAIR_COUNTS:
        pairs_g1 = [G1 * rng.randrange(1, CURVE_ORDER) for _ in range(count)]
        prepared_pairs = [
            (p, cache.prepared_g2(q)) for p, q in zip(pairs_g1, fixed_g2)
        ]
        shared_s, shared = _best_of(lambda: pairing_product(prepared_pairs))

        def individual():
            out = Fp12.one()
            for p, q in zip(pairs_g1, fixed_g2):
                out = out * pairing(p, q)
            return out

        individual_s, separate = _best_of(individual, repeats=1)
        assert shared == separate, f"pairing product mismatch at {count} pairs"
        lines.append(
            f"  pairs={count}: shared {shared_s * 1e3:7.1f} ms vs "
            f"individual {individual_s * 1e3:7.1f} ms "
            f"-> {individual_s / shared_s:.2f}x"
        )

    # -- GF(256) sweep -----------------------------------------------------
    lines.append("")
    lines.append("GF(256): table-gather gf_matmul, 4x8 coding matrix")
    np_rng = np.random.default_rng(7)
    matrix = [[int(np_rng.integers(1, 256)) for _ in range(8)] for _ in range(4)]
    for block in GF_BLOCK_SIZES:
        shards = np_rng.integers(0, 256, size=(8, block), dtype=np.uint8)
        fast_s, fast = _best_of(lambda: gf_matmul(matrix, shards))
        throughput = 8 * block / fast_s / 1e6
        lines.append(
            f"  block={block:>9,d} B: {fast_s * 1e3:7.1f} ms "
            f"({throughput:7.1f} MB/s in)"
        )
    reference_shards = np_rng.integers(
        0, 256, size=(8, GF_REFERENCE_SIZE), dtype=np.uint8
    )
    ref_s, reference = _best_of(
        lambda: gf_matmul_ref(matrix, reference_shards), repeats=1
    )
    fast_s, fast = _best_of(lambda: gf_matmul(matrix, reference_shards))
    assert np.array_equal(fast, reference)
    lines.append(
        f"  scalar reference at block={GF_REFERENCE_SIZE} B: "
        f"{ref_s * 1e3:.1f} ms vs {fast_s * 1e3:.3f} ms "
        f"-> {ref_s / fast_s:.0f}x"
    )

    report("bench_crypto_speed", "\n".join(lines))
