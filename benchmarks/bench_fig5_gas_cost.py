"""Fig. 5 — gas cost vs extrapolated verification time (5-9 ms).

Reproduces the paper's own methodology: gas = fixed(calldata + audit-trail
storage) + slope x verification-time, anchored at 589k gas / 7.2 ms for the
288-byte private proof.  Also prints the measured Python verification time
(our substrate's wall clock, reported separately) and the vanilla-EVM
per-opcode ablation that motivates the custom precompile.
"""

from __future__ import annotations

import os

from repro.chain.gas import (
    AuditPrecompileModel,
    GasSchedule,
    PAPER_AUDIT_GAS,
    checkpoint_amortization,
    vanilla_evm_verification_gas,
)
from repro.core.challenge import random_challenge
from repro.core.verifier import VerifyReport

TIMES_MS = (5.0, 6.0, 7.0, 7.2, 8.0, 9.0)

#: Fleet sizes for the per-round vs. checkpointed comparison (audited
#: files per provider per epoch).  BENCH_QUICK=1 (the CI smoke job) keeps
#: just the acceptance-floor point so the series stays cheap to exercise.
FLEETS = (
    (16, 256)
    if os.environ.get("BENCH_QUICK", "") == "1"
    else (16, 64, 256, 1024, 4096)
)


def test_fig5_verification_kernel(benchmark, audit_system, params, rng):
    """The timing kernel behind the x-axis: one Eq. (2) verification."""
    _, provider, package, verifier = audit_system
    challenge = random_challenge(params, rng=rng)
    proof = provider.respond(package.name, challenge)
    ok = benchmark.pedantic(
        verifier.verify_private, args=(challenge, proof), rounds=3, iterations=1
    )
    assert ok


def test_fig5_report(benchmark, report, audit_system, params, rng):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    model = AuditPrecompileModel(GasSchedule.istanbul())
    lines = [
        "Fig. 5 reproduction: gas vs extrapolated verification time.",
        f"Calibrated slope: {model.compute_slope_gas_per_ms:,.0f} gas/ms "
        f"(anchor: {PAPER_AUDIT_GAS:,} gas at 7.2 ms, 288-byte proof).",
        "",
        f"{'ms':>5} {'w/ privacy (288B)':>18} {'w/o privacy (96B)':>18}",
    ]
    for ms in TIMES_MS:
        private = model.verification_gas(288, ms)
        plain = model.verification_gas(96, ms)
        lines.append(f"{ms:>5.1f} {private:>18,} {plain:>18,}")
        assert private > plain
    assert model.private_audit_gas() == PAPER_AUDIT_GAS

    # Measured wall time of our Python verifier, reported separately.
    _, provider, package, verifier = audit_system
    challenge = random_challenge(params, rng=rng)
    proof = provider.respond(package.name, challenge)
    verify_report = VerifyReport()
    assert verifier.verify_private(challenge, proof, verify_report)
    lines += [
        "",
        f"Measured pure-Python verification: {verify_report.total_seconds*1000:.0f} ms "
        f"(pairings {verify_report.pairing_seconds*1000:.0f} ms, "
        f"chi hashing {verify_report.hash_seconds*1000:.0f} ms, "
        f"MSM {verify_report.msm_seconds*1000:.0f} ms)",
        "The paper's 7.2 ms is its Go+asm precompile; the gas model is an",
        "extrapolation in both works, so the native anchor is used above.",
        "",
        "Ablation - vanilla EVM (no custom precompile), k = 300:",
        f"  Istanbul  prices: {vanilla_evm_verification_gas(GasSchedule.istanbul(), 300):>12,} gas",
        f"  Byzantium prices: {vanilla_evm_verification_gas(GasSchedule.byzantium(), 300):>12,} gas",
        f"  custom precompile: {PAPER_AUDIT_GAS:>11,} gas  <- why the paper built one",
    ]

    # -- per-round vs checkpointed (epoch rollup) -------------------------
    # One epoch of `fleet` audits: the per-round path pays one Fig. 5
    # verification tx and one (challenge + proof) trail per file; the
    # rollup pays one 85-byte commitment tx for the whole epoch.  The
    # commitment size is measured from the real encoder, not assumed.
    from repro.rollup import build_checkpoint
    from repro.rollup.records import RoundRecord

    challenge_bytes = challenge.to_bytes()
    proof_bytes = proof.to_bytes()
    lines += [
        "",
        "Epoch checkpoint rollup vs per-round postings (one epoch, Istanbul):",
        f"{'fleet':>6} {'per-round gas/file':>19} {'ckpt gas/file':>14} "
        f"{'gas x':>8} {'per-round B/file':>17} {'ckpt B/file':>12} {'bytes x':>8}",
    ]
    for fleet in FLEETS:
        amortized = checkpoint_amortization(GasSchedule.istanbul(), fleet)
        # Cross-check the modeled trail bytes against real serializations:
        # a canonical record set built from actual wire encodings.
        records = tuple(
            RoundRecord(
                name=index,
                epoch=0,
                challenge_bytes=challenge_bytes,
                proof_bytes=proof_bytes,
                verdict=True,
            )
            for index in range(fleet)
        )
        bundle = build_checkpoint(0, records)
        measured_commitment = bundle.checkpoint.byte_size()
        assert measured_commitment == amortized.checkpoint_trail_bytes
        assert len(challenge_bytes) + len(proof_bytes) == (
            amortized.per_round_trail_bytes // fleet
        )
        lines.append(
            f"{fleet:>6} {amortized.per_round_gas_per_file:>19,.0f} "
            f"{amortized.checkpoint_gas_per_file:>14,.1f} "
            f"{amortized.gas_reduction:>7,.0f}x "
            f"{amortized.per_round_trail_bytes / fleet:>17,.0f} "
            f"{measured_commitment / fleet:>12,.2f} "
            f"{amortized.bytes_reduction:>7,.0f}x"
        )
        if fleet >= 256:
            # Acceptance floor: >= 10x reduction in both gas and bytes.
            assert amortized.gas_reduction >= 10
            assert amortized.bytes_reduction >= 10
    lines += [
        "(commitment size measured from the canonical encoder; soundness is",
        " preserved by the bonded fraud-proof window - see docs/PROTOCOL.md",
        " section 9 and the tests in tests/rollup/)",
    ]
    report("fig5_gas_cost", "\n".join(lines))
