"""Long-horizon lifecycle engine — epochs/second and end-state durability.

How fast can the reproduction time-compress a deployment's life?  One
lifecycle epoch is a *composite* unit of work: a churn draw, one parallel
audit epoch over every live shard, per-lane checkpoint settlement plus the
fabric super-commitment, reputation reports, erasure-coded repair for
every failed shard, and the eviction sweep.  This bench runs a churny
multi-year configuration and reports:

* **epochs/second** (wall-clock) and audits/second within them,
* **end-state durability**: weakest file's healthy-shard floor, files
  retrievable, repairs and evictions performed,
* the **determinism check**: a second run from the same seed must land on
  the identical trail digest and fabric state hash (the property every
  lifecycle test leans on, asserted here at bench scale too),
* the closed-form :class:`~repro.sim.throughput.LifecycleCapacityModel`
  projection next to the simulated outcome.

BENCH_QUICK=1 (the CI smoke job) shrinks the horizon to one simulated
year so the bench stays exercisable in minutes.
"""

from __future__ import annotations

import os
import time

from repro.lifecycle import LifecycleConfig, LifecycleEngine
from repro.sim.throughput import LifecycleCapacityModel

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

CONFIG = LifecycleConfig(
    years=1.0 if QUICK else 4.0,
    epochs_per_year=4 if QUICK else 12,
    files=1 if QUICK else 2,
    file_bytes=500,
    erasure_n=3 if QUICK else 4,
    erasure_k=2,
    providers=6 if QUICK else 9,
    churn=0.4,
    flake_rate=0.3,
    lanes=2,
    seed=0xBEEF,
    s=4,
    k=3,
)


def _run(config: LifecycleConfig):
    engine = LifecycleEngine(config)
    t0 = time.perf_counter()
    outcome = engine.run()
    wall = time.perf_counter() - t0
    engine.close()
    return outcome, wall


def test_lifecycle_epochs_per_second(report):
    outcome, wall = _run(CONFIG)
    repeat, _ = _run(CONFIG)

    total_audits = sum(s.audits for s in outcome.summaries)
    floor = min(s.min_healthy_shards for s in outcome.summaries)
    model = LifecycleCapacityModel(
        lanes=CONFIG.lanes,
        epochs_per_year=CONFIG.epochs_per_year,
        churn=CONFIG.churn,
        erasure_n=CONFIG.erasure_n,
        erasure_k=CONFIG.erasure_k,
    )
    deterministic = (
        repeat.trail_digest == outcome.trail_digest
        and repeat.state_hash == outcome.state_hash
    )

    lines = [
        "Long-horizon lifecycle engine",
        f"  config: {CONFIG.files} files x RS({CONFIG.erasure_n},"
        f"{CONFIG.erasure_k}), {CONFIG.providers} providers, "
        f"{CONFIG.total_epochs} epochs (~{CONFIG.years:g} years), "
        f"churn {CONFIG.churn:.0%}/yr, {CONFIG.lanes} lanes",
        f"  wall clock: {wall:.1f} s -> "
        f"{outcome.epochs_run / wall:.2f} epochs/s, "
        f"{total_audits / wall:.1f} audits/s (composite epochs)",
        f"  lifecycle: {outcome.total_repairs} repairs, "
        f"{outcome.total_evictions} evictions, "
        f"{len(outcome.trail.of_kind('slashed'))} on-chain slashes, "
        f"{len(outcome.trail)} trail events",
        f"  settlement: {outcome.total_commitment_gas:,} gas over "
        f"{outcome.epochs_run} epochs "
        f"({outcome.total_commitment_gas // max(1, outcome.epochs_run):,}"
        f"/epoch)",
        f"  durability: healthy-shard floor {floor} (k={CONFIG.erasure_k}), "
        f"files intact: {outcome.files_intact}",
        f"  model projection over {CONFIG.years:g} years: "
        f"P[survive] = {model.projected_durability(CONFIG.years):.6f}",
        f"  determinism: same seed => same trail+state hash: {deterministic}",
        f"  trail digest {outcome.trail_digest[:16]}…, "
        f"state hash {outcome.state_hash[:16]}…",
    ]
    report("lifecycle", "\n".join(lines))

    # Acceptance: deterministic, durable, and every eviction slashed.
    assert deterministic
    assert outcome.files_intact
    assert floor >= CONFIG.erasure_k
    evicted = {e.subject for e in outcome.trail.of_kind("evicted")}
    slashed = {e.subject for e in outcome.trail.of_kind("slashed")}
    assert evicted <= slashed
    assert outcome.epochs_run == CONFIG.total_epochs
