"""Fig. 9 — prover time vs storage-confidence level, +/- on-chain privacy.

x-axis: confidence 91%..99% at 1% corruption, mapped to k via the
Section VI-A model (240..459 challenged chunks).  Claims under
reproduction: proving time grows with k; the privacy (solid) line sits a
roughly constant GT-exponentiation above the non-private (dotted) line.
"""

from __future__ import annotations

from repro.core.authenticator import generate_authenticators
from repro.core.challenge import random_challenge
from repro.core.chunking import chunk_file
from repro.core.confidence import figure9_k_schedule
from repro.core.keys import generate_keypair
from repro.core.params import ProtocolParams
from repro.core.prover import ProveReport, Prover
from repro.crypto.bn254 import G1Point
from repro.crypto.bn254.msm import FixedBaseMul

S = 20  # smaller than the paper's 50 to keep the pure-Python run short
NUM_CHUNKS = 470


def _build(rng):
    keypair = generate_keypair(S, rng=rng)
    chunked = chunk_file(b"\x3e" * (NUM_CHUNKS * S * 31),
                         ProtocolParams(s=S, k=1), name=13)
    authenticators = generate_authenticators(
        chunked, keypair, g1_table=FixedBaseMul(G1Point.generator())
    )
    return Prover(chunked, keypair.public, authenticators, rng=rng)


def test_fig9_prove_kernel_95pct(benchmark, rng):
    prover = _build(rng)
    schedule = figure9_k_schedule()
    challenge = random_challenge(ProtocolParams(s=S, k=schedule[0.95]), rng=rng)
    prover.respond_private(challenge)  # warm GT table
    proof = benchmark.pedantic(
        prover.respond_private, args=(challenge,), rounds=2, iterations=1
    )
    assert proof.byte_size() == 288


def test_fig9_report(benchmark, report, rng):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    prover = _build(rng)
    schedule = figure9_k_schedule()
    lines = [
        "Fig. 9 reproduction: prover time vs confidence (1% corruption).",
        f"s = {S}; k from the Section VI-A model. Times in ms (pure Python).",
        "",
        f"{'confidence':>11} {'k':>5} {'w/ privacy':>12} {'w/o privacy':>12} "
        f"{'overhead':>10}",
    ]
    private_series, plain_series = {}, {}
    warmed = False
    for confidence, k in schedule.items():
        challenge = random_challenge(ProtocolParams(s=S, k=k), rng=rng)
        if not warmed:
            prover.respond_private(challenge)
            warmed = True
        # Best-of-3 minima: scheduler noise easily exceeds the privacy gap.
        private_ms = min(
            _timed(prover.respond_private, challenge) for _ in range(3)
        )
        plain_ms = min(_timed(prover.respond_plain, challenge) for _ in range(3))
        private_series[confidence] = private_ms
        plain_series[confidence] = plain_ms
        lines.append(
            f"{confidence:>10.0%} {k:>5} {private_ms:>12.1f} {plain_ms:>12.1f} "
            f"{private_ms - plain_ms:>10.1f}"
        )
    lines += [
        "",
        "Paper anchors: both lines rise with the confidence level (k);",
        "the gap between them is the near-constant Sigma-protocol cost",
        "(one GT exponentiation + hash).",
    ]
    report("fig9_confidence", "\n".join(lines))

    confidences = sorted(schedule)
    assert plain_series[confidences[-1]] > plain_series[confidences[0]]
    assert private_series[confidences[-1]] > private_series[confidences[0]]
    # The privacy overhead must be positive on average (per-point comparisons
    # can still be crossed by noise on a loaded machine).
    overheads = [
        private_series[c] - plain_series[c] for c in confidences
    ]
    assert sum(overheads) > 0


def _timed(func, challenge) -> float:
    report = ProveReport()
    func(challenge, report)
    return report.total_seconds * 1000
