"""Sharded chain fabric — epoch settlement throughput vs lane count.

The single-chain bottleneck this PR removes: every audit's settlement
transactions (negotiate, challenge, proof, the 589k-gas verification)
serialize through one block producer's gas-limited block space.  The
fabric spreads the same fleet across N deterministic lanes mining
concurrently, so the chain time to absorb one epoch's settlement traffic
is ``max`` over lanes instead of the single lane's total.

Metric: **settlement chain-time** — each lane's recorded gas translated
into the 10M-gas block slots it occupies
(:meth:`repro.chain.blockchain.Blockchain.congestion_seconds`), taking the
slowest lane (:meth:`~repro.chain.fabric.ShardedChainFabric.settlement_chain_seconds`).
Throughput is audits settled per chain-second.  Wall-clock is reported
too, but on this simulator proving/verification run in-process and do not
change with lane count — the lanes buy *block space*, not CPU.

Acceptance (ISSUE 4): at fleet 256, 4 lanes deliver >= 2x the settlement
throughput of 1 lane with bit-identical accept/reject sets.

BENCH_QUICK=1 (the CI smoke job) shrinks the fleet and the lane sweep so
the bench stays exercisable in minutes.
"""

from __future__ import annotations

import os
import random
import time

from repro.chain import (
    Blockchain,
    ContractTerms,
    ShardedChainFabric,
    deploy_audit_contract,
    run_contracts_to_completion,
)
from repro.chain.explorer import ChainExplorer
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon
from repro.sim.throughput import ShardedChainCapacityModel

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

#: Acceptance floor: fleet 256 swept over 1/2/4/8 lanes.
FLEET = 24 if QUICK else 256
LANES = (1, 2) if QUICK else (1, 2, 4, 8)
#: One audit round per contract: one epoch's settlement wave.
TERMS = ContractTerms(num_audits=1, audit_interval=15.0, response_window=15.0)
MISBEHAVING = max(1, FLEET // 8)  # silent providers -> a real reject set
PARAMS = ProtocolParams(s=6, k=4)
FILE_BYTES = 700


def _prepare_fleet():
    """Packages + providers, shared by every lane configuration."""
    rng = random.Random(0x5AFE)
    owner = DataOwner(PARAMS, rng=rng)
    fleet = []
    for index in range(FLEET):
        package = owner.prepare(
            bytes(rng.randrange(256) for _ in range(FILE_BYTES)),
            fresh_keypair=index == 0,
        )
        provider = StorageProvider(rng=rng)
        provider.accept(package)
        fleet.append((package, provider))
    return fleet


def _settle(chain, fleet):
    """Deploy the whole fleet and run every contract to completion."""
    beacon = HashChainBeacon(b"bench-shard")
    deployments = []
    for index, (package, provider) in enumerate(fleet):
        deployment = deploy_audit_contract(
            chain, package, provider, TERMS, beacon, PARAMS
        )
        if index < MISBEHAVING:
            deployment.provider_agent.misbehave_after_round = 0
        deployments.append(deployment)
    contracts = run_contracts_to_completion(chain, deployments)
    return [(c.passes, c.fails) for c in contracts]


def test_sharded_fabric_settlement_throughput(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    fleet = _prepare_fleet()
    lines = [
        f"Sharded chain fabric: {FLEET} audit contracts, one settlement "
        f"round each (s={PARAMS.s}, k={PARAMS.k}, "
        f"{MISBEHAVING} silent providers), 10M-gas blocks at 15 s.",
        "Settlement chain-time = slowest lane's occupied block slots x 15 s.",
        "",
        f"{'lanes':>5} {'wall s':>8} {'total gas':>13} {'chain-time s':>13} "
        f"{'audits/chain-s':>15} {'speedup':>8}",
    ]
    verdicts_by_lanes = {}
    throughput = {}
    for lanes in LANES:
        chain = Blockchain() if lanes == 1 else ShardedChainFabric(num_lanes=lanes)
        t0 = time.perf_counter()
        verdicts = _settle(chain, fleet)
        wall = time.perf_counter() - t0
        verdicts_by_lanes[lanes] = verdicts
        if lanes == 1:
            settlement_seconds = chain.congestion_seconds()
            total_gas = sum(block.gas_used for block in chain.blocks)
        else:
            settlement_seconds = chain.settlement_chain_seconds()
            total_gas = chain.total_gas_used()
        throughput[lanes] = FLEET / settlement_seconds
        lines.append(
            f"{lanes:>5} {wall:>8.1f} {total_gas:>13,} "
            f"{settlement_seconds:>13.0f} {throughput[lanes]:>15.2f} "
            f"{throughput[lanes] / throughput[LANES[0]]:>7.1f}x"
        )

    # Accept/reject sets must be bit-identical across every lane count.
    for lanes in LANES[1:]:
        assert verdicts_by_lanes[lanes] == verdicts_by_lanes[1], (
            f"verdicts diverged at {lanes} lanes"
        )
    fails = sum(f for _, f in verdicts_by_lanes[1])
    assert fails == MISBEHAVING, "the reject set must match the silent fleet"

    if 4 in throughput:
        speedup_at_4 = throughput[4] / throughput[1]
        assert speedup_at_4 >= 2.0, (
            f"acceptance: expected >= 2x settlement throughput at 4 lanes, "
            f"got {speedup_at_4:.2f}x"
        )
    else:  # BENCH_QUICK: assert the 2-lane trend instead
        assert throughput[2] / throughput[1] >= 1.2

    lines += [
        "",
        f"accept/reject sets identical across all lane counts "
        f"({FLEET - fails} accepted / {fails} rejected).",
        "",
        "Modeled fabric capacity (ShardedChainCapacityModel, daily audits,",
        "256-audit checkpoints per lane):",
        f"{'lanes':>5} {'max users':>12} {'chain growth @1M users':>24}",
    ]
    for lanes in LANES:
        model = ShardedChainCapacityModel(lanes=lanes)
        growth_gb = model.annual_chain_growth_bytes(1_000_000) / 2**30
        lines.append(
            f"{lanes:>5} {model.max_concurrent_users():>12,} "
            f"{growth_gb:>21.3f} GB/yr"
        )
    lines += [
        "(wall-clock is flat across lane counts on a single-core host:",
        " lanes multiply block space, not CPU; prove/verify cost is fixed)",
    ]
    report("sharded_fabric", "\n".join(lines))
