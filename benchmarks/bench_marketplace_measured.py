"""Measured marketplace run — the empirical cross-check for Fig. 10.

Runs a real miniature marketplace (live contracts, real crypto) and
verifies the analytic models the Fig. 10 bench extrapolates with are
consistent with what an actual multi-user chain produces.
"""

from __future__ import annotations

from repro.core import ProtocolParams
from repro.randomness import HashChainBeacon
from repro.sim.marketplace import MarketplaceSimulation, extrapolate_annual_growth
from repro.sim.throughput import ChainCapacityModel


def _simulation() -> MarketplaceSimulation:
    return MarketplaceSimulation(
        HashChainBeacon(b"bench-marketplace"),
        params=ProtocolParams(s=5, k=3),
        users=6,
        providers=2,
        rounds_per_user=2,
        file_bytes=500,
        seed=9,
    )


def test_marketplace_measured(benchmark, report):
    result = benchmark.pedantic(_simulation().run, rounds=1, iterations=1)
    model = ChainCapacityModel()
    lines = [
        "Measured marketplace slice (real contracts, real crypto):",
        f"  {result.users} users x {result.rounds_per_user} rounds on "
        f"{result.providers} providers in {result.wall_seconds:.1f} s wall",
        f"  outcomes: {result.passes} passes / {result.fails} fails over "
        f"{result.blocks} blocks",
        f"  measured trail bytes/round: {result.bytes_per_round:.0f} "
        f"(model assumes {model.challenge_bytes + model.proof_bytes})",
        f"  measured gas/round: {result.gas_per_round:,.0f} (anchor 589,000)",
        f"  busiest provider proving load: "
        f"{result.max_provider_load_seconds():.2f} s",
        "",
        "Extrapolations from the measurement:",
        f"  10,000 users, daily audits -> "
        f"{extrapolate_annual_growth(result, 10_000):.2f} GB/year "
        f"(analytic model: "
        f"{model.annual_chain_growth_bytes(10_000)/2**30:.2f})",
    ]
    report("marketplace_measured", "\n".join(lines))
    assert result.fails == 0
    assert result.gas_per_round == 589_000
    assert result.bytes_per_round == model.challenge_bytes + model.proof_bytes
