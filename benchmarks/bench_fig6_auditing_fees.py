"""Fig. 6 — estimated auditing fees vs contract duration, daily vs weekly.

Pure cost-model reproduction (the figure is analytic in the paper too),
cross-checked against an actual simulated contract's gas accounting.
"""

from __future__ import annotations

from repro.chain import Blockchain, ContractTerms, CostModel, deploy_audit_contract, run_contract_to_completion
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.randomness import HashChainBeacon
from repro.sim.economics import figure6_series, usd_per_audit

DURATIONS = (30, 90, 180, 360, 720, 1800)


def test_fig6_series_kernel(benchmark):
    series = benchmark(figure6_series)
    assert set(series) == {"daily", "weekly"}


def test_fig6_report(benchmark, report, rng):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    series = figure6_series()
    per_audit = usd_per_audit()
    lines = [
        "Fig. 6 reproduction: estimated auditing fees (USD) vs contract",
        f"duration, at {per_audit:.3f} $/audit (589k gas @ 5 Gwei, 143 $/ETH,",
        "plus $0.01 randomness).  Paper anchor: daily/360d ~ $150.",
        "",
        f"{'days':>6} {'daily auditing':>15} {'weekly auditing':>16}",
    ]
    daily = {p.duration_days: p.total_usd for p in series["daily"]}
    weekly = {p.duration_days: p.total_usd for p in series["weekly"]}
    for days in DURATIONS:
        lines.append(f"{days:>6} {daily[days]:>14.2f}$ {weekly[days]:>15.2f}$")
    anchor = daily[360]
    assert 120 < anchor < 180

    # Cross-check the model against a real simulated 3-round contract.
    params = ProtocolParams(s=6, k=3)
    owner = DataOwner(params, rng=rng)
    package = owner.prepare(b"\x61" * 600)
    provider = StorageProvider(rng=rng)
    chain = Blockchain()
    terms = ContractTerms(num_audits=3, audit_interval=60.0, response_window=20.0)
    deployment = deploy_audit_contract(
        chain, package, provider, terms, HashChainBeacon(b"fee-check"), params
    )
    contract = run_contract_to_completion(chain, deployment)
    cost_model = CostModel()
    simulated = cost_model.gas_to_usd(contract.total_audit_gas()) / 3
    lines += [
        "",
        f"Cross-check: simulated contract charged {simulated:.3f} $/audit in",
        "verification gas (model predicts the same 589k gas per round).",
    ]
    assert abs(simulated - cost_model.gas_to_usd(589_000)) < 1e-9
    report("fig6_auditing_fees", "\n".join(lines))
