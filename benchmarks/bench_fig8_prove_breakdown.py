"""Fig. 8 — prover time split into ECC vs Zp work, +/- privacy, k = 300.

The paper fixes k = 300 (95% confidence) and sweeps s over {10, 20, 50,
100}.  Files are sized to hold ~310 chunks for every s so the challenge is
always full-width.  The claims under reproduction:

* ECC operations dominate total proving time at every s,
* Zp time grows with s (k*s coefficient aggregation),
* the privacy add-on ("+ security") is a roughly constant GT exponentiation.
"""

from __future__ import annotations

from repro.core.authenticator import generate_authenticators
from repro.core.challenge import random_challenge
from repro.core.chunking import chunk_file
from repro.core.keys import generate_keypair
from repro.core.params import ProtocolParams
from repro.core.prover import ProveReport, Prover
from repro.crypto.bn254 import G1Point
from repro.crypto.bn254.msm import FixedBaseMul

K = 300
NUM_CHUNKS = 310
S_SWEEP = (10, 20, 50, 100)


def _build_prover(s: int, rng, g1_table) -> tuple[Prover, ProtocolParams]:
    params = ProtocolParams(s=s, k=K)
    keypair = generate_keypair(s, rng=rng)
    data = b"\x2d" * (NUM_CHUNKS * s * 31)
    chunked = chunk_file(data, params, name=11)
    assert chunked.num_chunks >= K
    authenticators = generate_authenticators(chunked, keypair, g1_table=g1_table)
    return Prover(chunked, keypair.public, authenticators, rng=rng), params


def test_fig8_prove_kernel_s50(benchmark, rng):
    table = FixedBaseMul(G1Point.generator())
    prover, params = _build_prover(50, rng, table)
    challenge = random_challenge(params, rng=rng)
    prover.respond_private(challenge)  # warm the GT table
    proof = benchmark.pedantic(
        prover.respond_private, args=(challenge,), rounds=2, iterations=1
    )
    assert proof.byte_size() == 288


def test_fig8_report(benchmark, report, rng):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    table = FixedBaseMul(G1Point.generator())
    lines = [
        f"Fig. 8 reproduction: prover time at k = {K} (95% confidence),",
        "split into ECC ops, Zp ops, and the '+ security' GT exponentiation.",
        "All times in ms (pure Python; the paper's Go prototype is ~20-50x",
        "faster in absolute terms - the split and trends are the claim).",
        "",
        f"{'s':>5} {'Zp ops':>9} {'ECC ops':>9} {'privacy':>9} {'total':>9} "
        f"{'ECC share':>10}",
    ]
    zp_series, ecc_series, privacy_series = {}, {}, {}
    for s in S_SWEEP:
        prover, params = _build_prover(s, rng, table)
        challenge = random_challenge(params, rng=rng)
        prover.respond_private(challenge)  # warm-up: builds the GT table
        prove_report = ProveReport()
        prover.respond_private(challenge, prove_report)
        zp_ms = prove_report.zp_seconds * 1000
        ecc_ms = prove_report.ecc_seconds * 1000
        privacy_ms = prove_report.privacy_seconds * 1000
        total_ms = prove_report.total_seconds * 1000
        zp_series[s], ecc_series[s], privacy_series[s] = zp_ms, ecc_ms, privacy_ms
        lines.append(
            f"{s:>5} {zp_ms:>9.1f} {ecc_ms:>9.1f} {privacy_ms:>9.1f} "
            f"{total_ms:>9.1f} {ecc_ms/total_ms:>9.0%}"
        )
    lines += [
        "",
        "Paper anchors: 'ECC operations dominate the running time'; Zp time",
        "grows with s but stays minor; privacy overhead roughly constant.",
    ]
    report("fig8_prove_breakdown", "\n".join(lines))

    # Shape assertions.
    for s in S_SWEEP:
        assert ecc_series[s] > zp_series[s], "ECC must dominate Zp"
    assert zp_series[100] > zp_series[10], "Zp work grows with s"
    spread = max(privacy_series.values()) / max(1e-9, min(privacy_series.values()))
    assert spread < 5, "privacy overhead should be roughly constant in s"
