"""RPC audit service — audits per chain-second vs concurrent lane workers.

The service-hosted settlement stack end to end: a ``ShardedChainFabric``
with one worker thread per lane (``CrossShardAggregator(concurrent_lanes)``)
behind the JSON-RPC service, settling an adversarial audit fleet while a
live client reads checkpoints and proofs over the wire.

Metric: **audits settled per chain-second** — each lane's recorded
settlement gas translated into occupied 10M-gas block slots, slowest lane
taken (:meth:`~repro.chain.fabric.ShardedChainFabric.settlement_chain_seconds`).
That metric is gas-derived and deterministic, so the scaling claim holds
on any host; wall-clock is reported too, but on a single-core runner the
lane workers time-slice one CPU and wall time stays flat (the lanes buy
*block space* and *cores when present*, not magic).

Acceptance (ISSUE 7): >= 2x audits/chain-second at 4 lane workers vs 1,
with bit-identical accept/reject sets across every lane count.

A second section measures raw wire throughput: one client pushing
``submit_tx`` bursts through a live socket, report-only.

BENCH_QUICK=1 shrinks the fleet and the sweep for the CI smoke job.
"""

from __future__ import annotations

import os
import random
import time

from repro.adversary import make_prover
from repro.chain import ShardedChainFabric
from repro.chain.mempool import MempoolConfig
from repro.core import DataOwner
from repro.engine import AuditExecutor, AuditInstance
from repro.randomness import HashChainBeacon
from repro.rollup import CrossShardAggregator
from repro.rpc import RpcClient, RpcClientError, RpcDispatcher, RpcTcpServer, ServiceNode
from repro.sim.workloads import archive_file

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

FLEET = 24 if QUICK else 48  # quick still needs >1 block slot on one lane
EPOCHS = 1 if QUICK else 2
LANES = (1, 2) if QUICK else (1, 2, 4)
MISBEHAVING = max(1, FLEET // 8)  # replay provers -> a real reject set
FILE_BYTES = 700
SUBMIT_BURST = 60 if QUICK else 240


def _prepare_fleet(params):
    """Audit instances plus replay provers for the misbehaving minority."""
    rng = random.Random(0x59C)
    owner = DataOwner(params, rng=rng)
    instances, packages = [], []
    for index in range(FLEET):
        package = owner.prepare(
            archive_file(FILE_BYTES, tag=f"rpc-bench-{index}").data,
            fresh_keypair=index == 0,
        )
        instances.append(AuditInstance.from_package(package, owner_id="bench"))
        packages.append(package)
    return instances, packages


def _overrides(packages):
    overrides = {}
    for serial, package in enumerate(packages[:MISBEHAVING]):
        prover = make_prover("replay", package, rng=random.Random(0xBAD + serial))
        overrides[package.name] = (
            lambda challenge, epoch, prover=prover: prover.respond_private(challenge)
        )
    return overrides


def _settle_behind_service(params, instances, packages, lanes):
    """Run EPOCHS of settlement with a live RPC client reading alongside.

    Returns (verdict_trace, chain_seconds, wall_seconds, read_calls_per_s).
    """
    fabric = ShardedChainFabric(
        num_lanes=lanes, mempool=MempoolConfig(), concurrent=lanes > 1
    )
    try:
        with AuditExecutor(instances, workers=1) as executor:
            aggregator = CrossShardAggregator(
                fabric,
                executor,
                params,
                HashChainBeacon(b"bench-rpc-service"),
                rng=random.Random(7),
                deterministic=True,
                concurrent_lanes=lanes > 1,
            )
            node = ServiceNode(fabric, aggregator=aggregator)
            dispatcher = RpcDispatcher()
            node.register_on(dispatcher)
            server = RpcTcpServer(dispatcher)
            host, port = server.serve_in_thread()
            try:
                for name, override in _overrides(packages).items():
                    aggregator.set_override(name, override)
                t0 = time.perf_counter()
                settlements = aggregator.run(EPOCHS)
                wall = time.perf_counter() - t0

                # Read the settlement back through the wire: status, every
                # checkpoint, one membership proof — the audit-read family.
                with RpcClient(host, port) as client:
                    r0 = time.perf_counter()
                    status = client.call("audit_status")
                    assert status["epochs_settled"] == EPOCHS
                    for epoch in range(EPOCHS):
                        checkpoint = client.call("checkpoint_get", {"epoch": epoch})
                        assert checkpoint["num_lanes"] == lanes
                    proof = client.call(
                        "fabric_proof_get", {"name": str(packages[-1].name)}
                    )
                    assert proof["verified"] is True
                    reads = 2 + EPOCHS
                    read_rate = reads / (time.perf_counter() - r0)

                trace = [
                    (
                        settlement.epoch,
                        frozenset(settlement.accepted_names()),
                        frozenset(settlement.rejected_names()),
                    )
                    for settlement in settlements
                ]
                return trace, fabric.settlement_chain_seconds(), wall, read_rate
            finally:
                server.close()
                aggregator.close()
    finally:
        fabric.close()


def _wire_burst(lanes):
    """Raw ingress: one client, SUBMIT_BURST submit_tx calls, then drain."""
    fabric = ShardedChainFabric(
        num_lanes=lanes,
        mempool=MempoolConfig(
            high_watermark=SUBMIT_BURST * 2, low_watermark=SUBMIT_BURST * 3 // 2
        ),
    )
    try:
        # Transfers settle on the recipient's lane, so keep each sender's
        # traffic intra-lane: group the funded accounts by home lane.
        by_lane = [
            [lane.create_account(100.0, label=f"burst-{lane_id}-{i}") for i in range(4)]
            for lane_id, lane in enumerate(fabric.lanes)
        ]
        node = ServiceNode(fabric)
        dispatcher = RpcDispatcher()
        node.register_on(dispatcher)
        server = RpcTcpServer(dispatcher)
        host, port = server.serve_in_thread()
        try:
            rng = random.Random(0xF10)
            accepted = rejected = 0
            with RpcClient(host, port) as client:
                t0 = time.perf_counter()
                for index in range(SUBMIT_BURST):
                    home = by_lane[index % len(by_lane)]
                    sender = home[index % len(home)]
                    try:
                        client.call(
                            "submit_tx",
                            {
                                "sender": sender,
                                "to": home[rng.randrange(len(home))],
                                "value": 10**12,
                                "gas_limit": 30_000,
                                "max_fee_gwei": round(rng.uniform(2.0, 8.0), 2),
                                "priority_fee_gwei": round(rng.uniform(0.1, 1.0), 2),
                            },
                        )
                        accepted += 1
                    except RpcClientError:
                        rejected += 1
                    if index % 16 == 15:
                        client.call("mine", {"blocks": 1})
                elapsed = time.perf_counter() - t0
            fabric.mine_until_pools_drain()
            return SUBMIT_BURST / elapsed, accepted, rejected
        finally:
            server.close()
    finally:
        fabric.close()


def test_rpc_service_scaling(benchmark, report, params):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    instances, packages = _prepare_fleet(params)
    lines = [
        f"RPC audit service: {FLEET} audit instances x {EPOCHS} epoch(s) "
        f"(s={params.s}, k={params.k}, {MISBEHAVING} replay provers), "
        "settled behind a live JSON-RPC server.",
        "Chain-time = slowest lane's occupied 10M-gas block slots x 15 s.",
        "",
        f"{'lane workers':>12} {'wall s':>8} {'chain-time s':>13} "
        f"{'audits/chain-s':>15} {'speedup':>8} {'wire reads/s':>13}",
    ]
    traces, throughput = {}, {}
    for lanes in LANES:
        trace, chain_seconds, wall, read_rate = _settle_behind_service(
            params, instances, packages, lanes
        )
        traces[lanes] = trace
        throughput[lanes] = FLEET * EPOCHS / chain_seconds
        lines.append(
            f"{lanes:>12} {wall:>8.1f} {chain_seconds:>13.0f} "
            f"{throughput[lanes]:>15.2f} "
            f"{throughput[lanes] / throughput[LANES[0]]:>7.1f}x "
            f"{read_rate:>13.0f}"
        )

    # Accept/reject sets are bit-identical across every worker count.  A
    # replay prover answers its first challenge honestly (nothing recorded
    # to replay yet), so the reject set is asserted on the final epoch.
    for lanes in LANES[1:]:
        assert traces[lanes] == traces[1], f"verdicts diverged at {lanes} lanes"
    replay_names = frozenset(package.name for package in packages[:MISBEHAVING])
    final_rejects = traces[1][-1][2]
    if EPOCHS > 1:
        assert final_rejects == replay_names, "reject set must match the replay fleet"
    rejected = sum(len(r) for _, _, r in traces[1])

    if 4 in throughput:
        speedup_at_4 = throughput[4] / throughput[1]
        assert speedup_at_4 >= 2.0, (
            f"acceptance: expected >= 2x audits/chain-second at 4 lane "
            f"workers, got {speedup_at_4:.2f}x"
        )
    else:  # BENCH_QUICK: assert the 2-lane trend instead
        assert throughput[2] / throughput[1] >= 1.2

    lines += [
        "",
        f"accept/reject sets identical across all worker counts "
        f"({FLEET * EPOCHS - rejected} accepted / {rejected} rejected).",
        "",
        "Wire ingress (one client, submit_tx bursts + interleaved mining):",
        f"{'lanes':>5} {'requests/s':>11} {'accepted':>9} {'rejected':>9}",
    ]
    for lanes in (LANES[0], LANES[-1]):
        rate, accepted, rejected_burst = _wire_burst(lanes)
        lines.append(
            f"{lanes:>5} {rate:>11.0f} {accepted:>9} {rejected_burst:>9}"
        )
    lines += [
        "(chain-time scaling is gas-derived and host-independent; wall-clock",
        f" gains need real cores — this host has {os.cpu_count()}. Wire rates"
        " are one",
        " synchronous client and measure codec+socket overhead, not capacity.)",
    ]
    report("rpc_service", "\n".join(lines))
