"""Fig. 10 — system-wide scalability.

Left panel: annual blockchain growth vs user base (1k..10k users).
Right panel: per-provider total proving time vs users stored (10..300).

Both panels feed *measured* quantities (simulated contract trail bytes and
a measured per-proof time) into the analytic models of
:mod:`repro.sim.throughput`, the way the paper feeds its measurements into
its linear-regression model.
"""

from __future__ import annotations

import time

from repro.chain import Blockchain, ContractTerms, deploy_audit_contract, run_contract_to_completion
from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.core.authenticator import generate_authenticators
from repro.core.challenge import random_challenge
from repro.core.chunking import chunk_file
from repro.core.keys import generate_keypair
from repro.core.prover import Prover
from repro.crypto.bn254 import G1Point
from repro.crypto.bn254.msm import FixedBaseMul
from repro.randomness import HashChainBeacon
from repro.sim.throughput import ChainCapacityModel, ProviderLoadModel

USERS_AXIS = (1_000, 2_000, 5_000, 8_000, 10_000)
USERS_PER_PROVIDER_AXIS = (10, 20, 50, 100, 150, 300)


def _measure_per_proof_seconds(rng) -> float:
    """One k=300 private proof at s=20 (the Fig. 10 right-panel unit)."""
    s, k, chunks = 20, 300, 310
    keypair = generate_keypair(s, rng=rng)
    chunked = chunk_file(b"\x44" * (chunks * s * 31), ProtocolParams(s=s, k=k), name=5)
    prover = Prover(
        chunked,
        keypair.public,
        generate_authenticators(
            chunked, keypair, g1_table=FixedBaseMul(G1Point.generator())
        ),
        rng=rng,
    )
    challenge = random_challenge(ProtocolParams(s=s, k=k), rng=rng)
    prover.respond_private(challenge)  # warm-up
    start = time.perf_counter()
    prover.respond_private(challenge)
    return time.perf_counter() - start


def test_fig10_proof_kernel(benchmark, rng):
    seconds = benchmark.pedantic(
        _measure_per_proof_seconds, args=(rng,), rounds=1, iterations=1
    )
    assert seconds > 0


def test_fig10_report(benchmark, report, rng):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    # --- measured trail bytes from a real simulated contract ---
    params = ProtocolParams(s=6, k=3)
    owner = DataOwner(params, rng=rng)
    package = owner.prepare(b"\x2a" * 500)
    provider = StorageProvider(rng=rng)
    chain = Blockchain()
    terms = ContractTerms(num_audits=2, audit_interval=50.0, response_window=20.0)
    deployment = deploy_audit_contract(
        chain, package, provider, terms, HashChainBeacon(b"fig10"), params
    )
    contract = run_contract_to_completion(chain, deployment)
    measured_trail = contract.total_trail_bytes() / len(contract.rounds)

    capacity = ChainCapacityModel()
    per_proof = _measure_per_proof_seconds(rng)
    load_paper = ProviderLoadModel()                      # paper-scale unit
    load_measured = ProviderLoadModel(per_proof_seconds=per_proof)

    lines = [
        "Fig. 10 reproduction.",
        "",
        f"Measured audit-trail bytes per round: {measured_trail:.0f} "
        "(challenge 48 + proof 288; model uses the same numbers).",
        f"Chain throughput model: {capacity.tx_per_second:.2f} tx/s "
        "(paper: 2 tx/s at 18 KB blocks);",
        f"max concurrent users at daily audits x10 redundancy: "
        f"{capacity.max_concurrent_users():,} (paper: 5,000 'with ease').",
        "",
        "Left panel - annual blockchain growth (GB/year):",
        f"{'users':>8} {'GB/year':>9}",
    ]
    for users in USERS_AXIS:
        growth = capacity.annual_chain_growth_bytes(users) / 2**30
        lines.append(f"{users:>8,} {growth:>9.2f}")
    growth_10k = capacity.annual_chain_growth_bytes(10_000) / 2**30
    lines += [
        "  (paper anchor: ~1.1 GB/year at 10,000 users; Ethereum mainnet",
        "   grows ~128 MB/day for comparison)",
        "",
        "Right panel - provider proving time for all stored users (s):",
        f"measured per-proof time (pure Python, k=300): {per_proof*1000:.0f} ms;",
        "paper-scale unit (Go prototype): 65 ms.",
        f"{'users/provider':>15} {'paper-scale (s)':>16} {'measured-scale (s)':>19}",
    ]
    for users in USERS_PER_PROVIDER_AXIS:
        lines.append(
            f"{users:>15} {load_paper.proving_time_for_all(users):>16.1f} "
            f"{load_measured.proving_time_for_all(users):>19.1f}"
        )
    lines += [
        "  (paper anchor: ~20 s at 300 users/provider, called 'tolerable'",
        "   because chain confirmation latency is of the same order)",
    ]
    report("fig10_scalability", "\n".join(lines))

    assert measured_trail == 48 + 288
    assert 1.0 < growth_10k < 1.3
    assert 15 < load_paper.proving_time_for_all(300) < 25
    assert capacity.max_concurrent_users() >= 5_000
