"""Fee-market congestion sweep: inclusion latency and audit throughput.

Offered load is audit-shaped storm traffic (``StormTraffic``, one
``PAPER_AUDIT_GAS`` transaction per pseudo-provider) expressed as a
multiple of the fee market's per-block gas target, swept across lane
counts.  Per (lanes, load) cell the bench measures:

* **inclusion latency** — mean blocks a transaction waits in the pool
  before draining (Little's law: time-averaged pending depth divided by
  drain rate),
* **audits/s** — drained audit-equivalents per chain-second (drained
  storm transactions over ``blocks x 15 s``, summed across lanes),
* **peak base fee** and **peak pool depth** — the backpressure story.

Acceptance (ISSUE 6): at every load >= 2x the gas target the pool stays
within its watermarks (admission control holds, no unbounded backlog)
and the drain records **zero priority inversions**.  Throughput at the
target and above must scale with lanes — block space, not CPU, is the
bottleneck being bought.

BENCH_QUICK=1 (the CI smoke job) shrinks the sweep.
"""

from __future__ import annotations

import os

from repro.chain import PAPER_AUDIT_GAS, ShardedChainFabric
from repro.chain.mempool import (
    GasSinkContract,
    MempoolConfig,
    MempoolRejection,
    StormTraffic,
)
from repro.sim import CongestionPricingModel

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

LANES = (1, 4) if QUICK else (1, 4, 8)
LOADS = (0.5, 3.0) if QUICK else (0.5, 1.0, 2.0, 3.0)
BLOCKS = 8 if QUICK else 20
SENDERS_PER_LANE = 8
BLOCK_INTERVAL_S = 15.0


def _lane_worlds(fabric, load_tag: str):
    """Per lane: a gas sink, funded senders and a deterministic storm."""
    worlds = []
    for lane_id, lane in enumerate(fabric.lanes):
        deployer = lane.create_account(10.0, label=f"deploy-{load_tag}")
        sink = lane.deploy(GasSinkContract(), deployer=deployer)
        senders = [
            lane.create_account(500.0, label=f"{load_tag}-{lane_id}-{i}")
            for i in range(SENDERS_PER_LANE)
        ]
        worlds.append((lane, StormTraffic(sink, senders, seed=lane_id)))
    return worlds


def _run_cell(lanes: int, load: float) -> dict:
    fabric = ShardedChainFabric(num_lanes=lanes, mempool=MempoolConfig())
    worlds = _lane_worlds(fabric, f"L{lanes}x{load}")
    pending_integral = 0
    pool_peak = 0
    rejections = 0
    for _ in range(BLOCKS):
        for lane, storm in worlds:
            market = lane.pool.config.fee_market
            offered = int(load * market.gas_target(lane.block_gas_limit))
            max_fee_gwei, tip_gwei = lane.pool.suggest_fees(1.0)
            for tx in storm.txs_for_block(
                offered, max_fee_gwei=max_fee_gwei,
                priority_fee_gwei=tip_gwei, jitter_gwei=0.5,
            ):
                try:
                    lane.submit(tx)
                except MempoolRejection:
                    rejections += 1
            pool_peak = max(pool_peak, len(lane.pool))
        # Depth sampled pre-mine so the in-block wait counts: an uncongested
        # pool reads ~1 block of latency, a backlogged one reads more.
        pending_integral += fabric.pending_total()
        fabric.mine_block()
    drained = sum(lane.pool.stats["drained"] for lane in fabric.lanes)
    inversions = sum(lane.pool.priority_inversions for lane in fabric.lanes)
    # Little's law: mean queue depth / per-block drain rate, in blocks.
    latency_blocks = (
        (pending_integral / BLOCKS) / (drained / BLOCKS) if drained else 0.0
    )
    return {
        "drained": drained,
        "latency_blocks": latency_blocks,
        "audits_per_s": drained / (BLOCKS * BLOCK_INTERVAL_S),
        "peak_base_fee": max(lane.base_fee_wei for lane in fabric.lanes),
        "pool_peak": pool_peak,
        "inversions": inversions,
        "rejections": rejections,
        "high_watermark": fabric.lanes[0].pool.config.high_watermark,
    }


def test_congestion_latency_and_throughput_sweep(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    lines = [
        f"Fee-market congestion sweep: audit-shaped storms "
        f"({PAPER_AUDIT_GAS:,}-gas transactions, {SENDERS_PER_LANE} "
        f"senders/lane) offered for {BLOCKS} blocks at each load multiple "
        f"of the per-lane gas target; 10M-gas blocks at 15 s.",
        "Latency = time-averaged pool depth / drain rate (Little's law).",
        "",
        f"{'lanes':>5} {'load':>5} {'drained':>8} {'latency blk':>12} "
        f"{'audits/s':>9} {'peak fee gwei':>14} {'pool peak':>10} "
        f"{'rejected':>9}",
    ]
    cells = {}
    for lanes in LANES:
        for load in LOADS:
            cell = cells[(lanes, load)] = _run_cell(lanes, load)
            lines.append(
                f"{lanes:>5} {load:>5.1f} {cell['drained']:>8,} "
                f"{cell['latency_blocks']:>12.2f} "
                f"{cell['audits_per_s']:>9.2f} "
                f"{cell['peak_base_fee'] / 10**9:>14.2f} "
                f"{cell['pool_peak']:>10} {cell['rejections']:>9,}"
            )

    # Acceptance: overload never breaches the watermarks and the drain
    # never pops a cheaper transaction over an available richer one.
    for (lanes, load), cell in cells.items():
        assert cell["inversions"] == 0, (
            f"{lanes} lanes @ {load}x: {cell['inversions']} priority inversions"
        )
        if load >= 2.0:
            assert cell["pool_peak"] <= cell["high_watermark"], (
                f"{lanes} lanes @ {load}x: pool peak {cell['pool_peak']} "
                f"breached the high watermark {cell['high_watermark']}"
            )
            # Overload must show up as congestion pricing, not a free lunch.
            assert cell["peak_base_fee"] > 10**9

    # Latency grows with load; throughput at the target scales with lanes.
    for lanes in LANES:
        assert (
            cells[(lanes, LOADS[-1])]["latency_blocks"]
            > cells[(lanes, LOADS[0])]["latency_blocks"]
        )
    heavy = LOADS[-1]
    assert (
        cells[(LANES[-1], heavy)]["audits_per_s"]
        > 1.5 * cells[(1, heavy)]["audits_per_s"]
    )

    model = CongestionPricingModel.for_market(
        ShardedChainFabric(num_lanes=1, mempool=MempoolConfig())
        .lanes[0].pool.config.fee_market,
        10_000_000,
    )
    lines += [
        "",
        "Closed-form controller envelope (CongestionPricingModel):",
        f"  growth at 2x target: "
        f"{model.base_fee_growth_per_block(2 * model.gas_target):.4f}"
        f"x/block; blocks to 10x price: "
        f"{model.blocks_to_price_multiplier(2 * model.gas_target, 10.0):.1f}; "
        f"decay back from 10x: "
        f"{model.decay_blocks_from_multiplier(10.0):.1f} blocks",
        f"  modeled audits/s at saturation (1 lane): "
        f"{model.audits_per_second(PAPER_AUDIT_GAS, model.block_gas_limit):.2f}",
        "",
        "Acceptance: pool within watermarks at every load >= 2x target; "
        "0 priority inversions in every cell.",
    ]
    report("congestion", "\n".join(lines))
