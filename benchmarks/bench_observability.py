"""Observability layer — instrumentation overhead and span throughput.

Three sections, one committed result file:

1. **Hot-path gate, disabled** — the production default.  Times the gated
   public crypto entry points (``multi_scalar_mul``) against the ungated
   implementations they wrap; the delta is the cost of the
   ``if HOTPATH.enabled`` check.  Budget: <= 3%.
2. **Fully instrumented epoch pipeline** — registry instruments live,
   deterministic tracer attached, hot-path profiler on — against the same
   pipeline bare (NULL tracer, profiler off).  Budget: <= 3% throughput
   delta, plus the fig8-style leg breakdown the profiler collected from
   the live run.
3. **Raw registry/tracer throughput** — counter incs, histogram observes
   and spans per second, report-only context for the budgets above.

Timings take the minimum over alternating repeats (noise-robust, drift
shared between both sides).  BENCH_QUICK=1 shrinks the repeat counts for
the CI smoke job.
"""

from __future__ import annotations

import gc
import os
import random
import time

from repro.core import DataOwner, ProtocolParams
from repro.crypto.bn254 import G1Point
from repro.crypto.bn254.msm import _multi_scalar_mul, multi_scalar_mul
from repro.engine import AuditExecutor, AuditInstance
from repro.engine.scheduler import EpochScheduler
from repro.obs import MetricsRegistry, Tracer
from repro.obs.hotpath import HOTPATH
from repro.randomness import HashChainBeacon
from repro.sim.workloads import archive_file

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

REPEATS = 3 if QUICK else 5
MSM_CALLS = 10 if QUICK else 40
FLEET = 2 if QUICK else 4
EPOCHS = 2 if QUICK else 4
SPIN = 20_000 if QUICK else 200_000


def _paired_min(fn_a, fn_b, calls=1, repeats=REPEATS):
    """Best-of-N totals with a/b interleaved per *call* and the GC parked,
    so scheduler/frequency drift hits both sides equally."""
    best_a = best_b = float("inf")
    gc.disable()
    try:
        for _ in range(repeats):
            total_a = total_b = 0.0
            for _ in range(calls):
                t0 = time.perf_counter()
                fn_a()
                total_a += time.perf_counter() - t0
                t0 = time.perf_counter()
                fn_b()
                total_b += time.perf_counter() - t0
            best_a, best_b = min(best_a, total_a), min(best_b, total_b)
    finally:
        gc.enable()
    return best_a, best_b


def test_observability_overhead(report):
    lines = []

    # -- 1. disabled hot-path gate ---------------------------------------
    HOTPATH.disable()
    rng = random.Random(23)
    points = [G1Point.generator() * rng.randrange(1, 2**64) for _ in range(8)]
    scalars = [rng.randrange(1, 2**128) for _ in range(8)]

    gated_s, bare_s = _paired_min(
        lambda: multi_scalar_mul(points, scalars),
        lambda: _multi_scalar_mul(points, scalars),
        calls=MSM_CALLS,
    )
    gate_overhead = gated_s / bare_s - 1.0
    lines.append("hot-path gate, disabled (production default)")
    lines.append(
        f"  {MSM_CALLS} x 8-term G1 MSM: gated {gated_s * 1e3:8.2f} ms, "
        f"bare {bare_s * 1e3:8.2f} ms -> overhead {gate_overhead:+.2%} "
        f"(budget 3.00%)"
    )

    # -- 2. instrumented epoch pipeline ----------------------------------
    params = ProtocolParams(s=3, k=2)
    owner = DataOwner(params, rng=random.Random(9))
    instances = [
        AuditInstance.from_package(
            owner.prepare(
                archive_file(400, tag=f"obs-bench-{i}").data,
                fresh_keypair=i == 0,
            ),
            owner_id="obs-bench",
        )
        for i in range(FLEET)
    ]
    breakdown = {}
    with AuditExecutor(instances, workers=1) as executor:
        beacon = HashChainBeacon(b"obs-bench")

        def run_pipeline(tracer, profiled):
            if profiled:
                HOTPATH.enable()
            try:
                scheduler = EpochScheduler(
                    executor,
                    params,
                    beacon,
                    deterministic=True,
                    keep_history=False,
                    tracer=tracer,
                )
                scheduler.run(EPOCHS)
            finally:
                HOTPATH.disable()

        HOTPATH.reset()
        bare_pipeline_s, instrumented_s = _paired_min(
            lambda: run_pipeline(None, profiled=False),
            lambda: run_pipeline(Tracer(deterministic=True), profiled=True),
        )
        breakdown = HOTPATH.breakdown()
    pipeline_overhead = instrumented_s / bare_pipeline_s - 1.0
    audits = FLEET * EPOCHS
    lines.append("")
    lines.append(
        f"epoch pipeline, {FLEET} audits x {EPOCHS} epochs "
        "(registry + tracer + profiler vs bare)"
    )
    lines.append(
        f"  bare         {bare_pipeline_s:8.3f} s  "
        f"({audits / bare_pipeline_s:6.1f} audits/s)"
    )
    lines.append(
        f"  instrumented {instrumented_s:8.3f} s  "
        f"({audits / instrumented_s:6.1f} audits/s)"
    )
    lines.append(
        f"  overhead {pipeline_overhead:+.2%} (budget 3.00%)"
    )
    lines.append("  fig8-style leg breakdown from the profiled run:")
    for leg, fraction in sorted(
        breakdown.items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"    {leg:<18} {fraction:7.1%}")

    # -- 3. raw instrument throughput (report-only) ----------------------
    registry = MetricsRegistry()
    counter = registry.counter("bench_total", "spin")
    histogram = registry.histogram("bench_seconds", "spin")
    tracer = Tracer(deterministic=True, max_roots=16)

    t0 = time.perf_counter()
    for _ in range(SPIN):
        counter.inc()
    counter_rate = SPIN / (time.perf_counter() - t0)
    t0 = time.perf_counter()
    for _ in range(SPIN):
        histogram.observe(0.01)
    observe_rate = SPIN / (time.perf_counter() - t0)
    t0 = time.perf_counter()
    for _ in range(SPIN):
        with tracer.span("spin"):
            pass
    span_rate = SPIN / (time.perf_counter() - t0)
    lines.append("")
    lines.append("raw instrument throughput (single thread, report-only)")
    lines.append(f"  counter.inc        {counter_rate:12,.0f} /s")
    lines.append(f"  histogram.observe  {observe_rate:12,.0f} /s")
    lines.append(f"  tracer span        {span_rate:12,.0f} /s")

    report("observability", "\n".join(lines))

    assert gate_overhead <= 0.03, (
        f"disabled hot-path gate overhead {gate_overhead:.2%} > 3%"
    )
    assert pipeline_overhead <= 0.03, (
        f"instrumented pipeline overhead {pipeline_overhead:.2%} > 3%"
    )
    assert sum(breakdown.values()) > 0.0, "profiler saw no hot-path work"
