"""DA sampling: detection-confidence curves and the light-client download.

Claims under reproduction (the availability analogue of the paper's
confidence figure): against an aggregator withholding a fraction ``f`` of
the erasure-extended chunks, ``s`` random samples detect the hole with
probability at least ``1 - (1 - f)**s`` — at the default budget (18) and
the minimum useful withholding fraction under the 4x extension (25%),
measured detection clears 99%.  Meanwhile the happy-path light client
downloads O(samples) chunks, a small fraction of the full leaf set, and
a full k-of-n reconstruction still slashes forged counts on chain.

BENCH_QUICK=1 (the CI smoke job) shrinks the trial counts so the whole
module runs in seconds.
"""

from __future__ import annotations

import os
import random

from repro.chain import (
    Blockchain,
    CheckpointContract,
    CheckpointStatus,
    Transaction,
)
from repro.core import ProtocolParams
from repro.da import (
    DEFAULT_SAMPLE_BUDGET,
    DaParams,
    DaSampler,
    build_da_bundle,
    bundle_fetch,
    detection_probability,
)
from repro.obs import MetricsRegistry
from repro.randomness import HashChainBeacon
from repro.rollup import Checkpoint, RoundRecord, build_checkpoint

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

#: The deployed extension under test: 64 chunks, any 16 reconstruct.
PARAMS = DaParams(n=64, k=16)

TRIALS = 80 if QUICK else 400
FRACTIONS = (0.25, 0.30, 0.50)
BUDGETS = (6, 12, DEFAULT_SAMPLE_BUDGET)


def _records(epoch: int, count: int) -> tuple[RoundRecord, ...]:
    """Paper-shaped records: 48-byte challenges, 288-byte proofs."""
    return tuple(
        RoundRecord(
            name=2_000 + i,
            epoch=epoch,
            challenge_bytes=bytes([(i + 1) % 251]) * 48,
            proof_bytes=bytes([(i + 7) % 251]) * 288,
            verdict=True,
        )
        for i in range(count)
    )


def _bundle(epoch: int = 0, leaves: int = 96):
    return build_da_bundle(
        0, epoch, build_checkpoint(epoch, _records(epoch, leaves)), PARAMS
    )


def _trial_seed(trial: int) -> bytes:
    return b"da-bench" + trial.to_bytes(8, "big")


def _measure_detection(bundle, fraction: float, budget: int) -> float:
    """Fraction of seeded trials whose sampling run flags withholding."""
    sampler = DaSampler(
        bundle_fetch({(0, bundle.commitment.epoch): bundle}),
        registry=MetricsRegistry(),
    )
    withheld_count = round(fraction * PARAMS.n)
    detected = 0
    for trial in range(TRIALS):
        rng = random.Random((trial << 8) | budget)
        bundle.withheld = set(rng.sample(range(PARAMS.n), withheld_count))
        report = sampler.sample(
            bundle.commitment, _trial_seed(trial), budget=budget
        )
        detected += 0 if report.available else 1
    bundle.withheld = set()
    return detected / TRIALS


def test_da_detection_confidence_grid(report):
    bundle = _bundle()
    lines = [
        "DA sampling reproduction: withholding-detection confidence.",
        f"extension (n, k) = ({PARAMS.n}, {PARAMS.k}); {TRIALS} seeded "
        "trials per cell; analytic = 1 - (1 - f)^s.",
        "",
        f"{'withheld f':>11} {'samples s':>10} {'measured':>9} {'analytic':>9}",
    ]
    measured_default = None
    for fraction in FRACTIONS:
        for budget in BUDGETS:
            measured = _measure_detection(bundle, fraction, budget)
            analytic = detection_probability(fraction, budget)
            lines.append(
                f"{fraction:>11.2f} {budget:>10} {measured:>9.4f} "
                f"{analytic:>9.4f}"
            )
            if fraction == 0.25 and budget == DEFAULT_SAMPLE_BUDGET:
                measured_default = measured
            # Without-replacement sampling can only beat the analytic
            # with-replacement bound (small deterministic slack for the
            # finite trial count).
            assert measured >= analytic - 0.05, (fraction, budget)
    # The acceptance bar: >= 99% detection at the default budget against
    # the minimum useful withholding fraction.
    assert measured_default is not None
    assert measured_default >= 0.99
    assert detection_probability(0.25, DEFAULT_SAMPLE_BUDGET) >= 0.99
    lines += [
        "",
        f"default budget s = {DEFAULT_SAMPLE_BUDGET}: measured "
        f"{measured_default:.4f}, analytic "
        f"{detection_probability(0.25, DEFAULT_SAMPLE_BUDGET):.4f} "
        "(>= 0.99 required)",
    ]
    report("da_sampling", "\n".join(lines))


def test_da_happy_path_downloads_o_samples(report):
    """A clean sampling run downloads a fraction of the full leaf set.

    At the wider paper-scale extension (n=240, k=80: same 3x-ish blow-up
    class, finer chunks) the per-chunk size is blob/80, so the default
    18-sample budget moves well under the leaf set a trusting light
    client would download whole — even counting every NMT opening.
    """
    wide = DaParams(n=240, k=80)
    leaves = 200
    records = _records(1, leaves)
    bundle = build_da_bundle(0, 1, build_checkpoint(1, records), wide)
    sampler = DaSampler(
        bundle_fetch({(0, 1): bundle}), registry=MetricsRegistry()
    )
    full_leaf_bytes = sum(len(r.to_bytes()) for r in records)
    full_chunk_bytes = bundle.chunk_payload_bytes()
    reports = [
        sampler.sample(bundle.commitment, _trial_seed(t)) for t in range(5)
    ]
    assert all(r.available for r in reports)
    downloaded = max(r.downloaded_bytes for r in reports)
    # O(samples): s of n chunks plus their NMT openings, under the full
    # leaf set and far under the full chunk set.
    assert downloaded < full_leaf_bytes
    assert downloaded < full_chunk_bytes / 3
    report(
        "da_sampling_download",
        "\n".join([
            "DA happy-path download (light client, per epoch):",
            f"extension (n, k) = ({wide.n}, {wide.k})",
            f"leaf set: {leaves} records, {full_leaf_bytes} B "
            f"(chunk set {full_chunk_bytes} B after extension)",
            f"sampled: {DEFAULT_SAMPLE_BUDGET} chunks + proofs = "
            f"{downloaded} B "
            f"({downloaded / full_leaf_bytes:.1%} of the leaf set, "
            f"{downloaded / full_chunk_bytes:.1%} of the chunk set)",
        ]),
    )


def test_da_reconstruction_slashes_forged_counts():
    """End to end at bench scale: reconstruction evidence slashes on chain."""
    epoch = 2
    checkpoint_bundle = build_checkpoint(epoch, _records(epoch, 96))
    da_bundle = build_da_bundle(0, epoch, checkpoint_bundle, PARAMS)
    honest = checkpoint_bundle.checkpoint
    forged = Checkpoint(
        epoch=epoch,
        root=honest.root,
        accepted=honest.accepted - 3,
        rejected=honest.rejected + 3,
        num_leaves=honest.num_leaves,
        proof_digest=honest.proof_digest,
    )
    chain = Blockchain(block_time=15.0)
    aggregator = chain.create_account(10.0, label="aggregator")
    challenger = chain.create_account(10.0, label="challenger")
    contract = CheckpointContract(
        HashChainBeacon(b"da-bench"), ProtocolParams(s=6, k=4),
        fraud_window=500.0,
    )
    address = chain.deploy(contract, deployer=aggregator)
    receipt = chain.transact(
        Transaction(
            sender=aggregator, to=address, method="post_checkpoint",
            args=(forged.to_bytes(),), value=contract.posting_bond_wei,
        )
    )
    assert receipt.success, receipt.error
    checkpoint_id = receipt.return_value
    receipt = chain.transact(
        Transaction(
            sender=aggregator, to=address, method="post_da_root",
            args=(checkpoint_id, da_bundle.commitment.to_bytes()),
        )
    )
    assert receipt.success, receipt.error
    # The challenger never sees the aggregator's leaf set: only chunks.
    bundle_served = bundle_fetch({(0, epoch): da_bundle})
    sampler = DaSampler(bundle_served, registry=MetricsRegistry())
    reconstruction = sampler.reconstruct(da_bundle.commitment, b"\x09" * 8)
    leaves = reconstruction.counts_challenge_leaves()
    challenge = chain.transact(
        Transaction(
            sender=challenger, to=address, method="challenge_counts",
            args=(checkpoint_id, leaves),
            value=contract.challenge_bond_wei,
        ),
        payload_bytes=sum(len(leaf) for leaf in leaves),
    )
    assert challenge.success, challenge.error
    entry = contract.checkpoints[checkpoint_id]
    assert entry.status is CheckpointStatus.SLASHED
    assert "count-mismatch" in entry.fraud_reason


def test_da_sample_kernel(benchmark):
    """Wall-clock of one default-budget sampling run at deployed scale."""
    bundle = _bundle(epoch=3)
    sampler = DaSampler(
        bundle_fetch({(0, 3): bundle}), registry=MetricsRegistry()
    )
    run = lambda: sampler.sample(bundle.commitment, b"\x05" * 8)
    assert run().available
    benchmark.pedantic(run, rounds=3 if QUICK else 10, iterations=1)
