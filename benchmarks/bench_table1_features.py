"""Table I — auditing-feature comparison across DSN frameworks.

Regenerates the qualitative matrix; the timing component measures table
rendering only (the table itself is data, checked by the test suite).
"""

from __future__ import annotations

from repro.baselines import TABLE_I, render_table


def test_table1_feature_matrix(benchmark, report):
    text = benchmark(render_table)
    lines = [
        "Paper Table I, plus this implementation's row (derived from the",
        "properties the test suite demonstrates).",
        "",
        text,
        "",
        f"{len(TABLE_I)} frameworks compared.",
    ]
    report("table1_features", "\n".join(lines))
    assert "This work" in text
