"""Shared benchmark fixtures and the paper-vs-measured report writer.

Every bench writes its full series to ``benchmarks/results/<name>.txt`` and
echoes it to the terminal (bypassing capture), so both the tee'd bench log
and the results directory carry the reproduced tables/figures.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.core import DataOwner, ProtocolParams, StorageProvider
from repro.sim.workloads import archive_file

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(results_dir, capsys):
    """Writer: report(name, text) -> saves and prints the reproduction."""

    def write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)

    return write


@pytest.fixture(scope="session")
def rng():
    return random.Random(0xBEAC0)


@pytest.fixture(scope="session")
def params():
    """Bench-scale protocol parameters (paper-scale k is used where the
    figure under reproduction demands it)."""
    return ProtocolParams(s=10, k=8)


@pytest.fixture(scope="session")
def audit_system(params, rng):
    """A ready prover/verifier pair over a ~40 KB archive file."""
    owner = DataOwner(params, rng=rng)
    package = owner.prepare(archive_file(40_000).data)
    provider = StorageProvider(rng=rng)
    assert provider.accept(package)
    verifier = owner.verifier_for(package)
    return owner, provider, package, verifier
