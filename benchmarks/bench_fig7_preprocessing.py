"""Fig. 7 — data-owner preprocessing time for 1 GB vs the s parameter.

Three series, per the paper:

* **w/ s param, evaluation-form blocks** — reproduces the paper's U-shaped
  curve: per-chunk EC work falls as 1/s while the O(s^2)-per-chunk
  "polynomial coefficient transformation" (Lagrange interpolation of
  evaluation-form chunks) grows, giving an optimum in the tens of s (the
  paper lands on 50; see EXPERIMENTS.md for the analysis),
* **w/ s param, Horner evaluation** — our ablation: with an O(s) transform
  the curve monotonically improves and plateaus,
* **w/o s param (s=1)** — the paper's right-axis baseline, ~10x worse.

Measured on a fixed 25 KB input and extrapolated linearly to 1 GB
(preprocessing is embarrassingly linear in file size; asserted by test).
"""

from __future__ import annotations

import time

from repro.core.authenticator import PreprocessReport, generate_authenticators
from repro.core.chunking import chunk_file
from repro.core.keys import generate_keypair
from repro.core.params import ProtocolParams
from repro.crypto.bn254 import G1Point
from repro.crypto.bn254.msm import FixedBaseMul

FILE_BYTES = 25_000
S_SWEEP = (10, 20, 50, 100, 200)
GB = 1024**3


def _preprocess_seconds(s: int, mode: str, rng, g1_table) -> float:
    params = ProtocolParams(s=s, k=1)
    keypair = generate_keypair(s, rng=rng)
    chunked = chunk_file(b"\x5c" * FILE_BYTES, params, name=7)
    report = PreprocessReport()
    start = time.perf_counter()
    generate_authenticators(
        chunked, keypair, mode=mode, report=report, g1_table=g1_table
    )
    return time.perf_counter() - start


def test_fig7_preprocess_kernel(benchmark, rng):
    """Timing kernel at the paper's preferred s=50 (Horner mode)."""
    keypair = generate_keypair(50, rng=rng)
    params = ProtocolParams(s=50, k=1)
    chunked = chunk_file(b"\x5c" * FILE_BYTES, params, name=7)
    table = FixedBaseMul(G1Point.generator())
    result = benchmark.pedantic(
        generate_authenticators,
        args=(chunked, keypair),
        kwargs={"g1_table": table},
        rounds=2,
        iterations=1,
    )
    assert len(result) == chunked.num_chunks


def test_fig7_linearity_in_file_size(benchmark, rng):
    """The extrapolation's premise: time scales linearly with bytes.

    Uses best-of-3 minima (robust to scheduler noise) after a warm-up.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    table = FixedBaseMul(G1Point.generator())
    keypair = generate_keypair(20, rng=rng)
    params = ProtocolParams(s=20, k=1)

    def best_time(size: int) -> float:
        chunked = chunk_file(b"\x11" * size, params, name=3)
        samples = []
        for _ in range(3):
            start = time.perf_counter()
            generate_authenticators(chunked, keypair, g1_table=table)
            samples.append(time.perf_counter() - start)
        return min(samples)

    best_time(4_000)  # warm-up (hash caches, allocator)
    small = best_time(10_000)
    large = best_time(30_000)
    ratio = large / small
    assert 2.0 < ratio < 4.5  # ~3x work for 3x bytes


def test_fig7_report(benchmark, report, rng):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    table = FixedBaseMul(G1Point.generator())
    scale = GB / FILE_BYTES
    lines = [
        f"Fig. 7 reproduction: owner preprocessing time, measured on "
        f"{FILE_BYTES/1000:.0f} KB and extrapolated to 1 GB (x{scale:,.0f}).",
        "transform = evaluation-form blocks with the O(s^2) coefficient",
        "transformation (reproduces the U-shape); horner = O(s) ablation.",
        "",
        f"{'s':>5} {'transform (s)':>14} {'transf 1GB (s)':>15} {'horner (s)':>12} "
        f"{'horner 1GB (s)':>15} {'MB/s horner':>12}",
    ]
    transform_series = {}
    horner_series = {}
    for s in S_SWEEP:
        transform = _preprocess_seconds(s, "interpolate", rng, table)
        horner = _preprocess_seconds(s, "horner", rng, table)
        transform_series[s] = transform * scale
        horner_series[s] = horner * scale
        mb_per_s = (FILE_BYTES / 2**20) / horner
        lines.append(
            f"{s:>5} {transform:>14.3f} {transform*scale:>15.0f} {horner:>12.3f} "
            f"{horner*scale:>15.0f} {mb_per_s:>12.3f}"
        )
    baseline = _preprocess_seconds(1, "horner", rng, table)
    best_ratio = baseline * scale / min(horner_series.values())
    lines += [
        "",
        f"w/o s param (s=1) baseline: {baseline:.2f} s measured, "
        f"{baseline*scale:,.0f} s per GB "
        f"({best_ratio:.1f}x the best w/-s configuration).",
        "",
        "Paper anchors: optimum near s=50, w/o-s baseline ~10x slower,",
        "1 GB in ~120 s on quad-core Go (ours is pure Python; compare shapes",
        "and ratios, not absolute seconds - see EXPERIMENTS.md).",
    ]
    report("fig7_preprocessing", "\n".join(lines))

    # Shape assertions: the w/o-s baseline must lose badly, and the
    # transform series must be U-shaped (falls from s=10, rises by s=200).
    assert baseline > 3 * min(_t / scale for _t in horner_series.values())
    best_s = min(transform_series, key=transform_series.get)
    assert best_s not in (S_SWEEP[0], S_SWEEP[-1]), transform_series
    assert transform_series[200] > transform_series[best_s]
