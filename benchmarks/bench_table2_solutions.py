"""Table II — SNARK-based strawman vs the main HLA solution.

Columns per the paper: preprocessing time, parameter size, #constraints,
proof-generation time + memory, proof size, verification time.

Scale substitution (documented in EXPERIMENTS.md): the strawman runs on a
64-byte file (depth-2 MiMC circuit) and the main solution on a 40 KB file;
per-byte rates are extrapolated to the paper's 1 KB / 1 GB scales.  The
qualitative claims under reproduction:

* strawman setup time >> main preprocessing (per byte of file),
* strawman proof generation is seconds, main is milliseconds,
* strawman parameters are MB-class, main is KB-class,
* both proofs are constant-size; main verification is pairing-bound.
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro.core.prover import ProveReport, Prover
from repro.core.verifier import VerifyReport
from repro.core.challenge import random_challenge
from repro.snark.strawman import StrawmanOwner, StrawmanProver, StrawmanVerifier

STRAWMAN_FILE_BYTES = 64


@pytest.fixture(scope="module")
def strawman_system(rng):
    data = bytes(range(STRAWMAN_FILE_BYTES))
    owner = StrawmanOwner(data, rng=rng)
    start = time.perf_counter()
    setup_result = owner.trusted_setup()
    setup_seconds = time.perf_counter() - start
    prover = StrawmanProver(owner.blocks, setup_result, rng=rng)
    verifier = StrawmanVerifier(setup_result)
    return owner, setup_result, setup_seconds, prover, verifier


def test_table2_strawman_prove(benchmark, strawman_system):
    _, _, _, prover, verifier = strawman_system
    seed = b"bench-round"

    def run():
        prover._proof_cache.clear()
        return prover.respond(seed)

    proof, publics, _ = benchmark.pedantic(run, rounds=2, iterations=1)
    assert verifier.verify(seed, proof, publics)


def test_table2_strawman_verify(benchmark, strawman_system):
    _, _, _, prover, verifier = strawman_system
    seed = b"bench-verify"
    proof, publics, _ = prover.respond(seed)
    ok = benchmark.pedantic(
        verifier.verify, args=(seed, proof, publics), rounds=3, iterations=1
    )
    assert ok


def test_table2_main_prove(benchmark, audit_system, params, rng):
    _, provider, package, verifier = audit_system
    challenge = random_challenge(params, rng=rng)
    prover = provider.prover_for(package.name)
    proof = benchmark.pedantic(
        prover.respond_private, args=(challenge,), rounds=3, iterations=1
    )
    assert verifier.verify_private(challenge, proof)


def test_table2_main_verify(benchmark, audit_system, params, rng):
    _, provider, package, verifier = audit_system
    challenge = random_challenge(params, rng=rng)
    proof = provider.respond(package.name, challenge)
    ok = benchmark.pedantic(
        verifier.verify_private, args=(challenge, proof), rounds=3, iterations=1
    )
    assert ok


def test_table2_report(benchmark, report, strawman_system, audit_system, params, rng):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only entry
    owner_sm, setup_result, setup_seconds, prover_sm, verifier_sm = strawman_system
    _, provider, package, verifier = audit_system

    # --- strawman measurements (timing first, memory in a separate pass:
    # tracemalloc inflates allocation-heavy code several-fold) ---
    seed = b"report-round"
    prover_sm._proof_cache.clear()
    start = time.perf_counter()
    proof_sm, publics, _ = prover_sm.respond(seed)
    sm_prove_s = time.perf_counter() - start
    start = time.perf_counter()
    assert verifier_sm.verify(seed, proof_sm, publics)
    sm_verify_s = time.perf_counter() - start
    prover_sm._proof_cache.clear()
    tracemalloc.start()
    prover_sm.respond(seed)
    _, sm_prove_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # --- main solution measurements ---
    challenge = random_challenge(params, rng=rng)
    prover = provider.prover_for(package.name)
    prove_report = ProveReport()
    proof_main = prover.respond_private(challenge, prove_report)
    verify_report = VerifyReport()
    assert verifier.verify_private(challenge, proof_main, verify_report)
    tracemalloc.start()
    prover.respond_private(challenge)
    _, main_prove_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # Main preprocessing rate, measured fresh on a small file.
    from repro.core.authenticator import PreprocessReport, generate_authenticators
    from repro.core.chunking import chunk_file
    from repro.core.keys import generate_keypair

    kp = generate_keypair(params.s, rng=rng)
    sample = chunk_file(b"\x17" * 10_000, params, name=1)
    pre_report = PreprocessReport()
    generate_authenticators(sample, kp, report=pre_report)
    mb_per_s = (10_000 / 2**20) / pre_report.total_seconds
    one_gb_estimate_s = 1024 / mb_per_s

    pk_bytes = package.public.byte_size()
    rows = [
        "Table II reproduction (measured on this Python implementation;",
        "paper values in brackets are the authors' Rust/Go prototype).",
        "",
        f"{'':28}{'Strawman (Groth16+Merkle)':>28}{'Main (HLA+PolyCommit)':>26}",
        f"{'File in experiment':28}{f'{STRAWMAN_FILE_BYTES} B':>28}{'40 KB':>26}",
        f"{'Pre-process / setup':28}{f'{setup_seconds:.1f} s  [260 s]':>28}"
        f"{f'{pre_report.total_seconds:.2f} s':>26}",
        f"{'  1 GB extrapolation':28}{'n/a (16 KB max [43])':>28}"
        f"{f'{one_gb_estimate_s/60:.0f} min  [~2 min]':>26}",
        f"{'Param size':28}{f'{setup_result.param_bytes/1024:.0f} KB  [150 MB]':>28}"
        f"{f'{pk_bytes/1024:.1f} KB  [~5 KB]':>26}",
        f"{'# Constraints':28}"
        f"{f'{setup_result.constraint_count} (MiMC)':>28}{'-':>26}",
        f"{'  SHA-256 equivalent':28}"
        f"{f'{setup_result.sha256_equivalent:.0e}  [3e5]':>28}{'-':>26}",
        f"{'Proof generation':28}{f'{sm_prove_s:.1f} s  [30 s]':>28}"
        f"{f'{prove_report.total_seconds*1000:.0f} ms  [46 ms]':>26}",
        f"{'Proof gen peak memory':28}{f'{sm_prove_peak/2**20:.0f} MB  [~300 MB]':>28}"
        f"{f'{main_prove_peak/2**20:.1f} MB  [3 MB]':>26}",
        f"{'Proof size':28}{f'{len(proof_sm.to_bytes())} B  [384 B]':>28}"
        f"{f'{len(proof_main.to_bytes())} B  [288 B]':>26}",
        f"{'Verification':28}{f'{sm_verify_s*1000:.0f} ms  [30 ms]':>28}"
        f"{f'{verify_report.total_seconds*1000:.0f} ms  [7 ms]':>26}",
        "",
        "Shape check: setup>>prove>>verify for the strawman; KB-class params,",
        "ms-class proving and a 288-byte constant proof for the main scheme.",
    ]
    report("table2_solutions", "\n".join(rows))

    assert setup_seconds > sm_prove_s > sm_verify_s
    assert setup_result.param_bytes > 10 * pk_bytes
    assert prove_report.total_seconds < sm_prove_s
    assert len(proof_main.to_bytes()) == 288
